//! Static communication-volume oracle.
//!
//! For every leaf site of a lowered program (the enumeration of
//! [`otter_ir::leaf_sites`]) this module predicts, *at compile time*,
//! the exact number of messages and payload bytes the deterministic
//! run-time will move at that site per execution, as a function of the
//! machine size `p`. The prediction mirrors the run-time library's
//! communication structure op by op:
//!
//! * collectives (`otter-mpi`): tree broadcast/reduce move `p-1`
//!   messages; gather/scatter are linear; allgather is a gather to
//!   rank 0 followed by a broadcast of the flattened
//!   `[nparts, len_0.., data]` array;
//! * block distribution (`otter-runtime::dist`): the first `n mod p`
//!   ranks own `⌈n/p⌉` items, the rest `⌊n/p⌋`;
//! * kernels (`matmul` ring rotation, transpose all-to-all, halo
//!   exchanges, shift/range segment walks) are re-derived here from
//!   the same `Block` arithmetic.
//!
//! Dimensions come from pass-3 symbolic shape inference
//! ([`otter_analysis::Shape`] on `IrProgram::var_shapes`), so a
//! prediction carries a *symbolic* formula (rendered in terms of the
//! sample-file dimension symbols and `p`) plus an exact evaluation at
//! the concrete sample dimensions. `tests/shape_oracle_prop.rs`
//! asserts the evaluation equals the instrumented executor's per-site
//! measurement *exactly* — no tolerance — for every application at
//! p ∈ {1, 2, 4, 8}.

use otter_analysis::{Dim, Shape};
use otter_ir::{leaf_sites, DimSel, Instr, IrProgram, MatInit, PrintTarget, RedOp, SExpr, VarRank};
use std::collections::BTreeMap;
use std::fmt;

/// Exact message/byte totals (summed over all ranks) for one
/// execution of a site at machine size `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteCost {
    pub messages: u64,
    pub bytes: u64,
}

/// How many times a site executes in one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execs {
    /// Statically known trip product of the enclosing loop nest.
    Static(u64),
    /// Data-dependent (`while` loops, `break`-carrying loops,
    /// non-constant bounds, conditional bodies, function bodies).
    Dynamic,
}

/// Which rank a gather converges on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Root {
    /// Rank 0 (I/O coordination, allgather's internal gather).
    Zero,
    /// The block owner of 0-based item `index` in a distribution of
    /// `extent` items (`AssignRow`'s gather-to-owner).
    Owner { extent: Dim, index: Option<u64> },
}

/// One primitive communication step; a site's model is a sequence of
/// these. Each mirrors one loop of the run-time library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Atom {
    /// Tree broadcast of `len` doubles: `p-1` messages.
    Bcast { len: Dim },
    /// Tree reduction of `len` doubles: `p-1` messages.
    Reduce { len: Dim },
    /// Linear gather of a block-distributed `extent × width` object:
    /// every non-root rank sends its part once.
    Gather { extent: Dim, width: Dim, root: Root },
    /// Linear scatter from rank 0: one message per non-root rank.
    Scatter { extent: Dim, width: Dim },
    /// Broadcast of allgather's flattened `[nparts, len_r.., data]`
    /// array (`1 + p + extent·width` doubles).
    BcastFlat { extent: Dim, width: Dim },
    /// Matmul ring rotation: `p-1` rotations, each rank passing its
    /// current `kk`-row B panel (of an inner-dim `kk`, result-width
    /// `n` product) to its left neighbour.
    Ring { kk: Dim, n: Dim },
    /// Transpose all-to-all of an `m × n` row-distributed matrix:
    /// rank `r` ships the intersection of its row panel with every
    /// destination's column panel.
    Transpose { m: Dim, n: Dim },
    /// Right-neighbour halo of a length-`len` vector: every non-empty
    /// rank except the first sends one scalar left.
    HaloRight { len: Dim },
    /// Circular shift of a length-`len` vector by constant `k`:
    /// cross-owner destination segments, one message each.
    ShiftSeg { len: Dim, k: Option<i64> },
    /// `v(lo:hi)` redistribution (0-based half-open constants):
    /// cross-owner source→destination segments.
    RangeSeg {
        len: Dim,
        lo: Option<u64>,
        hi: Option<u64>,
    },
}

fn bcount(n: usize, p: usize, r: usize) -> usize {
    n / p + usize::from(r < n % p)
}

fn bstart(n: usize, p: usize, r: usize) -> usize {
    r * (n / p) + r.min(n % p)
}

fn bend(n: usize, p: usize, r: usize) -> usize {
    bstart(n, p, r) + bcount(n, p, r)
}

fn bowner(n: usize, p: usize, i: usize) -> usize {
    let base = n / p;
    let rem = n % p;
    let cutoff = rem * (base + 1);
    if i < cutoff {
        i / (base + 1)
    } else {
        rem + (i - cutoff) / base.max(1)
    }
}

impl Atom {
    /// Exact (messages, bytes) for one execution at machine size `p`,
    /// or `None` when a needed dimension/constant is not statically
    /// concrete.
    pub fn eval(&self, p: usize) -> Option<SiteCost> {
        let cost = |messages: u64, doubles: u64| SiteCost {
            messages,
            bytes: 8 * doubles,
        };
        let pm1 = (p - 1) as u64;
        Some(match *self {
            Atom::Bcast { len } | Atom::Reduce { len } => cost(pm1, len.concrete()? as u64 * pm1),
            Atom::Gather {
                extent,
                width,
                root,
            } => {
                let n = extent.concrete()?;
                let w = width.concrete()? as u64;
                let root = match root {
                    Root::Zero => 0,
                    Root::Owner { extent, index } => {
                        let m = extent.concrete()?;
                        let i = index? as usize;
                        if i >= m {
                            return None;
                        }
                        bowner(m, p, i)
                    }
                };
                cost(pm1, (n - bcount(n, p, root)) as u64 * w)
            }
            Atom::Scatter { extent, width } => {
                let n = extent.concrete()?;
                let w = width.concrete()? as u64;
                cost(pm1, (n - bcount(n, p, 0)) as u64 * w)
            }
            Atom::BcastFlat { extent, width } => {
                let n = extent.concrete()? as u64;
                let w = width.concrete()? as u64;
                cost(pm1, (1 + p as u64 + n * w) * pm1)
            }
            Atom::Ring { kk, n } => {
                let kk = kk.concrete()? as u64;
                let n = n.concrete()? as u64;
                // Each of p-1 rotations: every rank sends its current
                // panel; the panels partition kk rows of width n.
                cost(p as u64 * pm1, pm1 * kk * n)
            }
            Atom::Transpose { m, n } => {
                let m = m.concrete()?;
                let n = n.concrete()?;
                let mut doubles = 0u64;
                for r in 0..p {
                    doubles += (bcount(m, p, r) * (n - bcount(n, p, r))) as u64;
                }
                cost(p as u64 * pm1, doubles)
            }
            Atom::HaloRight { len } => {
                let n = len.concrete()?;
                // Senders: ranks with a non-empty block and a non-zero
                // start — all non-empty ranks except rank 0.
                let msgs = n.min(p).saturating_sub(1) as u64;
                cost(msgs, msgs)
            }
            Atom::ShiftSeg { len, k } => {
                let n = len.concrete()?;
                let k = k?;
                if n == 0 {
                    return Some(SiteCost::default());
                }
                let ni = n as i64;
                let k = (((k % ni) + ni) % ni) as usize;
                let (mut msgs, mut doubles) = (0u64, 0u64);
                // Mirror `DistMatrix::circshift`'s send phase on every
                // rank: walk the block, split by destination owner.
                for r in 0..p {
                    let mut lo = bstart(n, p, r);
                    let my_end = bend(n, p, r);
                    while lo < my_end {
                        let dest_g = (lo + k) % n;
                        let owner = bowner(n, p, dest_g);
                        let owner_room = bend(n, p, owner) - dest_g;
                        let wrap_room = n - dest_g;
                        let run = owner_room.min(wrap_room).min(my_end - lo);
                        if owner != r {
                            msgs += 1;
                            doubles += run as u64;
                        }
                        lo += run;
                    }
                }
                cost(msgs, doubles)
            }
            Atom::RangeSeg { len, lo, hi } => {
                let n = len.concrete()?;
                let (lo, hi) = (lo? as usize, hi? as usize);
                if lo > hi || hi > n {
                    return None; // the run-time would abort
                }
                let n_new = hi - lo;
                let (mut msgs, mut doubles) = (0u64, 0u64);
                // Mirror `DistMatrix::extract_range`'s send phase.
                for r in 0..p {
                    let send_lo = bstart(n, p, r).max(lo);
                    let send_hi = bend(n, p, r).min(hi);
                    let mut g = send_lo;
                    while g < send_hi {
                        let owner = if n_new == 0 {
                            r
                        } else {
                            bowner(n_new, p, g - lo)
                        };
                        let run = (bend(n_new, p, owner) - (g - lo)).min(send_hi - g);
                        if owner != r {
                            msgs += 1;
                            doubles += run as u64;
                        }
                        g += run;
                    }
                }
                cost(msgs, doubles)
            }
        })
    }

    fn messages_formula(&self) -> String {
        match self {
            Atom::Bcast { .. }
            | Atom::Reduce { .. }
            | Atom::Gather { .. }
            | Atom::Scatter { .. }
            | Atom::BcastFlat { .. } => "(p-1)".to_string(),
            Atom::Ring { .. } | Atom::Transpose { .. } => "p*(p-1)".to_string(),
            Atom::HaloRight { len } => format!("min({len},p)-1"),
            Atom::ShiftSeg { len, k } => {
                format!("segs(shift {} by {})", len, fmt_opt_i64(*k))
            }
            Atom::RangeSeg { len, lo, hi } => {
                format!("segs({}[{}:{}])", len, fmt_opt_u64(*lo), fmt_opt_u64(*hi))
            }
        }
    }

    fn bytes_formula(&self) -> String {
        match self {
            Atom::Bcast { len } | Atom::Reduce { len } => format!("8*{len}*(p-1)"),
            Atom::Gather {
                extent,
                width,
                root,
            } => {
                let who = match root {
                    Root::Zero => "0".to_string(),
                    Root::Owner { index, .. } => format!("owner({})", fmt_opt_u64(*index)),
                };
                format!("8*{width}*({extent}-blk_{who}({extent}))")
            }
            Atom::Scatter { extent, width } => {
                format!("8*{width}*({extent}-blk_0({extent}))")
            }
            Atom::BcastFlat { extent, width } => {
                format!("8*(1+p+{extent}*{width})*(p-1)")
            }
            Atom::Ring { kk, n } => format!("8*{kk}*{n}*(p-1)"),
            Atom::Transpose { m, n } => {
                format!("8*sum_r blk_r({m})*({n}-blk_r({n}))")
            }
            Atom::HaloRight { len } => format!("8*(min({len},p)-1)"),
            Atom::ShiftSeg { len, k } => {
                format!("8*cross(shift {} by {})", len, fmt_opt_i64(*k))
            }
            Atom::RangeSeg { len, lo, hi } => format!(
                "8*cross({}[{}:{}])",
                len,
                fmt_opt_u64(*lo),
                fmt_opt_u64(*hi)
            ),
        }
    }
}

fn fmt_opt_i64(v: Option<i64>) -> String {
    v.map_or_else(|| "?".to_string(), |v| v.to_string())
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "?".to_string(), |v| v.to_string())
}

/// The communication model of one site.
#[derive(Debug, Clone, PartialEq)]
pub enum Model {
    /// A (possibly empty) sequence of primitive steps. Empty means
    /// *proven communication-free*.
    Atoms(Vec<Atom>),
    /// The operation's run-time path could not be resolved statically
    /// (e.g. a matmul whose operand shapes are unknown).
    Unknown,
}

impl Model {
    /// Exact per-execution cost at machine size `p`; `None` when any
    /// step needs a dimension that is not statically concrete.
    pub fn per_exec(&self, p: usize) -> Option<SiteCost> {
        let Model::Atoms(atoms) = self else {
            return None;
        };
        let mut total = SiteCost::default();
        for a in atoms {
            let c = a.eval(p)?;
            total.messages += c.messages;
            total.bytes += c.bytes;
        }
        Some(total)
    }

    /// Is this site proven communication-free?
    pub fn is_free(&self) -> bool {
        matches!(self, Model::Atoms(a) if a.is_empty())
    }

    /// Human-readable `messages(p)` formula.
    pub fn messages_formula(&self) -> String {
        self.join_formula(Atom::messages_formula)
    }

    /// Human-readable `bytes(p)` formula.
    pub fn bytes_formula(&self) -> String {
        self.join_formula(Atom::bytes_formula)
    }

    fn join_formula(&self, f: impl Fn(&Atom) -> String) -> String {
        match self {
            Model::Unknown => "?".to_string(),
            Model::Atoms(atoms) if atoms.is_empty() => "0".to_string(),
            Model::Atoms(atoms) => {
                // Collapse repeated identical terms: `2*(p-1)` instead
                // of `(p-1) + (p-1)`.
                let mut terms: Vec<(String, usize)> = Vec::new();
                for a in atoms {
                    let t = f(a);
                    match terms.last_mut() {
                        Some((prev, n)) if *prev == t => *n += 1,
                        _ => terms.push((t, 1)),
                    }
                }
                terms
                    .into_iter()
                    .map(|(t, n)| if n == 1 { t } else { format!("{n}*{t}") })
                    .collect::<Vec<_>>()
                    .join(" + ")
            }
        }
    }
}

/// The oracle's verdict for one leaf site.
#[derive(Debug, Clone, PartialEq)]
pub struct SitePrediction {
    /// Site index in the [`leaf_sites`] enumeration.
    pub site: u32,
    /// Enclosing function, or `None` for the script body.
    pub func: Option<String>,
    pub opcode: &'static str,
    pub loop_depth: u32,
    /// Static trip product of the enclosing loop nest, when provable.
    pub execs: Execs,
    pub model: Model,
}

impl fmt::Display for SitePrediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let execs = match self.execs {
            Execs::Static(n) => n.to_string(),
            Execs::Dynamic => "dyn".to_string(),
        };
        write!(
            f,
            "site {:3} {:15} execs={:>4} msgs={} bytes={}",
            self.site,
            self.opcode,
            execs,
            self.model.messages_formula(),
            self.model.bytes_formula()
        )
    }
}

/// Per-scope static facts the model builder reads (shared with the
/// shape-safety lints).
pub(crate) struct Scope<'a> {
    pub(crate) shapes: &'a BTreeMap<String, Shape>,
    pub(crate) consts: &'a BTreeMap<String, f64>,
}

impl Scope<'_> {
    pub(crate) fn shape(&self, v: &str) -> Shape {
        self.shapes.get(v).copied().unwrap_or(Shape::UNKNOWN)
    }

    /// Constant-fold a replicated scalar expression against the
    /// scope's known constants and concrete shape dimensions.
    pub(crate) fn eval(&self, e: &SExpr) -> Option<f64> {
        match e {
            SExpr::Const(c) => Some(*c),
            SExpr::Var(v) => self.consts.get(v).copied(),
            SExpr::DimOf { var, sel } => {
                let s = self.shape(var);
                let (r, c) = (s.rows.concrete()?, s.cols.concrete()?);
                Some(match sel {
                    DimSel::Rows => r as f64,
                    DimSel::Cols => c as f64,
                    DimSel::Length => r.max(c) as f64,
                    DimSel::Numel => (r * c) as f64,
                })
            }
            SExpr::OwnElem => None,
            SExpr::Neg(e) => Some(-self.eval(e)?),
            SExpr::Not(e) => Some(f64::from(self.eval(e)? == 0.0)),
            SExpr::Bin(op, a, b) => Some(op.eval(self.eval(a)?, self.eval(b)?)),
            SExpr::Call(f, args) => {
                let vals: Option<Vec<f64>> = args.iter().map(|a| self.eval(a)).collect();
                Some(f.eval(&vals?))
            }
        }
    }

    pub(crate) fn eval_index0(&self, e: &SExpr) -> Option<u64> {
        let v = self.eval(e)?;
        (v >= 1.0 && v.fract() == 0.0).then(|| v as u64 - 1)
    }

    /// The run-time's `(dist_extent, item_width)` for a variable:
    /// vectors distribute over their elements, matrices over rows.
    /// Vector-ness is decided at the concrete sample dimensions —
    /// exactly what the run will see. `None` when undecidable.
    fn extent_width(&self, v: &str) -> Option<(Dim, Dim)> {
        let s = self.shape(v);
        let (r, c) = (s.rows.concrete()?, s.cols.concrete()?);
        if r == 1 || c == 1 {
            Some((s.numel(), Dim::Known(1)))
        } else {
            Some((s.rows, s.cols))
        }
    }

    /// Concrete vector-ness (`rows == 1 || cols == 1` at sample dims).
    pub(crate) fn is_vector(&self, v: &str) -> Option<bool> {
        let s = self.shape(v);
        Some(s.rows.concrete()? == 1 || s.cols.concrete()? == 1)
    }

    pub(crate) fn numel(&self, v: &str) -> Dim {
        self.shape(v).numel()
    }
}

/// Allgather of a block-distributed `extent × width` object: the
/// run-time's `gather_all` (gather to 0, then broadcast the flattened
/// parts array).
fn allgather(extent: Dim, width: Dim) -> Vec<Atom> {
    vec![
        Atom::Gather {
            extent,
            width,
            root: Root::Zero,
        },
        Atom::BcastFlat { extent, width },
    ]
}

/// Allreduce of `len` doubles: tree reduce to 0 + tree broadcast.
fn allreduce(len: Dim) -> Vec<Atom> {
    vec![Atom::Reduce { len }, Atom::Bcast { len }]
}

/// Communication of `matmul(a, b)`, mirroring `matmul_impl`'s
/// shape-based dispatch in the run-time library.
fn matmul_model(cx: &Scope, a: &str, b: &str) -> Model {
    let atoms = |v: Vec<Atom>| Model::Atoms(v);
    let (sa, sb) = (cx.shape(a), cx.shape(b));
    let Some((m, kk)) = sa.concrete() else {
        return Model::Unknown;
    };
    let Some((kb, n)) = sb.concrete() else {
        return Model::Unknown;
    };
    if kk != kb {
        return Model::Unknown; // the run-time would abort
    }
    // Mirror `matmul_impl`'s dispatch.
    if kk == 1 && (m == 1 || n == 1) {
        // Scalar scaling via one owner broadcast.
        atoms(vec![Atom::Bcast { len: Dim::Known(1) }])
    } else if kk == 1 && m > 1 && n > 1 {
        // Outer product: allgather the row-vector operand.
        atoms(allgather(cx.numel(b), Dim::Known(1)))
    } else if m == 1 {
        // (1×k)·(k×n): allgather x, local partials, allreduce.
        let mut v = allgather(cx.numel(a), Dim::Known(1));
        v.extend(allreduce(sb.cols));
        atoms(v)
    } else if n == 1 {
        // (m×k)·(k×1) is a matvec: allgather x.
        atoms(allgather(cx.numel(b), Dim::Known(1)))
    } else {
        atoms(vec![Atom::Ring {
            kk: sa.cols,
            n: sb.cols,
        }])
    }
}

/// Build the communication model of one leaf instruction, mirroring
/// the run-time library's dispatch.
fn model_of(i: &Instr, cx: &Scope, ranks: &BTreeMap<String, VarRank>) -> Model {
    let atoms = |v: Vec<Atom>| Model::Atoms(v);
    let free = Model::Atoms(Vec::new());
    match i {
        // Pure local / replicated work.
        Instr::AssignScalar { .. }
        | Instr::InitMatrix { .. }
        | Instr::CopyMatrix { .. }
        | Instr::ElemWise { .. }
        | Instr::StoreElem { .. }
        | Instr::ExtractCol { .. }
        | Instr::AssignCol { .. }
        | Instr::FillRow { .. }
        | Instr::FillCol { .. }
        | Instr::FillRange { .. }
        | Instr::Free { .. } => free,

        Instr::LoadFile { dst, .. } => match cx.extent_width(dst) {
            Some((extent, width)) => atoms(vec![
                Atom::Bcast { len: Dim::Known(2) },
                Atom::Scatter { extent, width },
            ]),
            None => Model::Unknown,
        },

        // The fused variants communicate exactly like their base op —
        // the element-wise half is local (aligned operands).
        Instr::MatMul { a, b, .. } | Instr::MatMulEw { a, b, .. } => matmul_model(cx, a, b),

        Instr::MatVec { x, .. } | Instr::MatVecEw { x, .. } => {
            atoms(allgather(cx.numel(x), Dim::Known(1)))
        }

        // Only allreduce-backed reductions are fused (no Trapz halo).
        Instr::ReduceEw { .. } => atoms(allreduce(Dim::Known(1))),
        Instr::Outer { v, .. } => atoms(allgather(cx.numel(v), Dim::Known(1))),

        Instr::Transpose { a, .. } => match cx.is_vector(a) {
            Some(true) => free, // orientation flip, same element blocks
            Some(false) => {
                let s = cx.shape(a);
                atoms(vec![Atom::Transpose {
                    m: s.rows,
                    n: s.cols,
                }])
            }
            None => Model::Unknown,
        },

        Instr::BroadcastElem { .. } => atoms(vec![Atom::Bcast { len: Dim::Known(1) }]),

        Instr::Reduce { op, m, .. } => match op {
            RedOp::Trapz => {
                let mut v = vec![Atom::HaloRight { len: cx.numel(m) }];
                v.extend(allreduce(Dim::Known(1)));
                atoms(v)
            }
            _ => atoms(allreduce(Dim::Known(1))),
        },

        Instr::Dot { .. } => atoms(allreduce(Dim::Known(1))),

        Instr::TrapzXY { x, .. } => {
            let len = cx.numel(x);
            let mut v = vec![Atom::HaloRight { len }, Atom::HaloRight { len }];
            v.extend(allreduce(Dim::Known(1)));
            atoms(v)
        }

        Instr::ColReduce { op: _, m, .. } => match cx.is_vector(m) {
            Some(true) => atoms(allreduce(Dim::Known(1))),
            Some(false) => atoms(allreduce(cx.shape(m).cols)),
            None => Model::Unknown,
        },

        Instr::Shift { v, k, .. } => atoms(vec![Atom::ShiftSeg {
            len: cx.numel(v),
            k: cx
                .eval(k)
                .and_then(|v| (v.fract() == 0.0).then_some(v as i64)),
        }]),

        Instr::ExtractRow { m, .. } => atoms(vec![Atom::Bcast {
            len: cx.shape(m).cols,
        }]),

        Instr::AssignRow { m, i, v } => atoms(vec![Atom::Gather {
            extent: cx.numel(v),
            width: Dim::Known(1),
            root: Root::Owner {
                extent: cx.shape(m).rows,
                index: cx.eval_index0(i),
            },
        }]),

        Instr::ExtractRange { v, lo, hi, .. } => atoms(vec![Atom::RangeSeg {
            len: cx.numel(v),
            lo: cx.eval_index0(lo),
            // 1-based inclusive `hi` is the 0-based half-open bound.
            hi: cx
                .eval(hi)
                .and_then(|h| (h >= 0.0 && h.fract() == 0.0).then_some(h as u64)),
        }]),

        Instr::ExtractStrided { v, .. } => atoms(allgather(cx.numel(v), Dim::Known(1))),
        Instr::AssignRange { v, .. } => atoms(allgather(cx.numel(v), Dim::Known(1))),

        Instr::Print { name, target } => match target {
            PrintTarget::Scalar(_) => free,
            PrintTarget::Matrix(m) => {
                // Scalars display without a gather; matrices gather to
                // rank 0 for rendering.
                if ranks.get(name.as_str()).or_else(|| ranks.get(m.as_str()))
                    == Some(&VarRank::Scalar)
                {
                    return free;
                }
                match cx.extent_width(m) {
                    Some((extent, width)) => atoms(vec![Atom::Gather {
                        extent,
                        width,
                        root: Root::Zero,
                    }]),
                    None => Model::Unknown,
                }
            }
        },

        // Control flow / calls are not leaf sites.
        Instr::If { .. }
        | Instr::While { .. }
        | Instr::For { .. }
        | Instr::Break
        | Instr::Continue
        | Instr::Call { .. } => free,
    }
}

/// Does this body contain a `break`/`continue` governed by the
/// *current* loop (i.e. not nested inside an inner loop)?
fn has_loop_escape(body: &[Instr]) -> bool {
    body.iter().any(|i| match i {
        Instr::Break | Instr::Continue => true,
        Instr::If {
            then_body,
            else_body,
            ..
        } => has_loop_escape(then_body) || has_loop_escape(else_body),
        // An inner loop swallows its own breaks.
        Instr::While { .. } | Instr::For { .. } => false,
        _ => false,
    })
}

/// Static trip count of a counted loop, mirroring the executor's
/// `for` semantics.
fn trip_count(cx: &Scope, start: &SExpr, step: &SExpr, stop: &SExpr) -> Option<u64> {
    let (start, step, stop) = (cx.eval(start)?, cx.eval(step)?, cx.eval(stop)?);
    if step == 0.0 {
        return None;
    }
    let n = ((stop - start) / step).floor() + 1.0;
    Some(if n < 0.0 { 0 } else { n as u64 })
}

fn walk_scope(
    body: &[Instr],
    mult: Option<u64>,
    cx: &Scope,
    ranks: &BTreeMap<String, VarRank>,
    out: &mut Vec<(Option<u64>, Model)>,
) {
    for i in body {
        match i {
            Instr::If {
                cond,
                then_body,
                else_body,
            } => {
                // A constant condition keeps the taken branch static
                // and proves the other never runs.
                let (then_mult, else_mult) = match cx.eval(cond) {
                    Some(c) if c != 0.0 => (mult, Some(0)),
                    Some(_) => (Some(0), mult),
                    None => (None, None),
                };
                walk_scope(then_body, then_mult, cx, ranks, out);
                walk_scope(else_body, else_mult, cx, ranks, out);
            }
            Instr::While { pre, body, .. } => {
                // Trips are data-dependent; `pre` runs once more than
                // the body. Both are dynamic.
                walk_scope(pre, None, cx, ranks, out);
                walk_scope(body, None, cx, ranks, out);
            }
            Instr::For {
                start,
                step,
                stop,
                body,
                ..
            } => {
                let trips = if has_loop_escape(body) {
                    None
                } else {
                    trip_count(cx, start, step, stop)
                };
                let inner = match (mult, trips) {
                    (Some(m), Some(t)) => Some(m * t),
                    _ => None,
                };
                walk_scope(body, inner, cx, ranks, out);
            }
            Instr::Call { .. } | Instr::Break | Instr::Continue => {}
            leaf => out.push((mult, model_of(leaf, cx, ranks))),
        }
    }
}

/// Inference records shapes for *named* variables; lowering temps
/// (`ML_tmp*`) have a rank but no shape. This forward pass derives the
/// missing ones structurally — constructors evaluate their dimension
/// expressions, shape-preserving and shape-combining ops propagate —
/// so the oracle and shape lints see through temp chains like
/// `transpose(range(1, 1, n))`. Conservative: a shape is recorded only
/// when every input resolves; nothing already known is overwritten.
pub fn refined_shapes(
    body: &[Instr],
    shapes: &BTreeMap<String, Shape>,
    consts: &BTreeMap<String, f64>,
) -> BTreeMap<String, Shape> {
    let mut out = shapes.clone();
    refine_walk(body, consts, &mut out);
    out
}

fn refine_walk(
    body: &[Instr],
    consts: &BTreeMap<String, f64>,
    shapes: &mut BTreeMap<String, Shape>,
) {
    for i in body {
        // Borrow-friendly one-shot context over the growing map.
        let cx = Scope { shapes, consts };
        let ev = |e: &SExpr| cx.eval(e).filter(|v| *v >= 0.0).map(|v| v as usize);
        let dims = |v: &str| cx.shape(v).concrete();
        let derived: Option<(String, usize, usize)> = match i {
            Instr::InitMatrix { dst, init } => match init {
                MatInit::Zeros { rows, cols }
                | MatInit::Ones { rows, cols }
                | MatInit::Rand { rows, cols } => {
                    ev(rows).zip(ev(cols)).map(|(r, c)| (dst.clone(), r, c))
                }
                MatInit::Eye { n } => ev(n).map(|n| (dst.clone(), n, n)),
                MatInit::Range { start, step, stop } => {
                    trip_count(&cx, start, step, stop).map(|t| (dst.clone(), 1, t as usize))
                }
                MatInit::Literal { rows } => {
                    Some((dst.clone(), rows.len(), rows.first().map_or(0, Vec::len)))
                }
                MatInit::Linspace { n, .. } => ev(n).map(|n| (dst.clone(), 1, n)),
            },
            Instr::CopyMatrix { dst, src } => dims(src).map(|(r, c)| (dst.clone(), r, c)),
            Instr::Transpose { dst, a } => dims(a).map(|(r, c)| (dst.clone(), c, r)),
            Instr::Shift { dst, v, .. } => dims(v).map(|(r, c)| (dst.clone(), r, c)),
            Instr::ElemWise { dst, expr } => {
                let mut ops = Vec::new();
                expr.mat_operands(&mut ops);
                ops.first()
                    .and_then(|m| dims(m))
                    .map(|(r, c)| (dst.clone(), r, c))
            }
            Instr::MatMul { dst, a, b } | Instr::MatMulEw { dst, a, b, .. } => dims(a)
                .zip(dims(b))
                .map(|((m, _), (_, n))| (dst.clone(), m, n)),
            Instr::MatVec { dst, a, .. } | Instr::MatVecEw { dst, a, .. } => {
                dims(a).map(|(m, _)| (dst.clone(), m, 1))
            }
            Instr::Outer { dst, u, v } => dims(u)
                .zip(dims(v))
                .map(|((ur, uc), (vr, vc))| (dst.clone(), ur * uc, vr * vc)),
            Instr::ExtractRow { dst, m, .. } => dims(m).map(|(_, c)| (dst.clone(), 1, c)),
            Instr::ExtractCol { dst, m, .. } => dims(m).map(|(r, _)| (dst.clone(), r, 1)),
            _ => None,
        };
        if let Some((dst, r, c)) = derived {
            shapes.entry(dst).or_insert_with(|| Shape::known(r, c));
        }
        match i {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                refine_walk(then_body, consts, shapes);
                refine_walk(else_body, consts, shapes);
            }
            Instr::While { pre, body, .. } => {
                refine_walk(pre, consts, shapes);
                refine_walk(body, consts, shapes);
            }
            Instr::For { body, .. } => refine_walk(body, consts, shapes),
            _ => {}
        }
    }
}

/// Predict every leaf site of a program, in [`leaf_sites`] order.
pub fn predict(prog: &IrProgram) -> Vec<SitePrediction> {
    let mut raw: Vec<(Option<u64>, Model)> = Vec::new();
    let main_shapes = refined_shapes(&prog.main, &prog.var_shapes, &prog.var_consts);
    let cx = Scope {
        shapes: &main_shapes,
        consts: &prog.var_consts,
    };
    walk_scope(&prog.main, Some(1), &cx, &prog.var_ranks, &mut raw);
    for f in prog.functions.values() {
        let f_shapes = refined_shapes(&f.body, &f.var_shapes, &f.var_consts);
        let cx = Scope {
            shapes: &f_shapes,
            consts: &f.var_consts,
        };
        // Function bodies execute once per call; call counts are not
        // modeled statically.
        walk_scope(&f.body, None, &cx, &f.var_ranks, &mut raw);
    }

    let sites = leaf_sites(prog);
    assert_eq!(
        sites.len(),
        raw.len(),
        "oracle walk and site enumeration disagree"
    );
    sites
        .iter()
        .zip(raw)
        .map(|(s, (mult, model))| SitePrediction {
            site: s.id,
            func: s.func.map(str::to_string),
            opcode: s.instr.opcode(),
            loop_depth: s.loop_depth,
            execs: match mult {
                Some(n) => Execs::Static(n),
                None => Execs::Dynamic,
            },
            model,
        })
        .collect()
}

/// Whole-program totals at machine size `p`: `Σ_site per_exec(p) ·
/// execs` over sites with static trip counts. `None` if any site with
/// a non-free model is dynamic or unresolved (the caller should fall
/// back to per-site comparison with measured exec counts).
pub fn total_static(preds: &[SitePrediction], p: usize) -> Option<SiteCost> {
    let mut total = SiteCost::default();
    for s in preds {
        let per = s.model.per_exec(p)?;
        match s.execs {
            Execs::Static(n) => {
                total.messages += per.messages * n;
                total.bytes += per.bytes * n;
            }
            Execs::Dynamic if per == SiteCost::default() => {}
            Execs::Dynamic => return None,
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_ir::{IrFunction, MatInit};

    fn shapes(pairs: &[(&str, usize, usize)]) -> BTreeMap<String, Shape> {
        pairs
            .iter()
            .map(|&(n, r, c)| (n.to_string(), Shape::known(r, c)))
            .collect()
    }

    #[test]
    fn allreduce_model_matches_tree_collectives() {
        let m = Model::Atoms(allreduce(Dim::Known(1)));
        for p in [1usize, 2, 4, 8] {
            let c = m.per_exec(p).unwrap();
            assert_eq!(c.messages, 2 * (p as u64 - 1));
            assert_eq!(c.bytes, 16 * (p as u64 - 1));
        }
    }

    #[test]
    fn allgather_counts_uneven_blocks() {
        // 96 elements over 8 ranks: rank 0 owns 12; gather moves
        // 96-12, the flat broadcast moves (1+8+96) to 7 ranks.
        let m = Model::Atoms(allgather(Dim::Known(96), Dim::Known(1)));
        let c = m.per_exec(8).unwrap();
        assert_eq!(c.messages, 14);
        assert_eq!(c.bytes, 8 * ((96 - 12) + 7 * (1 + 8 + 96)));
    }

    #[test]
    fn ring_and_shift_are_exact_at_small_p() {
        let ring = Atom::Ring {
            kk: Dim::Known(48),
            n: Dim::Known(48),
        };
        assert_eq!(
            ring.eval(4).unwrap(),
            SiteCost {
                messages: 12,
                bytes: 8 * 3 * 48 * 48
            }
        );
        // circshift by ±1 of a long vector: every rank sends exactly
        // one boundary element.
        for k in [-1i64, 1] {
            let shift = Atom::ShiftSeg {
                len: Dim::Known(256),
                k: Some(k),
            };
            for p in [2usize, 4, 8] {
                assert_eq!(
                    shift.eval(p).unwrap(),
                    SiteCost {
                        messages: p as u64,
                        bytes: 8 * p as u64
                    },
                    "k={k} p={p}"
                );
            }
        }
        // Shift by a multiple of n is a no-op.
        let noop = Atom::ShiftSeg {
            len: Dim::Known(16),
            k: Some(16),
        };
        assert_eq!(noop.eval(4).unwrap(), SiteCost::default());
    }

    #[test]
    fn everything_is_free_at_p1() {
        let atoms = [
            Atom::Bcast { len: Dim::Known(9) },
            Atom::Gather {
                extent: Dim::Known(9),
                width: Dim::Known(3),
                root: Root::Zero,
            },
            Atom::Ring {
                kk: Dim::Known(9),
                n: Dim::Known(9),
            },
            Atom::Transpose {
                m: Dim::Known(9),
                n: Dim::Known(9),
            },
            Atom::HaloRight { len: Dim::Known(9) },
            Atom::ShiftSeg {
                len: Dim::Known(9),
                k: Some(2),
            },
            Atom::RangeSeg {
                len: Dim::Known(9),
                lo: Some(2),
                hi: Some(7),
            },
        ];
        for a in atoms {
            assert_eq!(a.eval(1).unwrap(), SiteCost::default(), "{a:?}");
        }
    }

    #[test]
    fn static_trip_counts_multiply_through_nests() {
        let mut prog = IrProgram {
            main: vec![Instr::For {
                var: "i".into(),
                start: SExpr::c(1.0),
                step: SExpr::c(1.0),
                stop: SExpr::c(4.0),
                body: vec![Instr::For {
                    var: "j".into(),
                    start: SExpr::c(1.0),
                    step: SExpr::c(2.0),
                    stop: SExpr::c(10.0),
                    body: vec![Instr::Dot {
                        dst: "s".into(),
                        a: "a".into(),
                        b: "b".into(),
                    }],
                }],
            }],
            ..Default::default()
        };
        prog.var_shapes = shapes(&[("a", 1, 8), ("b", 1, 8)]);
        let preds = predict(&prog);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].execs, Execs::Static(20));
        assert_eq!(
            preds[0].model.per_exec(4).unwrap(),
            SiteCost {
                messages: 6,
                bytes: 48
            }
        );
        assert_eq!(
            total_static(&preds, 4).unwrap(),
            SiteCost {
                messages: 120,
                bytes: 960
            }
        );
    }

    #[test]
    fn breaks_and_whiles_force_dynamic() {
        let prog = IrProgram {
            main: vec![
                Instr::For {
                    var: "i".into(),
                    start: SExpr::c(1.0),
                    step: SExpr::c(1.0),
                    stop: SExpr::c(4.0),
                    body: vec![
                        Instr::Dot {
                            dst: "s".into(),
                            a: "a".into(),
                            b: "b".into(),
                        },
                        Instr::Break,
                    ],
                },
                Instr::While {
                    pre: vec![Instr::Reduce {
                        dst: "n".into(),
                        op: RedOp::Norm2,
                        m: "a".into(),
                    }],
                    cond: SExpr::var("n"),
                    body: vec![],
                },
            ],
            ..Default::default()
        };
        let preds = predict(&prog);
        assert_eq!(preds.len(), 2);
        assert!(preds.iter().all(|s| s.execs == Execs::Dynamic));
        assert_eq!(total_static(&preds, 4), None);
    }

    #[test]
    fn constant_conditions_keep_static_counts() {
        let prog = IrProgram {
            main: vec![Instr::If {
                cond: SExpr::c(0.0),
                then_body: vec![Instr::Dot {
                    dst: "s".into(),
                    a: "a".into(),
                    b: "b".into(),
                }],
                else_body: vec![Instr::Dot {
                    dst: "t".into(),
                    a: "a".into(),
                    b: "b".into(),
                }],
            }],
            ..Default::default()
        };
        let preds = predict(&prog);
        assert_eq!(preds[0].execs, Execs::Static(0));
        assert_eq!(preds[1].execs, Execs::Static(1));
    }

    #[test]
    fn function_sites_are_dynamic_and_enumerated_after_main() {
        let mut f = IrFunction {
            name: "helper".into(),
            body: vec![Instr::Dot {
                dst: "s".into(),
                a: "a".into(),
                b: "b".into(),
            }],
            ..Default::default()
        };
        f.var_shapes = shapes(&[("a", 1, 4), ("b", 1, 4)]);
        let mut prog = IrProgram {
            main: vec![Instr::InitMatrix {
                dst: "z".into(),
                init: MatInit::Eye { n: SExpr::c(4.0) },
            }],
            ..Default::default()
        };
        prog.functions.insert("helper".into(), f);
        let preds = predict(&prog);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].func, None);
        assert!(preds[0].model.is_free());
        assert_eq!(preds[1].func.as_deref(), Some("helper"));
        assert_eq!(preds[1].execs, Execs::Dynamic);
    }

    #[test]
    fn matmul_dispatch_mirrors_runtime_paths() {
        let cases: [(&str, usize, usize, usize, usize); 3] = [
            // general ring
            ("ring", 48, 48, 48, 48),
            // matvec path (k×1 rhs)
            ("matvec", 8, 8, 8, 1),
            // outer path (m×1 · 1×n)
            ("outer", 8, 1, 1, 8),
        ];
        for (what, m, k, k2, n) in cases {
            let mut prog = IrProgram {
                main: vec![Instr::MatMul {
                    dst: "c".into(),
                    a: "a".into(),
                    b: "b".into(),
                }],
                ..Default::default()
            };
            prog.var_shapes = shapes(&[("a", m, k), ("b", k2, n)]);
            let pred = &predict(&prog)[0];
            let c = pred.model.per_exec(4).unwrap();
            match what {
                "ring" => assert_eq!(c.messages, 12, "{what}"),
                // allgather = gather + flat broadcast
                _ => assert_eq!(c.messages, 6, "{what}"),
            }
        }
    }

    #[test]
    fn formulas_render_symbolically() {
        let n = Dim::sym("f.dat:cols", Some(256));
        let m = Model::Atoms(allreduce(n));
        assert_eq!(m.messages_formula(), "2*(p-1)");
        assert_eq!(m.bytes_formula(), "2*8*f.dat:cols*(p-1)");
        assert_eq!(Model::Unknown.messages_formula(), "?");
        assert_eq!(Model::Atoms(vec![]).bytes_formula(), "0");
    }
}
