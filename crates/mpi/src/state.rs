//! Shared job state: the wait-for registry every rank publishes its
//! blocking state into, and the cycle detector that replaces the old
//! blunt 60-second deadlock timeout.
//!
//! Each rank owns one packed `AtomicU64` slot, `(epoch << 16) | tag`:
//! the tag is the peer index the rank is blocked receiving from, or
//! one of the `RUNNING` / `FINISHED` / `FAILED` sentinels; the epoch
//! increments on every transition so a detector can tell "still in
//! the same blocked receive" from "blocked again on the same peer".
//! Only the owning rank writes its slot, so plain release stores
//! suffice.

use crate::error::{CommError, WaitEdge};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const TAG_RUNNING: u64 = 0xFFFF;
const TAG_FINISHED: u64 = 0xFFFE;
const TAG_FAILED: u64 = 0xFFFD;

/// State shared by every rank of one SPMD job.
pub(crate) struct JobState {
    /// Packed `(epoch << 16) | tag` per rank.
    slots: Vec<AtomicU64>,
    /// One-shot failure verdicts posted by whichever rank confirms a
    /// deadlock cycle, so every member of the cycle reports the same
    /// diagnosis instead of a racy mix of deadlock/peer-terminated.
    verdicts: Vec<Mutex<Option<CommError>>>,
    /// Job-wide delivery counter: bumped on every packet handed to a
    /// mailbox and every rank completion. The stall timeout measures
    /// against this, not wall time alone — on a starved worker pool a
    /// rank can legitimately wait minutes for its turn while the job
    /// is making steady progress, and only "nothing moved anywhere"
    /// is evidence of a silent hang.
    progress: AtomicU64,
}

/// A decoded slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RankState {
    Running,
    Finished,
    Failed,
    /// Blocked receiving from this peer.
    WaitingOn(usize),
}

impl JobState {
    pub fn new(p: usize) -> Self {
        JobState {
            slots: (0..p).map(|_| AtomicU64::new(TAG_RUNNING)).collect(),
            verdicts: (0..p).map(|_| Mutex::new(None)).collect(),
            progress: AtomicU64::new(0),
        }
    }

    /// Note one unit of job-wide progress (a delivery or completion).
    pub fn note_progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Current progress count, for stall-reset comparisons.
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    fn store(&self, rank: usize, tag: u64) {
        let epoch = self.slots[rank].load(Ordering::Relaxed) >> 16;
        self.slots[rank].store(((epoch + 1) << 16) | tag, Ordering::Release);
    }

    /// Publish "rank is blocked receiving from peer".
    pub fn set_waiting(&self, rank: usize, peer: usize) {
        debug_assert!(peer < TAG_FAILED as usize);
        self.store(rank, peer as u64);
    }

    /// Publish "rank is computing again".
    pub fn set_running(&self, rank: usize) {
        self.store(rank, TAG_RUNNING);
    }

    /// Publish the rank's final state.
    pub fn set_done(&self, rank: usize, ok: bool) {
        self.store(rank, if ok { TAG_FINISHED } else { TAG_FAILED });
    }

    /// Raw epoch+state snapshot of one slot.
    fn load(&self, rank: usize) -> (u64, RankState) {
        let v = self.slots[rank].load(Ordering::Acquire);
        let state = match v & 0xFFFF {
            TAG_RUNNING => RankState::Running,
            TAG_FINISHED => RankState::Finished,
            TAG_FAILED => RankState::Failed,
            peer => RankState::WaitingOn(peer as usize),
        };
        (v >> 16, state)
    }

    pub fn state_of(&self, rank: usize) -> RankState {
        self.load(rank).1
    }

    /// Ranks currently blocked receiving from `rank`. A finishing rank
    /// uses this to wake exactly the parked peers its termination
    /// affects (the mailbox-world replacement for mpsc's disconnect
    /// signal).
    pub fn waiters_on(&self, rank: usize) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&r| r != rank && self.state_of(r) == RankState::WaitingOn(rank))
            .collect()
    }

    /// Take the one-shot verdict another rank may have posted for us.
    pub fn take_verdict(&self, rank: usize) -> Option<CommError> {
        self.verdicts[rank].lock().unwrap().take()
    }

    fn post_verdict(&self, rank: usize, err: CommError) {
        let mut slot = self.verdicts[rank].lock().unwrap();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// Walk the wait-for chain from `start`. Returns the cycle as the
    /// list of `(rank, epoch, waiting_on)` observations the walk made
    /// if the chain revisits a node; `None` if it reaches a running,
    /// finished, or failed rank — those cases resolve on their own.
    ///
    /// The epochs matter: the walk reads each slot at a different
    /// instant, so the "cycle" may be a chimera stitched from waits
    /// that never coexisted. The caller re-checks that every member
    /// still holds its *observed* `(epoch, peer)` — epochs increment
    /// on every transition, so an unchanged epoch proves the slot held
    /// that exact wait for the whole interval between the two reads.
    fn find_cycle(&self, start: usize) -> Option<Vec<(usize, u64, usize)>> {
        let mut path: Vec<(usize, u64, usize)> = Vec::new();
        let mut cur = start;
        loop {
            let (epoch, next) = match self.load(cur) {
                (e, RankState::WaitingOn(peer)) => (e, peer),
                _ => return None,
            };
            path.push((cur, epoch, next));
            if let Some(pos) = path.iter().position(|&(r, _, _)| r == next) {
                return Some(path[pos..].to_vec());
            }
            cur = next;
            if path.len() > self.slots.len() {
                return None; // corrupt snapshot; let the poll retry
            }
        }
    }

    /// Try to diagnose a deadlock involving `rank` (currently blocked
    /// on `waiting_on`): find a wait-for cycle reachable from `rank`,
    /// confirm it is stable across `confirm`, and if so post a
    /// verdict to every member and return this rank's error.
    ///
    /// Three guards defeat the in-flight-message race. First, every
    /// member must still hold the exact `(epoch, peer)` the walk
    /// observed — the walk reads slots at different instants, and a
    /// rank that progressed between reads can stitch a chimera
    /// "cycle" out of waits that never coexisted (the later reads are
    /// real waits, the earlier ones already over); an unchanged epoch
    /// proves the wait held continuously, so one consistent re-read
    /// proves all the waits coexist *simultaneously*. Second, the
    /// same re-read after the confirm window catches members that
    /// made progress during it: consuming a packet bumps the
    /// consumer's epoch. Third, the `pending` predicate — "does rank
    /// r have a packet queued from rank s?", answered by the caller
    /// from the mailboxes — catches members that *could* move but
    /// haven't been scheduled: a starved rank can sit on a
    /// deliverable packet for longer than any confirm window while
    /// its slot still reads `WaitingOn`, and that wait is
    /// satisfiable, not deadlocked. A cycle counts only if every
    /// member's awaited edge is empty at both ends of the window.
    pub fn diagnose_deadlock(
        &self,
        rank: usize,
        waiting_on: usize,
        confirm: std::time::Duration,
        pending: impl Fn(usize, usize) -> bool,
    ) -> Option<CommError> {
        let observed = self.find_cycle(rank)?;
        let still_observed = || {
            observed
                .iter()
                .all(|&(r, epoch, s)| self.load(r) == (epoch, RankState::WaitingOn(s)))
        };
        let awaited_edges_empty = || observed.iter().all(|&(r, _, s)| !pending(r, s));
        if !still_observed() || !awaited_edges_empty() {
            return None;
        }
        std::thread::sleep(confirm);
        if !still_observed() || !awaited_edges_empty() {
            return None;
        }
        // Canonicalize: start the cycle at its smallest member.
        let min_pos = observed
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(r, _, _))| r)
            .map(|(i, _)| i)
            .unwrap();
        let n = observed.len();
        let cycle: Vec<WaitEdge> = (0..n)
            .map(|i| {
                let (waiter, _, waiting_on) = observed[(min_pos + i) % n];
                WaitEdge { waiter, waiting_on }
            })
            .collect();
        for e in &cycle {
            if e.waiter != rank {
                self.post_verdict(
                    e.waiter,
                    CommError::Deadlock {
                        rank: e.waiter,
                        waiting_on: e.waiting_on,
                        cycle: cycle.clone(),
                    },
                );
            }
        }
        Some(CommError::Deadlock {
            rank,
            waiting_on,
            cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn transitions_bump_epoch_and_decode() {
        let js = JobState::new(3);
        assert_eq!(js.state_of(0), RankState::Running);
        js.set_waiting(0, 2);
        assert_eq!(js.state_of(0), RankState::WaitingOn(2));
        let (e1, _) = js.load(0);
        js.set_running(0);
        js.set_waiting(0, 2);
        let (e2, s) = js.load(0);
        assert_eq!(s, RankState::WaitingOn(2));
        assert!(e2 > e1, "re-entering the same wait must look different");
        js.set_done(0, true);
        assert_eq!(js.state_of(0), RankState::Finished);
        js.set_done(1, false);
        assert_eq!(js.state_of(1), RankState::Failed);
    }

    #[test]
    fn two_cycle_is_diagnosed_and_verdict_posted() {
        let js = JobState::new(4);
        js.set_waiting(2, 3);
        js.set_waiting(3, 2);
        let err = js
            .diagnose_deadlock(3, 2, Duration::from_millis(1), |_, _| false)
            .expect("cycle must be found");
        match &err {
            CommError::Deadlock {
                rank,
                waiting_on,
                cycle,
            } => {
                assert_eq!((*rank, *waiting_on), (3, 2));
                assert_eq!(
                    cycle.as_slice(),
                    &[
                        WaitEdge {
                            waiter: 2,
                            waiting_on: 3
                        },
                        WaitEdge {
                            waiter: 3,
                            waiting_on: 2
                        }
                    ]
                );
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        // The other member got the same cycle as a verdict.
        let v = js.take_verdict(2).expect("verdict posted for rank 2");
        assert_eq!(v.waiting_on(), Some(3));
        assert!(js.take_verdict(3).is_none(), "initiator keeps its own");
    }

    #[test]
    fn waiters_on_inverts_the_wait_edges() {
        let js = JobState::new(5);
        js.set_waiting(1, 3);
        js.set_waiting(2, 3);
        js.set_waiting(4, 0);
        assert_eq!(js.waiters_on(3), vec![1, 2]);
        assert_eq!(js.waiters_on(0), vec![4]);
        assert!(js.waiters_on(1).is_empty());
        js.set_running(1);
        assert_eq!(js.waiters_on(3), vec![2]);
    }

    #[test]
    fn member_that_moves_mid_confirm_vetoes_the_diagnosis() {
        // 2↔3 look deadlocked at walk time, but rank 3 makes progress
        // during the confirm window and re-enters the *same* wait. The
        // state alone is indistinguishable; the epoch is not.
        let js = std::sync::Arc::new(JobState::new(4));
        js.set_waiting(2, 3);
        js.set_waiting(3, 2);
        let mover = {
            let js = std::sync::Arc::clone(&js);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                js.set_running(3);
                js.set_waiting(3, 2);
            })
        };
        let verdict = js.diagnose_deadlock(2, 3, Duration::from_millis(200), |_, _| false);
        mover.join().unwrap();
        assert!(verdict.is_none(), "a member that moved is not deadlocked");
        assert!(js.take_verdict(3).is_none(), "no verdict may be posted");
    }

    #[test]
    fn chain_to_running_rank_is_not_a_deadlock() {
        let js = JobState::new(3);
        js.set_waiting(0, 1);
        js.set_waiting(1, 2); // rank 2 still running
        assert!(js
            .diagnose_deadlock(0, 1, Duration::from_millis(1), |_, _| false)
            .is_none());
    }

    #[test]
    fn waiter_outside_cycle_is_diagnosed_too() {
        // 0 waits on 1; 1 and 2 deadlock each other. Rank 0 will never
        // be served either, and its walk finds the cycle.
        let js = JobState::new(3);
        js.set_waiting(0, 1);
        js.set_waiting(1, 2);
        js.set_waiting(2, 1);
        let err = js
            .diagnose_deadlock(0, 1, Duration::from_millis(1), |_, _| false)
            .expect("transitive deadlock");
        match err {
            CommError::Deadlock { cycle, .. } => {
                assert_eq!(cycle.len(), 2);
                assert_eq!(cycle[0].waiter, 1);
            }
            other => panic!("{other:?}"),
        }
    }
}
