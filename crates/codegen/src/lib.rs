//! # otter-codegen
//!
//! The back half of the Otter compiler (paper §3, passes 4-7):
//!
//! * **Lowering** ([`lower()`](lower::lower)) — pass 4 (expression rewriting: hoist
//!   communication-bearing subexpressions to statement level as
//!   run-time-library calls) and pass 5 (owner-computes guards around
//!   element stores, `ML_broadcast` for remote element reads).
//! * **Peephole optimization** ([`peephole()`](peephole::peephole)) — pass 6: collapse
//!   sequences of run-time calls (copy-propagation of `ML_tmp*`
//!   destinations, multiply+sum → dot fusion).
//! * **C emission** ([`c_emit`]) — pass 7: traverse the IR "emitting C
//!   code interspersed with calls to the run-time library", matching
//!   the shape of the paper's two §3 excerpts.

pub mod c_emit;
pub mod error;
pub mod frees;
pub mod fusion;
pub mod lower;
pub mod peephole;

pub use c_emit::emit_c;
pub use error::CodegenError;
pub use frees::insert_frees;
pub use fusion::{fuse, FusionStats};
pub use lower::lower;
pub use peephole::peephole;
