//! Randomised (deterministic, seeded) tests for the message-passing
//! substrate: collectives must equal their sequential specifications
//! for any payload and any rank count, and virtual time must behave
//! like time.

use otter_det::DetRng;
use otter_machine::{meiko_cs2, sparc20_cluster};
use otter_mpi::{run_spmd, ReduceOp};

/// allreduce(Sum) equals the sequential sum of per-rank
/// contributions, on every rank, for every machine shape.
#[test]
fn allreduce_sum_is_sequential_sum() {
    let mut rng = DetRng::seed_from_u64(0xC011_0001);
    for _ in 0..24 {
        let p = 1 + rng.gen_index(16);
        let len = rng.gen_index(20);
        let seed = rng.next_u64();
        let contribution = move |rank: usize| -> Vec<f64> {
            (0..len)
                .map(|i| {
                    ((rank as u64 + 1)
                        .wrapping_mul(i as u64 + 1)
                        .wrapping_mul(seed | 1)
                        % 1000) as f64
                        / 9.0
                })
                .collect()
        };
        let mut expect = vec![0.0; len];
        for r in 0..p {
            for (e, v) in expect.iter_mut().zip(contribution(r)) {
                *e += v;
            }
        }
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            c.allreduce(&contribution(c.rank()), ReduceOp::Sum)
        });
        for r in &res {
            for (got, want) in r.value.iter().zip(&expect) {
                assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()));
            }
        }
    }
}

/// Max/min allreduce equal the sequential extremes exactly.
#[test]
fn allreduce_extremes_exact() {
    let mut rng = DetRng::seed_from_u64(0xC011_0002);
    for _ in 0..24 {
        let p = 1 + rng.gen_index(16);
        let seed = rng.next_u64();
        let val =
            move |rank: usize| ((rank as u64 + 7).wrapping_mul(seed | 3) % 10007) as f64 - 5000.0;
        let expect_max = (0..p).map(val).fold(f64::NEG_INFINITY, f64::max);
        let expect_min = (0..p).map(val).fold(f64::INFINITY, f64::min);
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            Ok((
                c.allreduce_scalar(val(c.rank()), ReduceOp::Max)?,
                c.allreduce_scalar(val(c.rank()), ReduceOp::Min)?,
            ))
        });
        for r in &res {
            assert_eq!(r.value.0, expect_max);
            assert_eq!(r.value.1, expect_min);
        }
    }
}

/// Broadcast delivers the root's payload verbatim to all ranks, from
/// every root.
#[test]
fn broadcast_delivers_from_any_root() {
    let mut rng = DetRng::seed_from_u64(0xC011_0003);
    for _ in 0..24 {
        let p = 1 + rng.gen_index(12);
        let root = rng.gen_index(p);
        let len = rng.gen_index(16);
        let payload: Vec<f64> = (0..len).map(|i| i as f64 * 3.25).collect();
        let expect = payload.clone();
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let data = if c.rank() == root {
                payload.clone()
            } else {
                vec![]
            };
            c.broadcast(root, &data)
        });
        for r in &res {
            assert_eq!(&r.value, &expect);
        }
    }
}

/// scatter ∘ gather round-trips per-rank payloads.
#[test]
fn scatter_gather_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xC011_0004);
    for _ in 0..24 {
        let p = 1 + rng.gen_index(9);
        let seed = rng.next_u64();
        let parts: Vec<Vec<f64>> = (0..p)
            .map(|r| {
                (0..(r + seed as usize % 3))
                    .map(|i| (r * 100 + i) as f64)
                    .collect()
            })
            .collect();
        let expect = parts.clone();
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            let mine = c.scatter(0, &if c.rank() == 0 { parts.clone() } else { vec![] })?;
            c.gather(0, &mine)
        });
        assert_eq!(res[0].value.as_ref().unwrap(), &expect);
        for r in &res[1..] {
            assert!(r.value.is_none());
        }
    }
}

/// Virtual clocks never run backwards and a barrier equalizes
/// everyone to at least the slowest rank's pre-barrier time.
#[test]
fn barrier_is_a_time_fence() {
    let mut rng = DetRng::seed_from_u64(0xC011_0005);
    for _ in 0..24 {
        let p = 2 + rng.gen_index(7);
        let slow = rng.gen_index(p);
        let res = run_spmd(&sparc20_cluster(), p, move |c| {
            if c.rank() == slow {
                c.compute(2e6);
            }
            let before = c.clock();
            c.barrier()?;
            let after = c.clock();
            Ok((before, after))
        });
        let slowest_before = res.iter().map(|r| r.value.0).fold(0.0, f64::max);
        for r in &res {
            assert!(r.value.1 >= r.value.0, "clock monotone");
            assert!(
                r.value.1 >= slowest_before,
                "rank {} passed the barrier at {} before the slowest rank reached it ({})",
                r.rank,
                r.value.1,
                slowest_before
            );
        }
    }
}

/// allgather gives every rank everyone's contribution in rank order.
#[test]
fn allgather_ordered() {
    let mut rng = DetRng::seed_from_u64(0xC011_0006);
    for _ in 0..12 {
        let p = 1 + rng.gen_index(8);
        let res = run_spmd(&meiko_cs2(), p, move |c| {
            c.allgather(&[c.rank() as f64, (c.rank() * 2) as f64])
        });
        for r in &res {
            assert_eq!(r.value.len(), p);
            for (i, part) in r.value.iter().enumerate() {
                assert_eq!(part.as_slice(), &[i as f64, (i * 2) as f64]);
            }
        }
    }
}
