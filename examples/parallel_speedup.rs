//! The paper's core claim, live: run the conjugate-gradient benchmark
//! on all three modeled 1998 architectures and watch how the speedup
//! over the MATLAB interpreter depends on the machine's balance of
//! compute and communication.
//!
//! ```text
//! cargo run --release --example parallel_speedup          # n = 512
//! cargo run --release --example parallel_speedup -- 2048  # paper scale
//! ```

use otter_apps::cg;
use otter_core::{compile, run, run_engine, EngineOptions, InterpreterEngine, RunRequest};
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let app = cg::conjugate_gradient(cg::Params {
        n,
        iters: 30,
        tol: 1e-12,
    });
    println!("Conjugate gradient, n = {n}: speedup over the MATLAB interpreter\n");

    let artifact = compile(&app.script, &EngineOptions::default()).expect("CG compiles");
    for machine in [meiko_cs2(), sparc20_cluster(), enterprise_smp()] {
        let interp = run_engine(
            &mut InterpreterEngine::new(EngineOptions::default()),
            &app.script,
            &machine,
            1,
        )
        .expect("interpreter baseline");
        print!("{:<22}", machine.name);
        let mut p = 1;
        while p <= machine.max_cpus {
            let run = run(&artifact, &RunRequest::on(machine.clone(), p)).expect("compiled run");
            print!(
                "  p={p}: {:>6.1}x",
                interp.modeled_seconds / run.modeled_seconds
            );
            p *= 2;
        }
        println!();
    }
    println!("\nNote how the Ethernet cluster's speedup collapses beyond one");
    println!("4-CPU node (paper §6: \"a severe damper on speedup achieved");
    println!("beyond four CPUs\"), while the Meiko CS-2's balanced network");
    println!("keeps scaling to 16.");
}
