//! Block-distribution arithmetic.
//!
//! Paper §4: "matrices are distributed in row-contiguous fashion among
//! the memories of the processors, while vectors are distributed by
//! blocks". Both reduce to the same balanced block partition of `n`
//! items over `p` ranks: the first `n mod p` ranks get `⌈n/p⌉` items,
//! the rest get `⌊n/p⌋`. "Matrices of identical size are distributed
//! identically" falls out because the partition is a pure function of
//! `(n, p)`.

/// The balanced block partition of `n` items over `p` parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    pub n: usize,
    pub p: usize,
}

impl Block {
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        Block { n, p }
    }

    /// Number of items rank `r` owns.
    pub fn count(&self, r: usize) -> usize {
        assert!(r < self.p, "rank {r} out of {}", self.p);
        let base = self.n / self.p;
        let rem = self.n % self.p;
        base + usize::from(r < rem)
    }

    /// Global index of rank `r`'s first item.
    pub fn start(&self, r: usize) -> usize {
        assert!(r < self.p, "rank {r} out of {}", self.p);
        let base = self.n / self.p;
        let rem = self.n % self.p;
        r * base + r.min(rem)
    }

    /// One past rank `r`'s last item.
    pub fn end(&self, r: usize) -> usize {
        self.start(r) + self.count(r)
    }

    /// Global index range owned by rank `r`.
    pub fn range(&self, r: usize) -> std::ops::Range<usize> {
        self.start(r)..self.end(r)
    }

    /// The rank owning global item `i` (the `ML_owner` computation).
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "item {i} out of {}", self.n);
        let base = self.n / self.p;
        let rem = self.n % self.p;
        let cutoff = rem * (base + 1);
        if i < cutoff {
            i / (base + 1)
        } else {
            rem + (i - cutoff) / base.max(1)
        }
    }

    /// Convert a global index to the owner's local offset.
    pub fn to_local(&self, i: usize) -> usize {
        i - self.start(self.owner(i))
    }

    /// Largest per-rank count — the load-balance bound.
    pub fn max_count(&self) -> usize {
        self.count(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_n() {
        for n in [0usize, 1, 5, 16, 17, 100, 2048] {
            for p in [1usize, 2, 3, 7, 8, 16] {
                let b = Block::new(n, p);
                let total: usize = (0..p).map(|r| b.count(r)).sum();
                assert_eq!(total, n, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn ranges_partition_contiguously() {
        for n in [1usize, 13, 64, 100] {
            for p in [1usize, 3, 5, 16] {
                let b = Block::new(n, p);
                let mut next = 0;
                for r in 0..p {
                    assert_eq!(b.start(r), next, "n={n} p={p} r={r}");
                    next = b.end(r);
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn owner_matches_ranges() {
        for n in [1usize, 13, 64, 100, 2048] {
            for p in [1usize, 3, 5, 7, 16] {
                let b = Block::new(n, p);
                for i in 0..n {
                    let o = b.owner(i);
                    assert!(b.range(o).contains(&i), "n={n} p={p} i={i} -> {o}");
                }
            }
        }
    }

    #[test]
    fn owner_is_unique_partition() {
        // Every item has exactly one owner — paper assumption 3
        // (owner-computes) depends on this.
        let b = Block::new(37, 8);
        let mut counts = vec![0usize; 37];
        for r in 0..8 {
            for i in b.range(r) {
                counts[i] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn to_local_round_trips() {
        let b = Block::new(23, 4);
        for i in 0..23 {
            let r = b.owner(i);
            let l = b.to_local(i);
            assert_eq!(b.start(r) + l, i);
            assert!(l < b.count(r));
        }
    }

    #[test]
    fn balance_within_one() {
        for n in [5usize, 16, 17, 100] {
            for p in [2usize, 3, 8] {
                let b = Block::new(n, p);
                let max = (0..p).map(|r| b.count(r)).max().unwrap();
                let min = (0..p).map(|r| b.count(r)).min().unwrap();
                assert!(max - min <= 1, "n={n} p={p}");
                assert_eq!(b.max_count(), max);
            }
        }
    }

    #[test]
    fn more_ranks_than_items() {
        let b = Block::new(3, 8);
        assert_eq!((0..8).map(|r| b.count(r)).sum::<usize>(), 3);
        assert_eq!(b.count(0), 1);
        assert_eq!(b.count(3), 0);
        assert_eq!(b.owner(2), 2);
    }
}
