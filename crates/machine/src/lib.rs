//! # otter-machine
//!
//! Performance models of the three parallel architectures the paper
//! benchmarks on (§6), plus the single-workstation model used for the
//! sequential comparison (§5):
//!
//! * **Meiko CS-2** — 16-CPU distributed-memory multicomputer with a
//!   fat-tree interconnect; the paper calls it "the best balance
//!   between processor speed, message latency, and aggregate
//!   message-passing bandwidth".
//! * **SPARCserver-20 cluster** — four 4-CPU SMPs joined by Ethernet;
//!   "the most unbalanced system", whose "relatively high latency and
//!   low bandwidth ... puts a severe damper on speedup achieved beyond
//!   four CPUs".
//! * **Sun Enterprise SMP** — an 8-CPU shared-memory machine.
//!
//! The original hardware is unavailable, so these models capture what
//! determines the *shape* of the paper's figures: per-CPU compute rate,
//! per-message latency (α), per-byte transfer time (β), and — for the
//! bus-based SMP and the Ethernet cluster — an aggregate-bandwidth
//! ceiling that makes communication contend when many CPUs talk at
//! once. The virtual-time engine in `otter-mpi` charges costs against
//! these models.

pub mod cost;
pub mod machine;
pub mod presets;

pub use cost::{ExecutionStyle, OpClass, StyleCosts};
pub use machine::{CpuModel, LinkModel, Machine, Topology};
pub use presets::{all_parallel, enterprise_smp, meiko_cs2, sparc20_cluster, workstation};
