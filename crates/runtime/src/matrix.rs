//! The distributed MATRIX object (paper §4).
//!
//! "Every matrix and vector is represented on each processor by a C
//! structure named MATRIX which contains global information about its
//! type, rank, and shape ... \[and\] processor-dependent information,
//! such as the total number of matrix elements stored on a particular
//! processor."
//!
//! Distribution policy (paper §4, final paragraph):
//! * matrices — row-contiguous blocks over the ranks;
//! * vectors (either orientation) — element blocks;
//! * scalars — replicated (they never appear as `DistMatrix`).
//!
//! Because the partition is a pure function of the distributed extent
//! and `p`, "matrices of identical size are distributed identically"
//! holds by construction, which is what lets the compiler emit
//! communication-free element-wise loops.

use crate::dense::Dense;
use crate::dist::Block;
use otter_mpi::{Comm, CommError};
use otter_trace::EventKind;

/// A matrix or vector distributed across the ranks of a job.
#[derive(Debug, PartialEq)]
pub struct DistMatrix {
    rows: usize,
    cols: usize,
    /// Job size the object was distributed over.
    p: usize,
    /// Owning rank of this replica.
    rank: usize,
    /// Locally owned elements, row-major over the owned slice.
    local: Vec<f64>,
}

// Clone and Drop are written out (not derived) so every local block
// passes through the thread-local allocation accountant; the peak it
// records is the `peak_temp_bytes` engine counter.
impl Clone for DistMatrix {
    fn clone(&self) -> Self {
        crate::alloc::note_alloc(self.local.len() * 8);
        DistMatrix {
            rows: self.rows,
            cols: self.cols,
            p: self.p,
            rank: self.rank,
            local: self.local.clone(),
        }
    }
}

impl Drop for DistMatrix {
    fn drop(&mut self) {
        crate::alloc::note_free(self.local.len() * 8);
    }
}

impl DistMatrix {
    // ---- shape ------------------------------------------------------------

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total (global) element count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// MATLAB vector: one row or one column.
    pub fn is_vector(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// The extent the object is distributed over: element count for
    /// vectors, row count for matrices.
    pub fn dist_extent(&self) -> usize {
        if self.is_vector() {
            self.len()
        } else {
            self.rows
        }
    }

    /// The block partition governing this object.
    pub fn block(&self) -> Block {
        Block::new(self.dist_extent(), self.p)
    }

    /// Elements per distributed item: `cols` for matrices, 1 for
    /// vectors.
    pub fn item_width(&self) -> usize {
        if self.is_vector() {
            1
        } else {
            self.cols
        }
    }

    /// True if `other` is aligned with `self` (same shape ⇒ same
    /// distribution; the compiler relies on this).
    pub fn aligned_with(&self, other: &DistMatrix) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.p == other.p
    }

    /// Locally owned data, row-major over the owned slice
    /// (the paper's `realbase`).
    pub fn local(&self) -> &[f64] {
        &self.local
    }

    /// Mutable local data.
    pub fn local_mut(&mut self) -> &mut [f64] {
        &mut self.local
    }

    /// Number of locally stored elements (`ML_local_els`).
    pub fn local_els(&self) -> usize {
        self.local.len()
    }

    // ---- constructors -------------------------------------------------------

    /// Internal: build a zero-filled object of the right local size.
    fn alloc(comm: &Comm, rows: usize, cols: usize) -> DistMatrix {
        let mut m = DistMatrix {
            rows,
            cols,
            p: comm.size(),
            rank: comm.rank(),
            local: Vec::new(),
        };
        let n_local = m.block().count(comm.rank()) * m.item_width();
        m.local = vec![0.0; n_local];
        crate::alloc::note_alloc(n_local * 8);
        m
    }

    /// Distributed zeros (`ML_init` + fill).
    pub fn zeros(comm: &Comm, rows: usize, cols: usize) -> DistMatrix {
        Self::alloc(comm, rows, cols)
    }

    /// Distributed ones.
    pub fn ones(comm: &Comm, rows: usize, cols: usize) -> DistMatrix {
        let mut m = Self::alloc(comm, rows, cols);
        m.local.fill(1.0);
        m
    }

    /// Distributed identity.
    pub fn eye(comm: &Comm, n: usize) -> DistMatrix {
        let mut m = Self::alloc(comm, n, n);
        let b = m.block();
        for (li, gi) in b.range(comm.rank()).enumerate() {
            m.local[li * n + gi] = 1.0;
        }
        m
    }

    /// Distribute a dense value every rank already holds (matrix
    /// literals and results of replicated scalar computation): each
    /// rank slices out its block, no communication.
    pub fn from_replicated(comm: &Comm, full: &Dense) -> DistMatrix {
        let t0 = comm.clock();
        let mut m = Self::alloc(comm, full.rows(), full.cols());
        let b = m.block();
        let r = comm.rank();
        if m.is_vector() {
            for (li, gi) in b.range(r).enumerate() {
                // Vectors are stored in their natural element order.
                m.local[li] = if full.rows() == 1 {
                    full.get(0, gi)
                } else {
                    full.get(gi, 0)
                };
            }
        } else {
            let w = full.cols();
            for (li, gi) in b.range(r).enumerate() {
                m.local[li * w..(li + 1) * w].copy_from_slice(full.row(gi));
            }
        }
        comm.emit_span(
            EventKind::Phase {
                name: "ML_distribute",
            },
            t0,
        );
        m
    }

    /// Distribute the MATLAB range `start:step:stop` as a row vector.
    pub fn range(comm: &Comm, start: f64, step: f64, stop: f64) -> DistMatrix {
        // Cheap enough to build locally: each rank materializes only
        // its block.
        let full = Dense::range(start, step, stop);
        Self::from_replicated(comm, &full)
    }

    /// Scatter a dense matrix held only by `root` (paper assumption 5:
    /// one processor coordinates I/O). Non-root ranks pass `None`.
    pub fn scatter_from(
        comm: &mut Comm,
        root: usize,
        full: Option<&Dense>,
    ) -> Result<DistMatrix, CommError> {
        let t0 = comm.clock();
        // Broadcast the shape first.
        let shape = match full {
            Some(d) => vec![d.rows() as f64, d.cols() as f64],
            None => vec![0.0, 0.0],
        };
        let shape = comm.broadcast(root, &shape)?;
        let (rows, cols) = (shape[0] as usize, shape[1] as usize);
        let mut m = Self::alloc(comm, rows, cols);
        let b = m.block();
        let w = m.item_width();
        let parts: Vec<Vec<f64>> = if comm.rank() == root {
            let d = full.expect("root must supply the dense matrix");
            // Row-major dense data lines up with vector order too,
            // except for 1×n row vectors, where row-major == element
            // order anyway, and n×1 columns, where it also matches.
            (0..comm.size())
                .map(|r| {
                    let lo = b.start(r) * w;
                    let hi = b.end(r) * w;
                    d.data()[lo..hi].to_vec()
                })
                .collect()
        } else {
            Vec::new()
        };
        m.local = comm.scatter(root, &parts)?;
        comm.emit_span(EventKind::Phase { name: "ML_scatter" }, t0);
        crate::note_rt_op(comm, "ML_scatter", t0);
        Ok(m)
    }

    /// Gather the full matrix onto every rank (used by `disp`, small
    /// intermediates, and test oracles).
    pub fn gather_all(&self, comm: &mut Comm) -> Result<Dense, CommError> {
        let t0 = comm.clock();
        let parts = comm.allgather(&self.local)?;
        let mut data = Vec::with_capacity(self.len());
        for p in parts {
            data.extend_from_slice(&p);
        }
        comm.emit_span(
            EventKind::Phase {
                name: "ML_gather_all",
            },
            t0,
        );
        crate::note_rt_op(comm, "ML_gather_all", t0);
        Ok(if self.is_vector() && self.rows > 1 {
            Dense::from_vec(self.rows, 1, data)
        } else if self.is_vector() {
            Dense::from_vec(1, self.cols, data)
        } else {
            Dense::from_vec(self.rows, self.cols, data)
        })
    }

    /// Gather onto `root` only; others get `None`.
    pub fn gather_to(&self, comm: &mut Comm, root: usize) -> Result<Option<Dense>, CommError> {
        let t0 = comm.clock();
        let parts = comm.gather(root, &self.local)?;
        comm.emit_span(EventKind::Phase { name: "ML_gather" }, t0);
        crate::note_rt_op(comm, "ML_gather", t0);
        let Some(parts) = parts else { return Ok(None) };
        let mut data = Vec::with_capacity(self.len());
        for p in parts {
            data.extend_from_slice(&p);
        }
        Ok(Some(if self.is_vector() && self.rows > 1 {
            Dense::from_vec(self.rows, 1, data)
        } else if self.is_vector() {
            Dense::from_vec(1, self.cols, data)
        } else {
            Dense::from_vec(self.rows, self.cols, data)
        }))
    }

    // ---- element access ------------------------------------------------------

    /// The distributed item index of element (i, j): the linear index
    /// for vectors, the row for matrices.
    fn item_of(&self, i: usize, j: usize) -> usize {
        if self.is_vector() {
            if self.rows == 1 {
                j
            } else {
                i
            }
        } else {
            i
        }
    }

    /// `ML_owner`: does the calling rank store element (i, j)?
    /// 0-based, like the generated C after its `- 1` adjustment.
    pub fn is_owner(&self, i: usize, j: usize) -> bool {
        self.owner_rank(i, j) == self.rank
    }

    /// Which rank owns element (i, j).
    pub fn owner_rank(&self, i: usize, j: usize) -> usize {
        assert!(
            i < self.rows && j < self.cols,
            "({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.block().owner(self.item_of(i, j))
    }

    /// Local offset of an owned element (`ML_realaddr2`). Panics if
    /// not owned.
    pub fn local_offset(&self, i: usize, j: usize) -> usize {
        assert!(
            self.is_owner(i, j),
            "rank {} does not own ({i},{j})",
            self.rank
        );
        let item = self.item_of(i, j);
        let li = item - self.block().start(self.rank);
        if self.is_vector() {
            li
        } else {
            li * self.cols + j
        }
    }

    /// Read an owned element without communication.
    pub fn get_local(&self, i: usize, j: usize) -> f64 {
        self.local[self.local_offset(i, j)]
    }

    /// Write an element *if owned* — the owner-computes guard the
    /// paper's pass 5 wraps around element assignments. Returns whether
    /// this rank performed the store.
    pub fn set_if_owner(&mut self, i: usize, j: usize, v: f64) -> bool {
        if self.is_owner(i, j) {
            let off = self.local_offset(i, j);
            self.local[off] = v;
            true
        } else {
            false
        }
    }

    /// `ML_broadcast`: fetch element (i, j) to every rank. The owner
    /// broadcasts; everyone must call.
    pub fn get_bcast(&self, comm: &mut Comm, i: usize, j: usize) -> Result<f64, CommError> {
        let owner = self.owner_rank(i, j);
        let v = if owner == comm.rank() {
            self.get_local(i, j)
        } else {
            0.0
        };
        comm.broadcast_scalar(owner, v)
    }

    /// Build from explicitly provided local data (used by the linear
    /// algebra kernels). `local` must have exactly the right length.
    pub(crate) fn from_local(comm: &Comm, rows: usize, cols: usize, local: Vec<f64>) -> DistMatrix {
        let m = DistMatrix {
            rows,
            cols,
            p: comm.size(),
            rank: comm.rank(),
            local,
        };
        debug_assert_eq!(m.local.len(), m.block().count(comm.rank()) * m.item_width());
        crate::alloc::note_alloc(m.local.len() * 8);
        m
    }

    /// Global row range owned locally (matrices) or element range
    /// (vectors).
    pub fn local_range(&self) -> std::ops::Range<usize> {
        self.block().range(self.rank)
    }

    /// New object with the same shape and distribution but replaced
    /// local data (the result buffer of a fused element-wise loop).
    pub fn with_local(&self, local: Vec<f64>) -> DistMatrix {
        assert_eq!(local.len(), self.local_els(), "with_local length mismatch");
        crate::alloc::note_alloc(local.len() * 8);
        DistMatrix {
            rows: self.rows,
            cols: self.cols,
            p: self.p,
            rank: self.rank,
            local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_machine::meiko_cs2;
    use otter_mpi::run_spmd;

    fn counting_dense(rows: usize, cols: usize) -> Dense {
        Dense::from_vec(rows, cols, (0..rows * cols).map(|k| k as f64).collect())
    }

    #[test]
    fn local_sizes_partition_matrix() {
        for p in [1, 2, 3, 5, 8] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                let m = DistMatrix::zeros(c, 10, 4);
                Ok(m.local_els())
            });
            let total: usize = res.iter().map(|r| r.value).sum();
            assert_eq!(total, 40, "p={p}");
        }
    }

    #[test]
    fn replicated_round_trips_through_gather() {
        let d = counting_dense(7, 3);
        for p in [1, 2, 4, 7] {
            let dd = d.clone();
            let res = run_spmd(&meiko_cs2(), p, move |c| {
                let m = DistMatrix::from_replicated(c, &dd);
                m.gather_all(c)
            });
            for r in &res {
                assert_eq!(r.value, d, "p={p}");
            }
        }
    }

    #[test]
    fn vector_round_trips_both_orientations() {
        for (rows, cols) in [(1usize, 9usize), (9, 1)] {
            let d = counting_dense(rows, cols);
            let dd = d.clone();
            let res = run_spmd(&meiko_cs2(), 4, move |c| {
                DistMatrix::from_replicated(c, &dd).gather_all(c)
            });
            assert_eq!(res[0].value, d, "{rows}x{cols}");
        }
    }

    #[test]
    fn scatter_matches_replicated() {
        let d = counting_dense(6, 5);
        let dd = d.clone();
        let res = run_spmd(&meiko_cs2(), 3, move |c| {
            let via_scatter = if c.rank() == 0 {
                DistMatrix::scatter_from(c, 0, Some(&dd))?
            } else {
                DistMatrix::scatter_from(c, 0, None)?
            };
            let via_repl = DistMatrix::from_replicated(c, &dd);
            Ok((via_scatter.local().to_vec(), via_repl.local().to_vec()))
        });
        for r in &res {
            assert_eq!(r.value.0, r.value.1);
        }
    }

    #[test]
    fn eye_has_unit_trace_rows() {
        let res = run_spmd(&meiko_cs2(), 4, |c| DistMatrix::eye(c, 9).gather_all(c));
        assert_eq!(res[0].value, Dense::eye(9));
    }

    #[test]
    fn owner_is_exactly_one_rank() {
        let res = run_spmd(&meiko_cs2(), 5, |c| {
            let m = DistMatrix::zeros(c, 11, 3);
            let mut owned = Vec::new();
            for i in 0..11 {
                for j in 0..3 {
                    if m.is_owner(i, j) {
                        owned.push((i, j));
                    }
                }
            }
            Ok(owned)
        });
        let mut all: Vec<(usize, usize)> = res.iter().flat_map(|r| r.value.clone()).collect();
        all.sort();
        let expect: Vec<(usize, usize)> =
            (0..11).flat_map(|i| (0..3).map(move |j| (i, j))).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn whole_rows_live_on_one_rank() {
        // Row-contiguous property: all of row i has one owner.
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            let m = DistMatrix::zeros(c, 8, 6);
            Ok((0..8).map(|i| m.owner_rank(i, 0)).collect::<Vec<_>>())
        });
        for i in 0..8 {
            let owner = res[0].value[i];
            let r = run_spmd(&meiko_cs2(), 3, move |c| {
                let m = DistMatrix::zeros(c, 8, 6);
                Ok((0..6).all(|j| m.owner_rank(i, j) == owner))
            });
            assert!(r.iter().all(|x| x.value));
        }
    }

    #[test]
    fn get_bcast_returns_same_value_everywhere() {
        let d = counting_dense(5, 4);
        let res = run_spmd(&meiko_cs2(), 4, move |c| {
            let m = DistMatrix::from_replicated(c, &d);
            m.get_bcast(c, 3, 2)
        });
        for r in &res {
            assert_eq!(r.value, 14.0); // 3*4+2
        }
    }

    #[test]
    fn set_if_owner_updates_exactly_one_replica() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let mut m = DistMatrix::zeros(c, 8, 2);
            let wrote = m.set_if_owner(5, 1, 9.0);
            let full = m.gather_all(c)?;
            Ok((wrote, full.get(5, 1), full.sum_all()))
        });
        let writers = res.iter().filter(|r| r.value.0).count();
        assert_eq!(writers, 1);
        for r in &res {
            assert_eq!(r.value.1, 9.0);
            assert_eq!(r.value.2, 9.0);
        }
    }

    #[test]
    fn range_distributes_like_dense_range() {
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            DistMatrix::range(c, 1.0, 2.0, 11.0).gather_all(c)
        });
        assert_eq!(res[0].value, Dense::range(1.0, 2.0, 11.0));
    }

    #[test]
    fn aligned_with_same_shape() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            let a = DistMatrix::zeros(c, 5, 5);
            let b = DistMatrix::ones(c, 5, 5);
            let v = DistMatrix::zeros(c, 5, 1);
            Ok((a.aligned_with(&b), a.aligned_with(&v)))
        });
        assert_eq!(res[0].value, (true, false));
    }

    #[test]
    fn gather_to_root_only() {
        let d = counting_dense(4, 4);
        let res = run_spmd(&meiko_cs2(), 4, move |c| {
            let m = DistMatrix::from_replicated(c, &d);
            Ok(m.gather_to(c, 2)?.is_some())
        });
        let haves: Vec<bool> = res.iter().map(|r| r.value).collect();
        assert_eq!(haves, vec![false, false, true, false]);
    }
}
