//! Ablation studies for the design decisions DESIGN.md calls out.

use crate::figures::run_compiled;
use otter_apps::App;
use otter_core::{compile, run_engine, EngineOptions, InterpreterEngine};
use otter_machine::{meiko_cs2, Machine};

/// Pass-6 ablation result for one application.
#[derive(Debug, Clone)]
pub struct PeepholeAblation {
    pub app: String,
    /// IR instruction counts.
    pub instrs_with: usize,
    pub instrs_without: usize,
    /// Modeled seconds on the Meiko at `p` CPUs.
    pub p: usize,
    pub seconds_with: f64,
    pub seconds_without: f64,
    /// Messages sent with/without.
    pub messages_with: u64,
    pub messages_without: u64,
}

/// Run one app with and without the peephole pass (pass 6 is a
/// toggleable optional pass in the pass manager).
pub fn peephole_ablation(app: &App, p: usize) -> PeepholeAblation {
    let machine = meiko_cs2();
    let with = compile(&app.script, &EngineOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", app.id));
    let without = compile(
        &app.script,
        &EngineOptions::builder().disable_pass("peephole").build(),
    )
    .unwrap();
    let run_with = run_compiled(&with, &machine, p).unwrap();
    let run_without = run_compiled(&without, &machine, p).unwrap();
    // Sanity: same answers.
    for v in &app.result_vars {
        let a = run_with.scalar(v);
        let b = run_without.scalar(v);
        assert_eq!(a, b, "{}: peephole changed `{v}`", app.id);
    }
    PeepholeAblation {
        app: app.name.to_string(),
        instrs_with: with.compiled().ir.instr_count(),
        instrs_without: without.compiled().ir.instr_count(),
        p,
        seconds_with: run_with.modeled_seconds,
        seconds_without: run_without.modeled_seconds,
        messages_with: run_with.messages,
        messages_without: run_without.messages,
    }
}

/// Type-inference ablation result: what the same program costs when
/// the compiler cannot prove values are real (paper §3: "recognizing
/// that a variable is of type real rather than type complex saves half
/// the memory and significantly reduces the amount of time").
#[derive(Debug, Clone)]
pub struct TypeInferAblation {
    pub app: String,
    pub p: usize,
    /// Modeled seconds with real-typed data (inference succeeded).
    pub seconds_real: f64,
    /// Modeled seconds if every value were assumed complex.
    pub seconds_complex: f64,
    /// Bytes on the wire (doubles when every element is a pair).
    pub bytes_real: u64,
    pub bytes_complex: u64,
}

/// Run one app on the real-typed machine and on the complex-assumed
/// variant of the same machine.
pub fn typeinfer_ablation(app: &App, p: usize) -> TypeInferAblation {
    let real = meiko_cs2();
    let complex = real.assuming_complex();
    let compiled = compile(&app.script, &EngineOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", app.id));
    let run_real = run_compiled(&compiled, &real, p).unwrap();
    let run_complex = run_compiled(&compiled, &complex, p).unwrap();
    TypeInferAblation {
        app: app.name.to_string(),
        p,
        seconds_real: run_real.modeled_seconds,
        seconds_complex: run_complex.modeled_seconds,
        // Bytes double per element when complex; the run itself moves
        // the same f64 payloads, so scale the measured count.
        bytes_real: run_real.bytes,
        bytes_complex: run_real.bytes * 2,
    }
}

/// One row of the collectives ablation: modeled seconds for a fixed
/// mix of broadcasts + allreduces with tree vs linear schedules.
#[derive(Debug, Clone)]
pub struct CollectiveAblation {
    pub machine: String,
    pub p: usize,
    pub seconds_tree: f64,
    pub seconds_linear: f64,
}

/// Modeled cost of the collective schedules (binomial tree vs naive
/// linear) on a representative small-message mix: 64 rounds of a
/// 1-element broadcast + a 64-element allreduce — the per-iteration
/// pattern of the conjugate-gradient inner loop.
pub fn collectives_ablation(machine: &Machine, ps: &[usize]) -> Vec<CollectiveAblation> {
    use otter_mpi::{run_spmd_with, CollectiveAlgo, ReduceOp, SpmdOptions};
    let time = |p: usize, algo: CollectiveAlgo| -> f64 {
        let opts = SpmdOptions {
            algo,
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(machine, p, opts, move |c| {
            for _ in 0..64 {
                c.broadcast(0, &[1.0])?;
                c.allreduce(&vec![1.0; 64], ReduceOp::Sum)?;
            }
            Ok(c.clock())
        })
        .expect("ablation job runs without faults");
        res.iter().map(|r| r.clock).fold(0.0, f64::max)
    };
    ps.iter()
        .filter(|&&p| p <= machine.max_cpus)
        .map(|&p| CollectiveAblation {
            machine: machine.name.clone(),
            p,
            seconds_tree: time(p, CollectiveAlgo::Tree),
            seconds_linear: time(p, CollectiveAlgo::Linear),
        })
        .collect()
}

/// One point of the grain-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct GrainPoint {
    pub n: usize,
    /// Speedup over the interpreter at `p` CPUs.
    pub speedup: f64,
}

/// Grain-size sweep: the paper's §7 claim that "two important
/// determinants are the sizes of the matrices being manipulated and
/// the complexity of the operations performed on them". Sweeps the
/// conjugate-gradient problem size at a fixed CPU count.
pub fn grain_sweep(machine: &Machine, p: usize, sizes: &[usize]) -> Vec<GrainPoint> {
    sizes
        .iter()
        .map(|&n| {
            let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params {
                n,
                iters: 20,
                tol: 0.0,
            });
            let interp = run_engine(
                &mut InterpreterEngine::new(EngineOptions::default()),
                &app.script,
                machine,
                1,
            )
            .unwrap();
            let compiled = compile(&app.script, &EngineOptions::default()).unwrap();
            let run = run_compiled(&compiled, machine, p).unwrap();
            GrainPoint {
                n,
                speedup: interp.modeled_seconds / run.modeled_seconds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peephole_never_hurts() {
        let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params::test());
        let a = peephole_ablation(&app, 4);
        assert!(a.instrs_with <= a.instrs_without, "{a:?}");
        assert!(a.seconds_with <= a.seconds_without * 1.001, "{a:?}");
    }

    #[test]
    fn complex_assumption_costs_real_time() {
        let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params::test());
        let a = typeinfer_ablation(&app, 4);
        assert!(
            a.seconds_complex > 2.0 * a.seconds_real,
            "complex arithmetic must cost ~3x compute: {a:?}"
        );
        assert_eq!(a.bytes_complex, 2 * a.bytes_real);
    }

    #[test]
    fn tree_collectives_win_at_scale() {
        let rows = collectives_ablation(&meiko_cs2(), &[2, 16]);
        let at16 = rows.iter().find(|r| r.p == 16).unwrap();
        assert!(
            at16.seconds_linear > 1.5 * at16.seconds_tree,
            "linear must lose at p=16: {at16:?}"
        );
        let at2 = rows.iter().find(|r| r.p == 2).unwrap();
        // At p=2 the schedules are nearly identical.
        assert!((at2.seconds_linear / at2.seconds_tree) < 1.2, "{at2:?}");
    }

    #[test]
    fn speedup_grows_with_grain() {
        let pts = grain_sweep(&meiko_cs2(), 8, &[32, 256]);
        assert!(
            pts[1].speedup > pts[0].speedup,
            "bigger matrices must speed up more: {pts:?}"
        );
    }
}
