//! Codegen diagnostics.

use otter_frontend::Span;
use std::fmt;

/// An error raised while lowering or emitting code.
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenError {
    pub message: String,
    pub span: Span,
}

impl CodegenError {
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        CodegenError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_dummy() {
            write!(f, "codegen error: {}", self.message)
        } else {
            write!(f, "codegen error at {}: {}", self.span, self.message)
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<CodegenError> for otter_frontend::Diagnostic {
    fn from(e: CodegenError) -> Self {
        otter_frontend::Diagnostic::new("codegen", e.message).with_span(e.span)
    }
}

pub type Result<T> = std::result::Result<T, CodegenError>;
