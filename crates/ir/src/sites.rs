//! Stable enumeration of *communication sites* — the leaf
//! instructions of a program, in deterministic pre-order.
//!
//! Both consumers must agree on this order exactly:
//!
//! * the **static oracle** (`otter-lint::oracle`) predicts a
//!   `messages(p)` / `bytes(p)` formula per site;
//! * the **executor** (`otter-core::exec`) measures the realized
//!   communication per site when analysis is enabled.
//!
//! The cross-validation property (`tests/shape_oracle_prop.rs`)
//! asserts the two agree site-by-site, which is only meaningful if
//! site *k* means the same instruction to both. The order is: every
//! leaf of `main`, then every leaf of each function in `BTreeMap`
//! (name) order; control flow (`if`/`while`/`for`) is descended —
//! condition-feeding `pre` blocks before bodies — and is itself not a
//! site, and neither are `call`/`break`/`continue` (they never
//! communicate; the callee's body instructions are enumerated under
//! the callee).

use crate::instr::{Instr, IrProgram};

/// Where a site lives, for display.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRef<'p> {
    /// Site index in the global enumeration.
    pub id: u32,
    /// Enclosing function name, or `None` for the script body.
    pub func: Option<&'p str>,
    /// The leaf instruction itself.
    pub instr: &'p Instr,
    /// Number of enclosing loops (`for`/`while`), a quick static hint
    /// that the site executes more than once.
    pub loop_depth: u32,
}

/// True for instructions that are enumerated as sites.
pub fn is_leaf(i: &Instr) -> bool {
    !matches!(
        i,
        Instr::If { .. }
            | Instr::While { .. }
            | Instr::For { .. }
            | Instr::Call { .. }
            | Instr::Break
            | Instr::Continue
    )
}

fn walk<'p, F: FnMut(&'p Instr, u32)>(body: &'p [Instr], depth: u32, f: &mut F) {
    for i in body {
        match i {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                walk(then_body, depth, f);
                walk(else_body, depth, f);
            }
            Instr::While { pre, body, .. } => {
                walk(pre, depth + 1, f);
                walk(body, depth + 1, f);
            }
            Instr::For { body, .. } => walk(body, depth + 1, f),
            Instr::Call { .. } | Instr::Break | Instr::Continue => {}
            leaf => f(leaf, depth),
        }
    }
}

/// Enumerate every leaf site of `prog` in the canonical order.
pub fn leaf_sites(prog: &IrProgram) -> Vec<SiteRef<'_>> {
    let mut out = Vec::new();
    let mut id = 0u32;
    walk(&prog.main, 0, &mut |instr, loop_depth| {
        out.push(SiteRef {
            id,
            func: None,
            instr,
            loop_depth,
        });
        id += 1;
    });
    for (name, f) in &prog.functions {
        walk(&f.body, 0, &mut |instr, loop_depth| {
            out.push(SiteRef {
                id,
                func: Some(name.as_str()),
                instr,
                loop_depth,
            });
            id += 1;
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::*;

    fn assign(dst: &str) -> Instr {
        Instr::AssignScalar {
            dst: dst.into(),
            src: SExpr::c(0.0),
        }
    }

    #[test]
    fn preorder_descends_control_flow_and_skips_non_leaves() {
        let prog = IrProgram {
            main: vec![
                assign("a"),
                Instr::For {
                    var: "i".into(),
                    start: SExpr::c(1.0),
                    step: SExpr::c(1.0),
                    stop: SExpr::c(4.0),
                    body: vec![
                        assign("b"),
                        Instr::If {
                            cond: SExpr::var("a"),
                            then_body: vec![assign("c")],
                            else_body: vec![Instr::Break],
                        },
                    ],
                },
                Instr::While {
                    pre: vec![assign("w")],
                    cond: SExpr::var("w"),
                    body: vec![assign("d")],
                },
            ],
            ..Default::default()
        };
        let sites = leaf_sites(&prog);
        let names: Vec<_> = sites
            .iter()
            .map(|s| match s.instr {
                Instr::AssignScalar { dst, .. } => dst.as_str(),
                _ => "?",
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "w", "d"]);
        assert_eq!(
            sites.iter().map(|s| s.loop_depth).collect::<Vec<_>>(),
            vec![0, 1, 1, 1, 1]
        );
        assert_eq!(
            sites.iter().map(|s| s.id).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn function_bodies_follow_main_in_name_order() {
        let mut prog = IrProgram {
            main: vec![assign("m")],
            ..Default::default()
        };
        for name in ["zeta", "alpha"] {
            prog.functions.insert(
                name.into(),
                IrFunction {
                    name: name.into(),
                    body: vec![assign(name)],
                    ..Default::default()
                },
            );
        }
        let sites = leaf_sites(&prog);
        let where_: Vec<_> = sites.iter().map(|s| s.func).collect();
        assert_eq!(where_, vec![None, Some("alpha"), Some("zeta")]);
    }
}
