//! Distribution-state inference and the lints built on it.
//!
//! Forward abstract interpretation with the lattice
//! `⊥ < {Replicated, RowDist, BlockVec} < ⊤` per SSA value:
//! replicated scalars, row-block-distributed matrices, and
//! block-distributed vectors — the three storage classes the run-time
//! library actually implements. Seeds come from constructors
//! (`zeros`, `rand`, `linspace`, `load`) and states transfer through
//! every `ML_*` op.
//!
//! Three lints ride on the walk:
//!
//! 1. **Redundant broadcast** — an owner-broadcast element fetch
//!    (`ML_broadcast(m, i, j)`) whose value is already replicated:
//!    the same element was fetched earlier and neither the matrix nor
//!    the index inputs changed since. A must-analysis (join =
//!    "available on *all* paths") keyed by the canonical `m[i,j]`
//!    text.
//! 2. **Redistribution churn** — a redistribution op (`transpose`,
//!    `circshift`, range/strided extraction) inside a loop whose
//!    inputs are all loop-invariant: the same redistribution runs
//!    every iteration and could be hoisted.
//! 3. **Dead distributed value** — a distributed (matrix-rank) value
//!    that is never consumed: a compiler temporary nobody reads, or a
//!    superseded SSA web (`x` overwritten by the `x__1` web without a
//!    single read in between).

use crate::dataflow::{run_block, Analysis, Env, FlowCtx, Lattice};
use crate::Finding;
use otter_ir::display::sexpr_to_string;
use otter_ir::*;
use std::collections::{BTreeMap, BTreeSet};

/// The per-value distribution-state lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistState {
    /// No information yet.
    Bot,
    /// Identical on every rank (scalars; paper §3 assumption 1).
    Replicated,
    /// Matrix distributed by contiguous row blocks.
    RowDist,
    /// Vector distributed by contiguous element blocks.
    BlockVec,
    /// Conflicting states on different paths.
    Top,
}

impl DistState {
    pub fn name(self) -> &'static str {
        match self {
            DistState::Bot => "⊥",
            DistState::Replicated => "replicated",
            DistState::RowDist => "row-dist",
            DistState::BlockVec => "block-vec",
            DistState::Top => "⊤",
        }
    }
}

impl Lattice for DistState {
    fn bottom() -> Self {
        DistState::Bot
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (DistState::Bot, x) | (x, DistState::Bot) => *x,
            (a, b) if a == b => *a,
            _ => DistState::Top,
        }
    }
}

/// Is a constructor shape a vector (one row or one column)?
fn vector_init(init: &MatInit) -> bool {
    let is_one = |e: &SExpr| matches!(e, SExpr::Const(v) if *v == 1.0);
    match init {
        MatInit::Range { .. } | MatInit::Linspace { .. } => true,
        MatInit::Zeros { rows, cols }
        | MatInit::Ones { rows, cols }
        | MatInit::Rand { rows, cols } => is_one(rows) || is_one(cols),
        MatInit::Eye { .. } => false,
        MatInit::Literal { rows } => rows.len() == 1 || rows.iter().all(|r| r.len() == 1),
    }
}

/// The distribution-state abstract interpreter, carrying the
/// redistribution-churn lint.
pub struct DistAnalysis<'a> {
    /// Matrix/scalar rank of every scope variable.
    ranks: &'a BTreeMap<String, VarRank>,
    pub findings: Vec<Finding>,
}

impl<'a> DistAnalysis<'a> {
    pub fn new(ranks: &'a BTreeMap<String, VarRank>) -> Self {
        DistAnalysis {
            ranks,
            findings: Vec::new(),
        }
    }

    fn is_matrix(&self, name: &str) -> bool {
        matches!(self.ranks.get(name), Some(VarRank::Matrix))
    }

    /// Lint 2: a redistribution executing inside a loop with all of
    /// its inputs defined outside every enclosing loop.
    fn check_churn(&mut self, instr: &Instr, env: &Env<DistState>, ctx: &FlowCtx) {
        if !ctx.in_loop() || !instr.comm_profile().point_to_point {
            return;
        }
        let redistribution = matches!(
            instr,
            Instr::Transpose { .. }
                | Instr::Shift { .. }
                | Instr::ExtractRange { .. }
                | Instr::ExtractStrided { .. }
        );
        if !redistribution {
            return;
        }
        let mut reads = Vec::new();
        instr.reads(&mut reads);
        if reads.iter().any(|r| ctx.defined_in_enclosing_loop(r)) {
            return; // inputs vary across iterations — a real recompute
        }
        let (Some(dst), Some(src)) = (instr.dst(), reads.first()) else {
            return;
        };
        let state = env.get(src);
        self.findings.push(Finding {
            anchor: dst.to_string(),
            message: format!(
                "redistribution churn: `{}` repeats the same `{}` of loop-invariant \
                 `{}` ({}) on every iteration; hoist it out of the loop",
                dst,
                instr.opcode(),
                src,
                state.name(),
            ),
        });
    }
}

impl Analysis for DistAnalysis<'_> {
    type Fact = DistState;

    fn transfer(&mut self, instr: &Instr, env: &mut Env<DistState>, ctx: &FlowCtx) {
        self.check_churn(instr, env, ctx);
        let state = match instr {
            Instr::AssignScalar { .. }
            | Instr::BroadcastElem { .. }
            | Instr::Reduce { .. }
            | Instr::ReduceEw { .. }
            | Instr::Dot { .. }
            | Instr::TrapzXY { .. } => Some(DistState::Replicated),
            Instr::InitMatrix { init, .. } => Some(if vector_init(init) {
                DistState::BlockVec
            } else {
                DistState::RowDist
            }),
            Instr::LoadFile { .. }
            | Instr::MatMul { .. }
            | Instr::MatMulEw { .. }
            | Instr::Outer { .. } => Some(DistState::RowDist),
            Instr::MatVec { .. } | Instr::MatVecEw { .. } | Instr::ColReduce { .. } => {
                Some(DistState::BlockVec)
            }
            Instr::ExtractRow { .. }
            | Instr::ExtractCol { .. }
            | Instr::ExtractRange { .. }
            | Instr::ExtractStrided { .. } => Some(DistState::BlockVec),
            Instr::CopyMatrix { src, .. } => Some(env.get(src)),
            Instr::Transpose { a, .. } => Some(match env.get(a) {
                // Transposing a vector keeps it a vector (row↔column);
                // transposing a matrix keeps it row-distributed (the
                // op redistributes *data*, not the storage class).
                DistState::BlockVec => DistState::BlockVec,
                DistState::Bot => DistState::Top,
                s => s,
            }),
            Instr::Shift { v, .. } => Some(env.get(v)),
            Instr::ElemWise { expr, .. } => {
                let mut mats = Vec::new();
                expr.mat_operands(&mut mats);
                let joined = mats
                    .iter()
                    .fold(DistState::Bot, |acc, m| acc.join(&env.get(m)));
                Some(if joined == DistState::Bot {
                    DistState::Top
                } else {
                    joined
                })
            }
            Instr::For { var, .. } => {
                env.set(var.clone(), DistState::Replicated);
                None
            }
            Instr::Call { outs, .. } => {
                for o in outs {
                    let s = if self.is_matrix(o) {
                        DistState::Top // callee-determined; unknown here
                    } else {
                        DistState::Replicated
                    };
                    env.set(o.clone(), s);
                }
                None
            }
            _ => None,
        };
        if let (Some(s), Some(dst)) = (state, instr.dst()) {
            env.set(dst.to_string(), s);
        }
    }
}

/// Must-availability of a broadcast element: `Yes` only when every
/// path since the last kill re-established it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Avail {
    /// Path never saw this broadcast (vacuously available — join
    /// identity).
    Unknown,
    Yes,
    No,
}

impl Lattice for Avail {
    fn bottom() -> Self {
        Avail::Unknown
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (Avail::Unknown, x) | (x, Avail::Unknown) => *x,
            (Avail::Yes, Avail::Yes) => Avail::Yes,
            _ => Avail::No,
        }
    }
}

/// Lint 1: available-broadcast analysis.
pub struct AvailBcast {
    /// Which variables each availability key depends on (the matrix
    /// and every index-expression input); a def of any dependency
    /// kills the key.
    deps: BTreeMap<String, BTreeSet<String>>,
    pub findings: Vec<Finding>,
}

impl AvailBcast {
    pub fn new() -> Self {
        AvailBcast {
            deps: BTreeMap::new(),
            findings: Vec::new(),
        }
    }

    fn key(m: &str, i: &SExpr, j: &Option<SExpr>) -> String {
        match j {
            Some(j) => format!("{m}[{}, {}]", sexpr_to_string(i), sexpr_to_string(j)),
            None => format!("{m}[{}]", sexpr_to_string(i)),
        }
    }
}

impl Default for AvailBcast {
    fn default() -> Self {
        AvailBcast::new()
    }
}

impl Analysis for AvailBcast {
    type Fact = Avail;

    fn transfer(&mut self, instr: &Instr, env: &mut Env<Avail>, _ctx: &FlowCtx) {
        // Kills first: a def of the matrix or of any index input
        // invalidates the fetched value.
        let mut defs = Vec::new();
        instr.defs(&mut defs);
        if !defs.is_empty() {
            let killed: Vec<String> = self
                .deps
                .iter()
                .filter(|(_, d)| defs.iter().any(|v| d.contains(v)))
                .map(|(k, _)| k.clone())
                .collect();
            for k in killed {
                env.set(k, Avail::No);
            }
        }
        if let Instr::BroadcastElem { dst, m, i, j } = instr {
            let key = AvailBcast::key(m, i, j);
            if env.get(&key) == Avail::Yes {
                self.findings.push(Finding {
                    anchor: dst.clone(),
                    message: format!(
                        "redundant broadcast: element `{key}` is already replicated by an \
                         earlier `ML_broadcast` and none of its inputs changed; reuse that value"
                    ),
                });
            }
            let mut d = BTreeSet::from([m.clone()]);
            let mut vars = Vec::new();
            sexpr_reads(i, &mut vars);
            if let Some(j) = j {
                sexpr_reads(j, &mut vars);
            }
            d.extend(vars);
            self.deps.insert(key.clone(), d);
            env.set(key, Avail::Yes);
        }
    }
}

/// Lint 3: distributed values never consumed. `live_out` names
/// (function outputs) and final SSA webs of user variables are
/// workspace-visible and never flagged.
pub fn dead_distributed(
    body: &[Instr],
    ranks: &BTreeMap<String, VarRank>,
    live_out: &[String],
    findings: &mut Vec<Finding>,
) {
    // Every name read anywhere in the scope.
    let mut reads = Vec::new();
    for i in body {
        i.reads(&mut reads);
    }
    let read_set: BTreeSet<&String> = reads.iter().collect();

    // Final web per base name: `x` is web 0, `x__N` is web N; only
    // the highest web of a base is workspace-live at end of scope.
    let mut final_web: BTreeMap<String, usize> = BTreeMap::new();
    for name in ranks.keys() {
        let (base, web) = split_web(name);
        let e = final_web.entry(base.to_string()).or_insert(web);
        *e = (*e).max(web);
    }

    // First definition of each candidate, in program order.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    visit_defs(body, &mut |instr: &Instr| {
        let Some(dst) = instr.dst() else { return };
        if !seen.insert(dst.to_string()) {
            return;
        }
        if !matches!(ranks.get(dst), Some(VarRank::Matrix)) {
            return; // only *distributed* values
        }
        if read_set.contains(&dst.to_string()) || live_out.iter().any(|o| o == dst) {
            return;
        }
        let (base, web) = split_web(dst);
        let flagged = if dst.starts_with("ML_tmp") {
            true // compiler temp nobody consumes
        } else {
            // A superseded SSA web: a later web of the same base
            // exists, so this def was overwritten without a read.
            final_web.get(base).is_some_and(|f| *f > web)
        };
        if flagged {
            let superseded = if dst.starts_with("ML_tmp") {
                String::new()
            } else {
                format!(
                    " before `{}` overwrites it",
                    rejoin_web(base, final_web[base])
                )
            };
            findings.push(Finding {
                anchor: dst.to_string(),
                message: format!(
                    "dead distributed value: `{dst}` is allocated and computed on every \
                     rank but never read{superseded}"
                ),
            });
        }
    });
}

/// Split `x__3` into (`x`, 3); plain names are web 0.
fn split_web(name: &str) -> (&str, usize) {
    if let Some(pos) = name.rfind("__") {
        if let Ok(web) = name[pos + 2..].parse::<usize>() {
            return (&name[..pos], web);
        }
    }
    (name, 0)
}

fn rejoin_web(base: &str, web: usize) -> String {
    if web == 0 {
        base.to_string()
    } else {
        format!("{base}__{web}")
    }
}

fn visit_defs(body: &[Instr], f: &mut impl FnMut(&Instr)) {
    for instr in body {
        f(instr);
        match instr {
            Instr::If {
                then_body,
                else_body,
                ..
            } => {
                visit_defs(then_body, f);
                visit_defs(else_body, f);
            }
            Instr::While { pre, body, .. } => {
                visit_defs(pre, f);
                visit_defs(body, f);
            }
            Instr::For { body, .. } => visit_defs(body, f),
            _ => {}
        }
    }
}

/// Run the distribution-state walk plus its dependent lints over one
/// scope and return the findings.
pub fn lint_scope(
    body: &[Instr],
    ranks: &BTreeMap<String, VarRank>,
    live_out: &[String],
) -> Vec<Finding> {
    let mut dist = DistAnalysis::new(ranks);
    run_block(
        &mut dist,
        body,
        &mut Env::default(),
        &mut FlowCtx::default(),
    );
    let mut avail = AvailBcast::new();
    run_block(
        &mut avail,
        body,
        &mut Env::default(),
        &mut FlowCtx::default(),
    );
    let mut findings = dist.findings;
    findings.extend(avail.findings);
    dead_distributed(body, ranks, live_out, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranks(pairs: &[(&str, VarRank)]) -> BTreeMap<String, VarRank> {
        pairs.iter().map(|(n, r)| (n.to_string(), *r)).collect()
    }

    #[test]
    fn lattice_joins() {
        assert_eq!(DistState::Bot.join(&DistState::RowDist), DistState::RowDist);
        assert_eq!(
            DistState::RowDist.join(&DistState::BlockVec),
            DistState::Top
        );
        assert_eq!(
            DistState::Replicated.join(&DistState::Replicated),
            DistState::Replicated
        );
    }

    #[test]
    fn states_seed_and_flow() {
        let body = vec![
            Instr::InitMatrix {
                dst: "a".into(),
                init: MatInit::Rand {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
            Instr::InitMatrix {
                dst: "v".into(),
                init: MatInit::Linspace {
                    a: SExpr::c(0.0),
                    b: SExpr::c(1.0),
                    n: SExpr::c(8.0),
                },
            },
            Instr::CopyMatrix {
                dst: "b".into(),
                src: "a".into(),
            },
            Instr::Reduce {
                dst: "s".into(),
                op: RedOp::SumAll,
                m: "v".into(),
            },
        ];
        let r = ranks(&[
            ("a", VarRank::Matrix),
            ("v", VarRank::Matrix),
            ("b", VarRank::Matrix),
            ("s", VarRank::Scalar),
        ]);
        let mut a = DistAnalysis::new(&r);
        let mut env = Env::default();
        run_block(&mut a, &body, &mut env, &mut FlowCtx::default());
        assert_eq!(env.get("a"), DistState::RowDist);
        assert_eq!(env.get("v"), DistState::BlockVec);
        assert_eq!(env.get("b"), DistState::RowDist);
        assert_eq!(env.get("s"), DistState::Replicated);
    }

    #[test]
    fn redundant_broadcast_flagged_only_when_inputs_unchanged() {
        let bcast = |dst: &str| Instr::BroadcastElem {
            dst: dst.into(),
            m: "a".into(),
            i: SExpr::c(1.0),
            j: Some(SExpr::c(2.0)),
        };
        // Back-to-back identical fetches: second is redundant.
        let mut avail = AvailBcast::new();
        run_block(
            &mut avail,
            &[bcast("x"), bcast("y")],
            &mut Env::default(),
            &mut FlowCtx::default(),
        );
        assert_eq!(avail.findings.len(), 1, "{:?}", avail.findings);
        assert!(avail.findings[0].message.contains("redundant broadcast"));

        // An intervening store into `a` kills availability.
        let mut avail = AvailBcast::new();
        run_block(
            &mut avail,
            &[
                bcast("x"),
                Instr::StoreElem {
                    m: "a".into(),
                    i: SExpr::c(1.0),
                    j: Some(SExpr::c(2.0)),
                    val: SExpr::c(9.0),
                },
                bcast("y"),
            ],
            &mut Env::default(),
            &mut FlowCtx::default(),
        );
        assert!(avail.findings.is_empty(), "{:?}", avail.findings);
    }

    #[test]
    fn loop_varying_broadcast_not_flagged() {
        // a(i, 1) inside `for i`: the index is killed every trip.
        let body = vec![Instr::For {
            var: "i".into(),
            start: SExpr::c(1.0),
            step: SExpr::c(1.0),
            stop: SExpr::c(4.0),
            body: vec![Instr::BroadcastElem {
                dst: "x".into(),
                m: "a".into(),
                i: SExpr::var("i"),
                j: Some(SExpr::c(1.0)),
            }],
        }];
        let mut avail = AvailBcast::new();
        run_block(
            &mut avail,
            &body,
            &mut Env::default(),
            &mut FlowCtx::default(),
        );
        assert!(avail.findings.is_empty(), "{:?}", avail.findings);
    }

    #[test]
    fn churn_flags_loop_invariant_redistribution() {
        let body = vec![Instr::For {
            var: "k".into(),
            start: SExpr::c(1.0),
            step: SExpr::c(1.0),
            stop: SExpr::c(10.0),
            body: vec![Instr::ExtractRange {
                dst: "t".into(),
                v: "v".into(),
                lo: SExpr::c(1.0),
                hi: SExpr::c(4.0),
            }],
        }];
        let r = ranks(&[("v", VarRank::Matrix), ("t", VarRank::Matrix)]);
        let findings = lint_scope(&body, &r, &[]);
        assert!(
            findings.iter().any(|f| f.message.contains("churn")),
            "{findings:?}"
        );

        // Same loop but the source varies per iteration: clean.
        let body = vec![Instr::For {
            var: "k".into(),
            start: SExpr::c(1.0),
            step: SExpr::c(1.0),
            stop: SExpr::c(10.0),
            body: vec![Instr::Shift {
                dst: "v".into(),
                v: "v".into(),
                k: SExpr::c(1.0),
            }],
        }];
        let findings = lint_scope(&body, &r, &[]);
        assert!(
            !findings.iter().any(|f| f.message.contains("churn")),
            "{findings:?}"
        );
    }

    #[test]
    fn dead_superseded_web_flagged_but_final_web_kept() {
        let body = vec![
            Instr::InitMatrix {
                dst: "a".into(),
                init: MatInit::Rand {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
            Instr::InitMatrix {
                dst: "a__1".into(),
                init: MatInit::Ones {
                    rows: SExpr::c(4.0),
                    cols: SExpr::c(4.0),
                },
            },
            Instr::Reduce {
                dst: "s".into(),
                op: RedOp::SumAll,
                m: "a__1".into(),
            },
        ];
        let r = ranks(&[
            ("a", VarRank::Matrix),
            ("a__1", VarRank::Matrix),
            ("s", VarRank::Scalar),
        ]);
        let mut findings = Vec::new();
        dead_distributed(&body, &r, &[], &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`a`"));
        assert!(findings[0].message.contains("a__1"));
    }

    #[test]
    fn function_outputs_never_dead() {
        let body = vec![Instr::InitMatrix {
            dst: "y".into(),
            init: MatInit::Zeros {
                rows: SExpr::c(4.0),
                cols: SExpr::c(4.0),
            },
        }];
        let r = ranks(&[("y", VarRank::Matrix)]);
        let mut findings = Vec::new();
        dead_distributed(&body, &r, &["y".to_string()], &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
