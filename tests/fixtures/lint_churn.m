% Lint fixture: loop-invariant redistribution churn.
v = linspace(0, 1, 8);
z = 0;
for k = 1:10
  t = v(1:4);
  z = z + sum(t);
end
