//! The three execution engines the paper's evaluation compares,
//! unified behind the [`Engine`] trait: prepare a MATLAB script, run
//! it on a modeled machine, and get back an [`EngineReport`] — the
//! one schema every figure, ablation, and future backend reports
//! through.
//!
//! * [`InterpreterEngine`] — the MathWorks-interpreter stand-in (the
//!   baseline of every figure).
//! * [`MatcomEngine`] — MATCOM-style sequential compiled code: same
//!   evaluator, compiled-code cost coefficients.
//! * [`OtterEngine`] — the real pipeline: compile to SPMD IR, execute
//!   on `p` ranks over the machine model; modeled time = slowest
//!   rank's virtual clock.

use crate::compile::{CompileOptions, Compiled};
use crate::error::{OtterError, Result};
use crate::exec::{ExecError, ExecOptions, Executor, XVal};
use otter_interp::{assemble_program, Interp, Value};
use otter_machine::{ExecutionStyle, Machine};
use otter_metrics::{MetricsRegistry, MetricsSnapshot};
use otter_mpi::{run_spmd_with, CollectiveAlgo, FailureReport, FaultPlan, SpmdOptions};
use otter_rt::Dense;
use otter_trace::{CriticalPath, TraceSink};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Uniform per-rank communication counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankCounters {
    pub rank: usize,
    /// Messages this rank sent.
    pub messages: u64,
    /// Bytes this rank sent.
    pub bytes: u64,
    /// The rank's final virtual clock (seconds).
    pub clock: f64,
    /// High-water mark of the rank's live matrix bytes (allocator
    /// view, temporaries included).
    pub peak_bytes: usize,
    /// Seconds of the clock spent in modeled computation.
    pub compute_seconds: f64,
    /// Seconds spent driving sends (sender-side transfer charges).
    pub comm_seconds: f64,
    /// Seconds spent blocked in `recv` waiting on a message.
    pub idle_seconds: f64,
}

/// What every engine reports: results plus uniform counters, so
/// Figure 2–6 comparisons and future backends share one schema.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Which engine produced this (`interpreter`, `matcom`, `otter`).
    pub engine: &'static str,
    /// Final workspace (fully gathered — machine-independent).
    pub workspace: HashMap<String, Value>,
    /// Captured display output.
    pub output: String,
    /// Modeled execution time in seconds.
    pub modeled_seconds: f64,
    /// Executed-operation counts. The Otter engine counts per IR
    /// opcode; the sequential engines count per scalar op class plus
    /// `statement`/`matmul`/`matvec`. Keys are stable lowercase names.
    pub op_counts: BTreeMap<String, u64>,
    /// Total messages sent across ranks (0 for sequential engines).
    pub messages: u64,
    /// Total bytes sent across ranks (0 for sequential engines).
    pub bytes: u64,
    /// Largest per-rank high-water mark of live *named* matrix memory
    /// (the paper's §7 claim: distributed blocks shrink per-CPU
    /// memory, so bigger problems fit).
    pub peak_rank_bytes: usize,
    /// Largest per-rank high-water mark counting *all* matrix
    /// allocations, compiler temporaries included (run-time allocator
    /// view; equals the workspace peak for sequential engines).
    pub peak_temp_bytes: usize,
    /// Per-rank breakdown (one entry, rank 0, for sequential engines).
    pub per_rank: Vec<RankCounters>,
    /// Longest send/recv dependency chain through the traced run.
    /// `Some` only when the engine ran with a retaining trace sink
    /// (see [`EngineOptions::builder`]).
    pub critical_path: Option<CriticalPath>,
    /// Job-level metric snapshot: every rank's registry merged
    /// (counters added, gauges maxed, histograms merged bucket-wise)
    /// plus job-wide series like `rank_clock_seconds`. `Some` only
    /// when the engine ran with [`EngineOptions::metrics`] on.
    pub metrics: Option<MetricsSnapshot>,
}

impl EngineReport {
    /// The report shape shared by single-CPU engines: one rank, no
    /// traffic, every second of the clock is compute, and the
    /// workspace peak doubles as the allocator peak.
    pub fn sequential(
        engine: &'static str,
        workspace: HashMap<String, Value>,
        output: String,
        modeled_seconds: f64,
        op_counts: BTreeMap<String, u64>,
        peak_bytes: usize,
    ) -> EngineReport {
        EngineReport {
            engine,
            workspace,
            output,
            modeled_seconds,
            op_counts,
            messages: 0,
            bytes: 0,
            peak_rank_bytes: peak_bytes,
            peak_temp_bytes: peak_bytes,
            per_rank: vec![RankCounters {
                rank: 0,
                messages: 0,
                bytes: 0,
                clock: modeled_seconds,
                peak_bytes,
                compute_seconds: modeled_seconds,
                comm_seconds: 0.0,
                idle_seconds: 0.0,
            }],
            critical_path: None,
            metrics: None,
        }
    }

    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.workspace.get(name).and_then(|v| v.as_scalar())
    }

    pub fn matrix(&self, name: &str) -> Option<Dense> {
        self.workspace.get(name).and_then(|v| v.to_matrix())
    }

    /// Total executed operations over all opcodes.
    pub fn total_ops(&self) -> u64 {
        self.op_counts.values().sum()
    }
}

/// Common engine configuration.
///
/// Construct with [`EngineOptions::builder`] (or `Default`): the
/// struct is `#[non_exhaustive]` so future knobs — like the trace sink
/// added in this revision — stop being breaking struct-literal
/// changes.
#[derive(Clone, Default)]
#[non_exhaustive]
pub struct EngineOptions {
    /// Directory `load` resolves data files against.
    pub data_dir: Option<PathBuf>,
    /// M-file provider for user function files.
    pub m_files: Option<otter_frontend::MapProvider>,
    /// Optional passes the Otter engine skips (ablations).
    pub disabled_passes: Vec<String>,
    /// Schedule the SPMD collectives use (tree by default).
    pub collective_algo: CollectiveAlgo,
    /// Event sink every engine layer records into; `None` disables
    /// tracing (the zero-cost default).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Collect per-rank metric registries and merge them into
    /// [`EngineReport::metrics`]. Off by default: disabled runs never
    /// construct a registry, a key, or an observation.
    pub metrics: bool,
    /// Deterministic fault-injection schedule for the SPMD run; `None`
    /// (the default) perturbs nothing and the virtual-time results are
    /// byte-identical to a build without the fault subsystem.
    pub faults: Option<FaultPlan>,
    /// Worker-pool size for the SPMD scheduler: how many logical
    /// ranks may execute at once. `None` (the default) uses the host's
    /// parallelism; deterministic outputs are identical for any value.
    pub workers: Option<usize>,
}

impl fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineOptions")
            .field("data_dir", &self.data_dir)
            .field("m_files", &self.m_files)
            .field("disabled_passes", &self.disabled_passes)
            .field("collective_algo", &self.collective_algo)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .field("metrics", &self.metrics)
            .field("faults", &self.faults)
            .field("workers", &self.workers)
            .finish()
    }
}

impl EngineOptions {
    pub fn builder() -> EngineOptionsBuilder {
        EngineOptionsBuilder::default()
    }

    /// The SPMD launch options these engine options imply.
    fn spmd_options(&self) -> SpmdOptions {
        SpmdOptions {
            algo: self.collective_algo,
            trace: self.trace.clone(),
            metrics: self.metrics,
            faults: self.faults.clone(),
            workers: self.workers,
            ..SpmdOptions::default()
        }
    }
}

/// Builder for [`EngineOptions`].
///
/// ```
/// use otter_core::engines::EngineOptions;
/// use otter_trace::MemorySink;
/// use std::sync::Arc;
///
/// let sink = Arc::new(MemorySink::new());
/// let opts = EngineOptions::builder()
///     .data_dir("data")
///     .trace(sink)
///     .build();
/// assert!(opts.trace.is_some());
/// ```
#[derive(Debug, Default)]
pub struct EngineOptionsBuilder {
    opts: EngineOptions,
}

impl EngineOptionsBuilder {
    /// Directory `load` resolves data files against.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.opts.data_dir = Some(dir.into());
        self
    }

    /// M-file provider for user function files.
    pub fn m_files(mut self, provider: otter_frontend::MapProvider) -> Self {
        self.opts.m_files = Some(provider);
        self
    }

    /// Skip an optional compiler pass (may be called repeatedly).
    pub fn disable_pass(mut self, name: impl Into<String>) -> Self {
        self.opts.disabled_passes.push(name.into());
        self
    }

    /// Collective schedule for the SPMD engine.
    pub fn collective_algo(mut self, algo: CollectiveAlgo) -> Self {
        self.opts.collective_algo = algo;
        self
    }

    /// Record trace events into `sink`. Pass an
    /// `Arc<otter_trace::MemorySink>` to retain events for analysis.
    pub fn trace(mut self, sink: Arc<impl TraceSink + 'static>) -> Self {
        self.opts.trace = Some(sink);
        self
    }

    /// Collect and merge per-rank metrics into the report.
    pub fn metrics(mut self, on: bool) -> Self {
        self.opts.metrics = on;
        self
    }

    /// Inject a deterministic fault schedule into the SPMD run (see
    /// [`otter_mpi::FaultPlan`]). Use [`OtterEngine::try_run`] to get
    /// the resulting failure report as data.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.opts.faults = Some(plan);
        self
    }

    /// Fix the SPMD worker-pool size instead of using the host's
    /// parallelism. Any value yields identical deterministic outputs;
    /// small pools let many more ranks than cores run.
    pub fn workers(mut self, n: usize) -> Self {
        self.opts.workers = Some(n);
        self
    }

    pub fn build(self) -> EngineOptions {
        self.opts
    }
}

/// One execution backend. `prepare` does the engine's compile-time
/// work (parse/assemble or the full Otter pipeline); `run` executes
/// on a machine model and reports through the uniform schema.
pub trait Engine {
    /// Stable engine name used in report rows (`interpreter`,
    /// `matcom`, `otter`).
    fn name(&self) -> &'static str;

    /// Ingest and prepare a script. Must be called before `run`.
    fn prepare(&mut self, src: &str) -> Result<()>;

    /// Execute the prepared script on `p` CPUs of `machine`.
    /// Sequential engines model a single CPU and ignore `p`.
    fn run(&mut self, machine: &Machine, p: usize) -> Result<EngineReport>;
}

/// Prepare and run in one call.
pub fn run_engine(
    engine: &mut dyn Engine,
    src: &str,
    machine: &Machine,
    p: usize,
) -> Result<EngineReport> {
    engine.prepare(src)?;
    engine.run(machine, p)
}

/// All three paper engines, ready to prepare.
pub fn standard_engines(opts: &EngineOptions) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(InterpreterEngine::new(opts.clone())),
        Box::new(MatcomEngine::new(opts.clone())),
        Box::new(OtterEngine::new(opts.clone())),
    ]
}

// ---- sequential engines ---------------------------------------------------

fn run_sequential(
    name: &'static str,
    style: ExecutionStyle,
    program: Option<&otter_frontend::Program>,
    machine: &Machine,
    opts: &EngineOptions,
) -> Result<EngineReport> {
    let program =
        program.ok_or_else(|| OtterError::execution(format!("{name}: prepare() not called")))?;
    let mut interp = Interp::with_style(program.clone(), style);
    interp.data_dir = opts.data_dir.clone();
    if let Some(sink) = &opts.trace {
        // Sequential engines emit per-statement spans (rank 0), scaled
        // from meter units to the machine's modeled seconds.
        interp.set_trace(Arc::clone(sink), machine.cpu.flop_time());
    }
    interp.run()?;
    let modeled = interp.meter.seconds_on(&machine.cpu);
    // The sequential peak: high-water mark of the named workspace on
    // one CPU (expression temporaries excluded on both sides' "named
    // values" views; the SPMD executor's compiler temporaries ARE
    // named, so its figure is the more conservative one).
    let peak: usize = interp.peak_workspace_bytes;
    let op_counts: BTreeMap<String, u64> = interp
        .meter
        .op_counts()
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    let mut report = EngineReport::sequential(
        name,
        interp.workspace(),
        interp.output.clone(),
        modeled,
        op_counts,
        peak,
    );
    if opts.metrics {
        let mut reg = MetricsRegistry::new();
        for (op, n) in &report.op_counts {
            reg.inc("ops_total", &[("op", op)], *n);
        }
        reg.gauge_max("workspace_peak_bytes", &[], peak as f64);
        reg.observe("rank_clock_seconds", &[], modeled);
        report.metrics = Some(reg.snapshot());
    }
    Ok(report)
}

fn assemble(src: &str, opts: &EngineOptions) -> Result<otter_frontend::Program> {
    let empty = otter_frontend::MapProvider::new();
    let provider = opts.m_files.as_ref().unwrap_or(&empty);
    Ok(assemble_program(src, provider)?)
}

/// The MathWorks-interpreter baseline (one CPU).
pub struct InterpreterEngine {
    opts: EngineOptions,
    program: Option<otter_frontend::Program>,
}

impl InterpreterEngine {
    pub fn new(opts: EngineOptions) -> Self {
        InterpreterEngine {
            opts,
            program: None,
        }
    }
}

impl Engine for InterpreterEngine {
    fn name(&self) -> &'static str {
        "interpreter"
    }

    fn prepare(&mut self, src: &str) -> Result<()> {
        self.program = Some(assemble(src, &self.opts)?);
        Ok(())
    }

    fn run(&mut self, machine: &Machine, _p: usize) -> Result<EngineReport> {
        run_sequential(
            self.name(),
            ExecutionStyle::Interpreter,
            self.program.as_ref(),
            machine,
            &self.opts,
        )
    }
}

/// The MATCOM sequential-compiler baseline (one CPU).
pub struct MatcomEngine {
    opts: EngineOptions,
    program: Option<otter_frontend::Program>,
}

impl MatcomEngine {
    pub fn new(opts: EngineOptions) -> Self {
        MatcomEngine {
            opts,
            program: None,
        }
    }
}

impl Engine for MatcomEngine {
    fn name(&self) -> &'static str {
        "matcom"
    }

    fn prepare(&mut self, src: &str) -> Result<()> {
        self.program = Some(assemble(src, &self.opts)?);
        Ok(())
    }

    fn run(&mut self, machine: &Machine, _p: usize) -> Result<EngineReport> {
        run_sequential(
            self.name(),
            ExecutionStyle::Matcom,
            self.program.as_ref(),
            machine,
            &self.opts,
        )
    }
}

// ---- the Otter SPMD engine ------------------------------------------------

/// The real pipeline: compile to SPMD IR, execute on `p` modeled
/// ranks.
pub struct OtterEngine {
    opts: EngineOptions,
    compiled: Option<Compiled>,
    /// Per-pass compile timings as metrics, captured by `prepare` when
    /// metrics are on and merged into the run's job snapshot.
    compile_metrics: Option<MetricsSnapshot>,
}

impl OtterEngine {
    pub fn new(opts: EngineOptions) -> Self {
        OtterEngine {
            opts,
            compiled: None,
            compile_metrics: None,
        }
    }

    /// Wrap an already-compiled program (skips `prepare`).
    pub fn from_compiled(compiled: Compiled) -> Self {
        let opts = match &compiled.data_dir {
            Some(d) => EngineOptions::builder().data_dir(d).build(),
            None => EngineOptions::default(),
        };
        Self::from_compiled_with(compiled, opts)
    }

    /// Wrap an already-compiled program with explicit run options
    /// (trace sink, collective schedule). The compiled artifact's data
    /// directory wins over `opts.data_dir` when set.
    pub fn from_compiled_with(compiled: Compiled, mut opts: EngineOptions) -> Self {
        if let Some(d) = &compiled.data_dir {
            opts.data_dir = Some(d.clone());
        }
        OtterEngine {
            opts,
            compiled: Some(compiled),
            compile_metrics: None,
        }
    }

    /// The compiled artifact, if `prepare` ran.
    pub fn compiled(&self) -> Option<&Compiled> {
        self.compiled.as_ref()
    }

    /// Like [`Engine::run`], but a communication failure (deadlock,
    /// dead rank, injected fault) comes back as structured data — the
    /// typed [`FailureReport`] plus the surviving ranks' counters —
    /// instead of a formatted [`OtterError`]. Compile-side and
    /// program-level errors still use the `Err` channel.
    pub fn try_run(
        &mut self,
        machine: &Machine,
        p: usize,
    ) -> Result<std::result::Result<EngineReport, SpmdJobFailure>> {
        let compiled = self
            .compiled
            .as_ref()
            .ok_or_else(|| OtterError::execution("otter: prepare() not called"))?;
        let ir = compiled.ir.clone();
        let exec_opts = ExecOptions {
            data_dir: compiled.data_dir.clone(),
            ..Default::default()
        };
        let job = run_spmd_with(machine, p, self.opts.spmd_options(), move |comm| {
            let opts = exec_opts.clone();
            let executor = Executor::new(&ir, comm, opts);
            let outcome = executor.run();
            match outcome {
                Ok(o) => {
                    // The program is done: snapshot the modeled time
                    // and traffic counters now, before the reporting
                    // gathers below (which are not part of the
                    // benchmarked computation). Tracing stops at the
                    // same point so event totals keep matching the
                    // stats snapshot.
                    let finished_at = comm.clock();
                    let finished_stats = comm.stats();
                    let finished_metrics = comm.take_metrics().map(|r| r.snapshot());
                    comm.suspend_tracing();
                    // Gather every matrix so rank 0 can report a
                    // machine-independent workspace. Iterate in sorted
                    // order: gathers are collectives, so every rank
                    // must visit variables in the same sequence.
                    let mut names: Vec<&String> = o.workspace.keys().collect();
                    names.sort();
                    let mut ws: HashMap<String, Value> = HashMap::new();
                    for name in names {
                        let val = &o.workspace[name];
                        match val {
                            XVal::S(v) => {
                                ws.insert(name.clone(), Value::Scalar(*v));
                            }
                            XVal::M(m) => {
                                let full = m.gather_all(comm)?;
                                ws.insert(name.clone(), Value::Matrix(full).normalized());
                            }
                        }
                    }
                    Ok(Ok((
                        ws,
                        o.output,
                        finished_at,
                        o.peak_local_bytes,
                        o.peak_temp_bytes,
                        o.op_counts,
                        finished_stats,
                        finished_metrics,
                    )))
                }
                // Application errors are SPMD-replicated: every rank
                // raises the identical one, so they travel inside the
                // rank's value and the job itself still succeeds.
                Err(ExecError::App(e)) => Ok(Err(e.to_string())),
                // Communication failures abort the job; the runner
                // assembles the failure report.
                Err(ExecError::Comm(e)) => Err(e),
            }
        });
        let results = match job {
            Ok(results) => results,
            Err(failure) => {
                let survivors = failure
                    .survivors
                    .iter()
                    .map(|r| RankCounters {
                        rank: r.rank,
                        messages: r.stats.messages_sent,
                        bytes: r.stats.bytes_sent,
                        clock: r.clock,
                        peak_bytes: match &r.value {
                            Ok(t) => t.4,
                            Err(_) => 0,
                        },
                        compute_seconds: r.stats.compute_time,
                        comm_seconds: r.stats.send_time,
                        idle_seconds: r.stats.wait_time,
                    })
                    .collect();
                return Ok(Err(SpmdJobFailure {
                    report: failure.report,
                    survivors,
                }));
            }
        };
        // All ranks computed the same workspace (and executed the same
        // instruction sequence — SPMD); use rank 0's.
        let mut iter = results.into_iter();
        let first = iter.next().expect("at least one rank");
        let rank0 = first.value.map_err(OtterError::execution)?;
        let (
            workspace,
            output,
            mut max_clock,
            mut peak_rank_bytes,
            mut peak_temp_bytes,
            ops,
            fstats,
            mut job_metrics,
        ) = rank0;
        let op_counts: BTreeMap<String, u64> =
            ops.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let mut messages = fstats.messages_sent;
        let mut bytes = fstats.bytes_sent;
        let mut per_rank = vec![RankCounters {
            rank: 0,
            messages: fstats.messages_sent,
            bytes: fstats.bytes_sent,
            clock: max_clock,
            peak_bytes: peak_temp_bytes,
            compute_seconds: fstats.compute_time,
            comm_seconds: fstats.send_time,
            idle_seconds: fstats.wait_time,
        }];
        for r in iter {
            let (_, _, clock, peak, peak_temp, _, stats, rank_metrics) =
                r.value.map_err(OtterError::execution)?;
            max_clock = max_clock.max(clock);
            peak_rank_bytes = peak_rank_bytes.max(peak);
            peak_temp_bytes = peak_temp_bytes.max(peak_temp);
            messages += stats.messages_sent;
            bytes += stats.bytes_sent;
            if let (Some(job), Some(m)) = (job_metrics.as_mut(), rank_metrics.as_ref()) {
                job.merge_from(m);
            }
            per_rank.push(RankCounters {
                rank: r.rank,
                messages: stats.messages_sent,
                bytes: stats.bytes_sent,
                clock,
                peak_bytes: peak_temp,
                compute_seconds: stats.compute_time,
                comm_seconds: stats.send_time,
                idle_seconds: stats.wait_time,
            });
        }
        // Job-wide series the per-rank registries cannot see, plus the
        // compile-side pass timings captured by `prepare`.
        if let Some(job) = job_metrics.as_mut() {
            let mut reg = MetricsRegistry::new();
            for rc in &per_rank {
                reg.observe("rank_clock_seconds", &[], rc.clock);
            }
            let min_clock = per_rank
                .iter()
                .map(|r| r.clock)
                .fold(f64::INFINITY, f64::min);
            if min_clock > 0.0 {
                reg.gauge_max("load_imbalance_ratio", &[], max_clock / min_clock);
            }
            job.merge_from(&reg.snapshot());
            if let Some(cm) = &self.compile_metrics {
                job.merge_from(cm);
            }
        }
        // With a retaining sink the critical path comes along for free.
        let critical_path = self
            .opts
            .trace
            .as_ref()
            .and_then(|sink| sink.snapshot())
            .map(|events| otter_trace::critical_path(&events));
        Ok(Ok(EngineReport {
            engine: "otter",
            workspace,
            output,
            modeled_seconds: max_clock,
            op_counts,
            messages,
            bytes,
            peak_rank_bytes,
            peak_temp_bytes,
            per_rank,
            critical_path,
            metrics: job_metrics,
        }))
    }
}

/// A failed SPMD run as data: which ranks failed and why (with the
/// wait-for information behind each), plus the counters of the ranks
/// that completed the program.
#[derive(Debug, Clone)]
pub struct SpmdJobFailure {
    /// The typed per-rank failure report.
    pub report: FailureReport,
    /// Counters of the surviving ranks, ordered by rank id.
    pub survivors: Vec<RankCounters>,
}

impl fmt::Display for SpmdJobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report.fmt(f)
    }
}

impl std::error::Error for SpmdJobFailure {}

impl Engine for OtterEngine {
    fn name(&self) -> &'static str {
        "otter"
    }

    fn prepare(&mut self, src: &str) -> Result<()> {
        let empty = otter_frontend::MapProvider::new();
        let provider = self.opts.m_files.as_ref().unwrap_or(&empty);
        let copts = CompileOptions {
            data_dir: self.opts.data_dir.clone(),
            disabled_passes: self.opts.disabled_passes.clone(),
            ..Default::default()
        };
        let report = crate::pass::PassManager::standard().compile(src, provider, &copts)?;
        self.compile_metrics = if self.opts.metrics {
            Some(crate::pass::pass_metrics(&report.passes))
        } else {
            None
        };
        self.compiled = Some(report.compiled);
        Ok(())
    }

    fn run(&mut self, machine: &Machine, p: usize) -> Result<EngineReport> {
        match self.try_run(machine, p)? {
            Ok(report) => Ok(report),
            Err(failure) => Err(failure.report.into()),
        }
    }
}
