//! Cache-keying properties of the compile/run split.
//!
//! The artifact cache is only sound if its key — `(source hash,
//! option fingerprint)` — separates everything that can change a
//! compile and collapses everything that cannot:
//!
//! * Any source edit (even a comment) and any compile-relevant option
//!   knob (disabled pass, collective algorithm, fault plan, metrics,
//!   lint mode, analyze mode, data dir, M-file set) must give a
//!   distinct key.
//! * Run-time-only knobs — the worker-pool size, a trace sink — must
//!   NOT change the key: a warm artifact serves jobs at any pool size.
//! * A cache hit must be *observably* a re-run of the same program:
//!   the `EngineReport` of a hit is byte-identical to a cold compile's
//!   at every rank count, and its metrics contain no
//!   `compile_pass_seconds` series (passes 1–6 never ran).

use otter_core::{compile, run, source_hash, EngineOptions, EngineReport, OtterEngine, RunRequest};
use otter_machine::meiko_cs2;
use otter_mpi::{CollectiveAlgo, FaultPlan};
use otter_serve::ArtifactCache;

const SRC: &str = "a = [1, 2; 3, 4];\nb = a * a;\ns = sum(b(:, 1));\n";

/// Everything deterministic in an [`EngineReport`], flattened bit-
/// exactly (same contract as the scheduler-equivalence suite).
fn report_fingerprint(r: &EngineReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "modeled={:016x} messages={} bytes={} peak_rank={} peak_temp={}",
        r.modeled_seconds.to_bits(),
        r.messages,
        r.bytes,
        r.peak_rank_bytes,
        r.peak_temp_bytes
    );
    let _ = writeln!(out, "output={:?}", r.output);
    let _ = writeln!(out, "ops={:?}", r.op_counts);
    for c in &r.per_rank {
        let _ = writeln!(
            out,
            "rank={} clock={:016x} msgs={} bytes={} peak={}",
            c.rank,
            c.clock.to_bits(),
            c.messages,
            c.bytes,
            c.peak_bytes,
        );
    }
    out
}

#[test]
fn every_compile_relevant_knob_changes_the_fingerprint() {
    let base = EngineOptions::default().fingerprint();
    let variants: Vec<(&str, EngineOptions)> = vec![
        (
            "collective_algo",
            EngineOptions::builder()
                .collective_algo(CollectiveAlgo::Linear)
                .build(),
        ),
        (
            "disabled pass",
            EngineOptions::builder().disable_pass("peephole").build(),
        ),
        (
            "fault plan",
            EngineOptions::builder()
                .faults(FaultPlan::new().crash(1, 2))
                .build(),
        ),
        ("metrics", EngineOptions::builder().metrics(true).build()),
        ("lint mode", EngineOptions::builder().deny_lints().build()),
        ("analyze", EngineOptions::builder().analyze(true).build()),
        (
            "data dir",
            EngineOptions::builder().data_dir("/tmp/otter-data").build(),
        ),
        (
            "m-files",
            EngineOptions::builder()
                .m_files(otter_frontend::MapProvider::new().with("f", "function y = f(x)\ny = x;"))
                .build(),
        ),
        ("fusion", EngineOptions::builder().fusion(false).build()),
        ("tile size", EngineOptions::builder().tile_size(8).build()),
    ];
    let mut seen = vec![("default", base)];
    for (what, opts) in &variants {
        let fp = opts.fingerprint();
        for (other, prev) in &seen {
            assert_ne!(
                fp, *prev,
                "changing `{what}` must not collide with `{other}`"
            );
        }
        seen.push((what, fp));
    }
}

#[test]
fn fingerprints_are_stable_across_calls() {
    let a = EngineOptions::builder()
        .disable_pass("peephole")
        .collective_algo(CollectiveAlgo::Linear)
        .build();
    let b = EngineOptions::builder()
        .disable_pass("peephole")
        .collective_algo(CollectiveAlgo::Linear)
        .build();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.fingerprint(), a.fingerprint());
}

#[test]
fn runtime_only_knobs_do_not_change_the_fingerprint() {
    let base = EngineOptions::default().fingerprint();
    let mut workers = EngineOptions::default();
    workers.workers = Some(2);
    assert_eq!(
        workers.fingerprint(),
        base,
        "worker-pool size is run-time-only: a warm artifact must serve any pool"
    );
    let traced = EngineOptions::builder()
        .trace(std::sync::Arc::new(otter_trace::MemorySink::new()))
        .build();
    assert_eq!(
        traced.fingerprint(),
        base,
        "a trace sink observes a run; it must not fork the compile cache"
    );
}

#[test]
fn any_source_change_changes_the_key() {
    let with_comment = format!("{SRC}% a comment changes nothing semantically\n");
    assert_ne!(
        source_hash(SRC),
        source_hash(&with_comment),
        "the cache key is content-addressed: byte-identity, not semantic identity"
    );
    assert_ne!(source_hash(SRC), source_hash("a = [1, 2; 3, 5];\n"));
}

#[test]
fn cache_hit_report_is_byte_identical_to_cold_compile() {
    let opts = EngineOptions::default();
    let mut cache = ArtifactCache::new(4);
    let (warm_artifact, first) = cache.get_or_compile(SRC, &opts).expect("cold compile");
    assert!(!first.cache_hit);
    let (warm_artifact2, second) = cache.get_or_compile(SRC, &opts).expect("cache hit");
    assert!(second.cache_hit);
    // A completely fresh compile, as a cold-path reference.
    let cold_artifact = compile(SRC, &opts).expect("reference compile");
    assert_eq!(warm_artifact.cache_key(), cold_artifact.cache_key());
    for p in [1usize, 2, 4, 8] {
        let req = RunRequest::on(meiko_cs2(), p);
        let cold = run(&cold_artifact, &req).expect("cold run");
        let warm = run(&warm_artifact2, &req).expect("warm run");
        assert_eq!(
            report_fingerprint(&cold),
            report_fingerprint(&warm),
            "p={p}: a cache hit must reproduce the cold compile bit-for-bit"
        );
    }
}

#[test]
fn warm_runs_carry_no_pass_timings() {
    let opts = EngineOptions::builder().metrics(true).build();
    let mut cache = ArtifactCache::new(4);
    let (_artifact, _) = cache.get_or_compile(SRC, &opts).expect("cold compile");
    let (artifact, outcome) = cache.get_or_compile(SRC, &opts).expect("cache hit");
    assert!(outcome.cache_hit);
    let report = run(&artifact, &RunRequest::on(meiko_cs2(), 4)).expect("warm run");
    let metrics = report.metrics.expect("metrics were requested");
    assert!(
        !metrics
            .entries
            .keys()
            .any(|k| k.name == "compile_pass_seconds"),
        "a served (cached) job must not report compiler-pass time: passes 1-6 never ran"
    );

    // The engine-owned path (compile inside run) DOES report pass
    // timings — the contrast is the observable proof the serve path
    // skipped them.
    use otter_core::Engine;
    let mut engine = OtterEngine::new(EngineOptions::builder().metrics(true).build());
    engine.prepare(SRC).expect("compiles");
    let owned = engine.run(&meiko_cs2(), 4).expect("runs");
    let owned_metrics = owned.metrics.expect("metrics were requested");
    assert!(
        owned_metrics
            .entries
            .keys()
            .any(|k| k.name == "compile_pass_seconds"),
        "the engine path owns its compile and must account for it"
    );
}
