//! End-to-end serve tests over a real Unix socket: an in-process
//! [`Server`] on its own thread, a [`ServeClient`] session driving
//! the `otter-serve/v1` protocol, all four benchmark apps submitted
//! twice (round two must be all cache hits), the stats and metrics
//! ops, the HTTP scrape endpoint (`/metrics`, `/jobs`,
//! `/trace/<job_id>`), the `logs` op, the postmortem path of a
//! crashed job, and a protocol-level shutdown.

use otter_metrics::Json;
use otter_serve::{JobOptions, Request, ServeClient, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A script whose matrix multiply and column reduction keep all ranks
/// talking — enough traffic for crash injection to strand peers.
const COMM_HEAVY: &str = "a = ones(32, 32);\nb = a * a;\ns = sum(b(:, 1));";

/// One plain HTTP GET against the daemon's stats listener.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("tcp connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .expect("send GET");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

struct Daemon {
    socket: PathBuf,
    metrics_addr: Option<std::net::SocketAddr>,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn spawn_daemon(metrics: bool) -> Daemon {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let cfg = ServeConfig {
        socket: std::env::temp_dir().join(format!("otter-e2e-{}-{}.sock", std::process::id(), seq)),
        workers: 4,
        cache_capacity: 16,
        metrics_addr: metrics.then(|| "127.0.0.1:0".to_string()),
        postmortem_dir: std::env::temp_dir().join(format!(
            "otter-e2e-{}-{}-postmortem",
            std::process::id(),
            seq
        )),
    };
    let server = Server::bind(cfg).expect("bind");
    Daemon {
        socket: server.socket().clone(),
        metrics_addr: server.metrics_addr(),
        handle: server.handle(),
        thread: Some(std::thread::spawn(move || server.run())),
    }
}

impl Daemon {
    fn client(&self) -> ServeClient {
        ServeClient::connect_with_retry(&self.socket, Duration::from_secs(5)).expect("connect")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.request_stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[test]
fn four_apps_twice_second_round_is_all_hits() {
    let daemon = spawn_daemon(false);
    let mut client = daemon.client();
    client.ping().expect("ping");
    let apps = otter_apps::test_apps();
    assert_eq!(apps.len(), 4);
    for round in 0..2 {
        for app in &apps {
            let reply = client
                .run(&app.script, JobOptions::default(), "meiko", 4, None)
                .unwrap_or_else(|e| panic!("{} round {round}: {e}", app.id));
            assert_eq!(
                reply.cache_hit,
                round == 1,
                "{} round {round}: first sight compiles, second round must hit",
                app.id
            );
        }
    }
    let stats = client.stats().expect("stats");
    let num = |k: &str| {
        stats
            .get(k)
            .and_then(otter_metrics::Json::as_num)
            .unwrap_or(-1.0)
    };
    assert_eq!(num("cache_hits"), 4.0);
    assert_eq!(num("cache_misses"), 4.0);
    assert_eq!(num("cache_entries"), 4.0);
}

#[test]
fn metrics_exposition_has_the_serve_families() {
    let daemon = spawn_daemon(true);
    let mut client = daemon.client();
    client
        .run("x = 1 + 1;", JobOptions::default(), "meiko", 2, None)
        .expect("cold job");
    client
        .run("x = 1 + 1;", JobOptions::default(), "meiko", 2, None)
        .expect("warm job");
    let text = client.metrics_text().expect("metrics op");
    for family in [
        "otter_serve_jobs_total",
        "otter_serve_cache_hits_total",
        "otter_serve_cache_misses_total",
        "otter_serve_compile_seconds",
        "otter_serve_run_seconds",
        "otter_serve_job_seconds",
        "otter_serve_workers_total",
    ] {
        assert!(text.contains(family), "missing family {family} in:\n{text}");
    }
    assert!(
        text.contains(r#"otter_serve_compile_seconds_count{cache_hit="true"}"#),
        "warm compiles must be labeled cache_hit=\"true\":\n{text}"
    );

    // The same exposition over plain HTTP, as a scraper (or curl)
    // would fetch it.
    let addr = daemon.metrics_addr.expect("http listener");
    let response = http_get(addr, "/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4"),
        "Prometheus scrapers key on the versioned text content type:\n{response}"
    );
    assert!(response.contains("otter_serve_jobs_total"), "{response}");
}

#[test]
fn crashed_job_yields_postmortem_bundle_jobs_row_and_error_log() {
    let daemon = spawn_daemon(true);
    let mut client = daemon.client();
    // A healthy run first, so the jobs table carries both outcomes.
    let healthy = client
        .run(COMM_HEAVY, JobOptions::default(), "meiko", 4, None)
        .expect("healthy job");
    assert!(!healthy.job_id.is_empty(), "run replies carry a job_id");
    // Now the same script with rank 3 crashing at its 2nd comm op.
    let body = client
        .request_raw(&Request::Run {
            source: COMM_HEAVY.to_string(),
            options: JobOptions {
                metrics: true,
                crash: Some((3, 2)),
                ..JobOptions::default()
            },
            machine: "meiko".to_string(),
            ranks: 8,
            workers: None,
        })
        .expect("transport");
    assert!(matches!(body.get("ok"), Some(Json::Bool(false))), "{body}");
    let job_id = body
        .get("job_id")
        .and_then(Json::as_str)
        .expect("failure responses still carry the job_id")
        .to_string();
    let path = body
        .get("postmortem")
        .and_then(Json::as_str)
        .expect("failed runs must point at their postmortem bundle")
        .to_string();
    // The bundle on disk parses, carries the same correlation key, and
    // names the injected crash as root cause.
    let text = std::fs::read_to_string(&path).expect("bundle on disk");
    let summary = otter_core::parse_postmortem(&text).expect("valid otter-postmortem/v1");
    assert_eq!(summary.job_id.to_string(), job_id);
    assert_eq!(summary.root_cause_rank, 3);
    assert_eq!(summary.root_cause_code, "injected_crash");
    assert!(summary.has_metrics, "metrics: true runs bundle a snapshot");
    // The recent-job table knows both jobs; the failed row links the
    // bundle.
    let jobs = http_get(daemon.metrics_addr.expect("http"), "/jobs");
    assert!(jobs.starts_with("HTTP/1.1 200 OK"), "{jobs}");
    assert!(jobs.contains("Content-Type: application/json"), "{jobs}");
    assert!(jobs.contains(&job_id), "{jobs}");
    assert!(jobs.contains(&healthy.job_id), "{jobs}");
    assert!(jobs.contains("\"status\":\"failed\""), "{jobs}");
    assert!(jobs.contains("\"status\":\"ok\""), "{jobs}");
    assert!(jobs.contains(&path), "{jobs}");
    // The daemon's own flight recorder saw the failure; level
    // filtering separates it from routine traffic.
    let errors = client.logs("error").expect("logs op");
    assert!(
        errors.iter().any(|e| {
            e.get("code").and_then(Json::as_str) == Some("serve.run_failed")
                && e.get("a").and_then(Json::as_num)
                    == Some(u64::from_str_radix(&job_id, 16).expect("hex id") as f64)
        }),
        "{errors:?}"
    );
    let everything = client.logs("debug").expect("logs op");
    assert!(everything.len() > errors.len(), "debug must include more");
}

#[test]
fn trace_endpoint_serves_retained_chrome_traces() {
    let daemon = spawn_daemon(true);
    let mut client = daemon.client();
    let traced = client
        .run(
            COMM_HEAVY,
            JobOptions {
                trace: true,
                ..JobOptions::default()
            },
            "meiko",
            4,
            None,
        )
        .expect("traced job");
    // Per-phase spans chain off the job's root span — one correlation
    // key from the request through compile and run.
    let spans = traced.body.get("spans").expect("run replies carry spans");
    assert_eq!(
        spans.get("request").and_then(Json::as_str),
        Some(format!("{}/0", traced.job_id).as_str())
    );
    assert_eq!(
        spans.get("compile").and_then(Json::as_str),
        Some(format!("{}/1", traced.job_id).as_str())
    );
    assert_eq!(
        spans.get("run").and_then(Json::as_str),
        Some(format!("{}/2", traced.job_id).as_str())
    );
    let plain = client
        .run(COMM_HEAVY, JobOptions::default(), "meiko", 4, None)
        .expect("untraced job");
    let addr = daemon.metrics_addr.expect("http listener");
    let got = http_get(addr, &format!("/trace/{}", traced.job_id));
    assert!(got.starts_with("HTTP/1.1 200 OK"), "{got}");
    assert!(got.contains("traceEvents"), "{got}");
    // Untraced runs retain nothing; unknown ids 404 likewise.
    let missing = http_get(addr, &format!("/trace/{}", plain.job_id));
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    let bogus = http_get(addr, "/trace/not-a-job-id");
    assert!(bogus.starts_with("HTTP/1.1 404"), "{bogus}");
}

#[test]
fn errors_are_replies_not_disconnects() {
    let daemon = spawn_daemon(false);
    let mut client = daemon.client();
    let err = client
        .run("x = 1;", JobOptions::default(), "cray", 2, None)
        .expect_err("unknown machine must fail");
    assert!(err.contains("unknown machine"), "{err}");
    let err = client
        .run("x = ][;", JobOptions::default(), "meiko", 2, None)
        .expect_err("syntax error must fail");
    assert!(!err.is_empty());
    // The session survives both failures.
    client.ping().expect("session still alive");
}

#[test]
fn shutdown_op_stops_the_accept_loop_and_removes_the_socket() {
    let daemon = spawn_daemon(false);
    let mut client = daemon.client();
    client.shutdown().expect("shutdown op");
    let thread = {
        // Take the thread out so Drop doesn't double-join.
        let mut d = daemon;
        d.thread.take().expect("thread")
    };
    let result = thread.join().expect("no panic");
    assert!(result.is_ok(), "{result:?}");
}

#[test]
fn concurrent_sessions_share_the_cache() {
    let daemon = spawn_daemon(false);
    let script = otter_apps::test_apps().remove(0).script;
    // Warm the cache once, then hammer it from several sessions.
    daemon
        .client()
        .run(&script, JobOptions::default(), "meiko", 4, None)
        .expect("warm-up job");
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let script = &script;
            let daemon = &daemon;
            scope.spawn(move || {
                let mut session = daemon.client();
                for _ in 0..2 {
                    let reply = session
                        .run(script, JobOptions::default(), "meiko", 4, None)
                        .expect("job");
                    assert!(reply.cache_hit, "all post-warm-up jobs must hit");
                }
            });
        }
    });
}
