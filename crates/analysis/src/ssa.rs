//! Pass 3a — static single assignment (paper §3).
//!
//! "MATLAB, designed as an interpreted language, allows the attributes
//! of a variable to change during a program's execution. We solve this
//! problem by transforming the program into static single assignment
//! form."
//!
//! A compiler that ultimately emits one C variable per MATLAB variable
//! cannot keep the program *in* SSA; it needs SSA followed by web
//! coalescing: SSA versions connected by φ-nodes (control-flow joins,
//! loop back-edges) or by partial updates (indexed assignment is a
//! use+def) must share a C variable, while *straight-line whole-value
//! redefinitions* may get fresh variables — which is exactly what lets
//! `x = 2; ...; x = zeros(n, n);` compile even though `x`'s rank
//! changes. This module builds the versions, the φ/def-use edges, and
//! the union-find coalescing, then renames the AST so that each web is
//! a distinct variable.

use otter_frontend::ast::*;
use std::collections::{BTreeMap, HashMap};

/// Union-find over SSA version ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    fn make(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller id wins, so web representatives
            // are stable across runs.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Result of SSA construction over one scope.
pub struct SsaInfo {
    /// Renamed block.
    pub block: Block,
    /// Total SSA versions created per base variable (the property
    /// tests assert on this).
    pub versions_per_var: BTreeMap<String, usize>,
    /// Final variable names after web coalescing, per base variable,
    /// in creation order.
    pub webs_per_var: BTreeMap<String, Vec<String>>,
    /// Map from final (web) names back to their base variable.
    pub base_of: BTreeMap<String, String>,
}

/// Per-variable version state during the walk.
#[derive(Default)]
struct Versions {
    /// version id list per base name; index in the vec = version number.
    ids: HashMap<String, Vec<usize>>,
    /// current version number per base name.
    current: HashMap<String, usize>,
}

struct Builder {
    uf: UnionFind,
    vers: Versions,
}

impl Builder {
    /// Current version id of `name`, creating version 0 (the
    /// "undefined on entry" version) on first sight.
    fn use_of(&mut self, name: &str) -> usize {
        if !self.vers.ids.contains_key(name) {
            let id = self.uf.make();
            self.vers.ids.insert(name.to_string(), vec![id]);
            self.vers.current.insert(name.to_string(), 0);
        }
        let cur = self.vers.current[name];
        self.vers.ids[name][cur]
    }

    /// New version of `name` (a whole-value definition).
    fn def_of(&mut self, name: &str) -> usize {
        self.use_of(name); // ensure the variable exists
        let id = self.uf.make();
        let list = self.vers.ids.get_mut(name).unwrap();
        list.push(id);
        *self.vers.current.get_mut(name).unwrap() = list.len() - 1;
        id
    }

    /// Partial (indexed) definition: new version unified with the old
    /// one — the object is updated, not replaced.
    fn partial_def_of(&mut self, name: &str) -> usize {
        let old = self.use_of(name);
        let new = self.def_of(name);
        self.uf.union(old, new);
        new
    }

    fn snapshot(&self) -> HashMap<String, usize> {
        self.vers.current.clone()
    }

    fn restore(&mut self, snap: &HashMap<String, usize>) {
        for (k, v) in snap {
            self.vers.current.insert(k.clone(), *v);
        }
        // Variables first defined after the snapshot revert to their
        // entry version (version 0 = undefined) when leaving the
        // region.
        let known: Vec<String> = self.vers.current.keys().cloned().collect();
        for k in known {
            if !snap.contains_key(&k) {
                self.vers.current.insert(k, 0);
            }
        }
    }

    /// φ at a two-way join: for every variable whose version differs
    /// between the two paths, union the two incoming versions (web
    /// coalescing of the φ). The merged current version is whichever
    /// path's version; they are in one web so the choice is cosmetic —
    /// pick the max version number for determinism.
    fn join(&mut self, a: &HashMap<String, usize>, b: &HashMap<String, usize>) {
        let names: Vec<String> = self.vers.current.keys().cloned().collect();
        for name in names {
            let va = a.get(&name).copied().unwrap_or(0);
            let vb = b.get(&name).copied().unwrap_or(0);
            if va != vb {
                let ia = self.vers.ids[&name][va];
                let ib = self.vers.ids[&name][vb];
                self.uf.union(ia, ib);
            }
            self.vers.current.insert(name.clone(), va.max(vb));
        }
    }
}

/// Build SSA webs for a block and rename variables accordingly.
/// `params` seeds definitions (function parameters are defined on
/// entry).
pub fn ssa_rename(block: &Block, params: &[String]) -> SsaInfo {
    let mut b = Builder {
        uf: UnionFind::new(),
        vers: Versions::default(),
    };
    for p in params {
        b.use_of(p); // version 0 is the parameter's value
    }
    // First walk: create versions and union edges, recording for each
    // textual location which version id it refers to. We re-walk to
    // rename, so record a per-event version stream instead of
    // rebuilding positions: the second walk repeats the exact same
    // traversal and pops from the stream.
    let mut events: Vec<usize> = Vec::new();
    walk_block(block, &mut b, &mut events);

    // Assign web names. The entry version (version 0, "undefined on
    // scope entry") only matters when it is actually referenced — a
    // genuine use-before-def, a parameter, or a φ with the entry value.
    // Webs nobody references get no name and no slot, so `x = 1` keeps
    // the name `x` rather than ceding it to the phantom entry version.
    let referenced: std::collections::HashSet<usize> =
        events.iter().map(|&id| b.uf.find(id)).collect();
    let mut web_name: HashMap<usize, String> = HashMap::new();
    let mut webs_per_var: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut base_of: BTreeMap<String, String> = BTreeMap::new();
    let mut versions_per_var: BTreeMap<String, usize> = BTreeMap::new();
    let names: Vec<String> = b.vers.ids.keys().cloned().collect();
    for name in names {
        let ids = b.vers.ids[&name].clone();
        versions_per_var.insert(name.clone(), ids.len());
        let mut seen_roots: Vec<usize> = Vec::new();
        for id in ids {
            let root = b.uf.find(id);
            if !referenced.contains(&root) {
                continue;
            }
            if !seen_roots.contains(&root) {
                seen_roots.push(root);
                let web_idx = seen_roots.len() - 1;
                let final_name = if web_idx == 0 {
                    name.clone()
                } else {
                    format!("{name}__{web_idx}")
                };
                webs_per_var
                    .entry(name.clone())
                    .or_default()
                    .push(final_name.clone());
                base_of.insert(final_name.clone(), name.clone());
                web_name.insert(root, final_name);
            }
        }
    }

    // Second walk: rename using the recorded version stream.
    let mut cursor = 0usize;
    let renamed = rename_block(block, &mut b, &events, &mut cursor, &web_name);
    debug_assert_eq!(
        cursor,
        events.len(),
        "rename walk must mirror the version walk"
    );

    SsaInfo {
        block: renamed,
        versions_per_var,
        webs_per_var,
        base_of,
    }
}

// The two walks must visit identifiers in the same order. Keep them
// textually adjacent and structurally parallel.

fn walk_block(block: &Block, b: &mut Builder, ev: &mut Vec<usize>) {
    for stmt in block {
        walk_stmt(stmt, b, ev);
    }
}

fn walk_stmt(stmt: &Stmt, b: &mut Builder, ev: &mut Vec<usize>) {
    match &stmt.kind {
        StmtKind::Expr(e) => walk_expr(e, b, ev),
        StmtKind::Assign { lhs, rhs } => {
            walk_expr(rhs, b, ev);
            match &lhs.indices {
                None => ev.push(b.def_of(&lhs.name)),
                Some(idx) => {
                    for e in idx {
                        walk_expr(e, b, ev);
                    }
                    ev.push(b.partial_def_of(&lhs.name));
                }
            }
        }
        StmtKind::MultiAssign { lhs, rhs } => {
            walk_expr(rhs, b, ev);
            for lv in lhs {
                match &lv.indices {
                    None => ev.push(b.def_of(&lv.name)),
                    Some(idx) => {
                        for e in idx {
                            walk_expr(e, b, ev);
                        }
                        ev.push(b.partial_def_of(&lv.name));
                    }
                }
            }
        }
        StmtKind::If { arms, else_body } => {
            // Evaluate arms sequentially with φ-joins pairwise against
            // the fall-through path.
            let entry = b.snapshot();
            let mut path_ends: Vec<HashMap<String, usize>> = Vec::new();
            for (cond, body) in arms {
                walk_expr(cond, b, ev);
                let before_branch = b.snapshot();
                walk_block(body, b, ev);
                path_ends.push(b.snapshot());
                b.restore(&before_branch);
            }
            match else_body {
                Some(body) => {
                    walk_block(body, b, ev);
                    path_ends.push(b.snapshot());
                }
                None => path_ends.push(entry),
            }
            // Fold all path ends into the current state.
            let first = path_ends[0].clone();
            b.restore(&first);
            for p in &path_ends[1..] {
                let cur = b.snapshot();
                b.join(&cur, p);
            }
        }
        StmtKind::While { cond, body } => {
            // Loop-carried variables: anything assigned in the body
            // joins with its entry version.
            let entry = b.snapshot();
            walk_expr(cond, b, ev);
            walk_block(body, b, ev);
            let end = b.snapshot();
            b.join(&end, &entry);
        }
        StmtKind::For { var, iter, body } => {
            walk_expr(iter, b, ev);
            ev.push(b.def_of(var));
            let entry = b.snapshot();
            walk_block(body, b, ev);
            let end = b.snapshot();
            b.join(&end, &entry);
        }
        StmtKind::Global(names) => {
            // Globals are one web by definition.
            for n in names {
                b.use_of(n);
            }
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Return => {}
    }
}

fn walk_expr(e: &Expr, b: &mut Builder, ev: &mut Vec<usize>) {
    match &e.kind {
        ExprKind::Ident(name) => ev.push(b.use_of(name)),
        ExprKind::Index { base, args } => {
            ev.push(b.use_of(base));
            for a in args {
                walk_expr(a, b, ev);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                walk_expr(a, b, ev);
            }
        }
        ExprKind::Unary { operand, .. } => walk_expr(operand, b, ev),
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, b, ev);
            walk_expr(rhs, b, ev);
        }
        ExprKind::Transpose { operand, .. } => walk_expr(operand, b, ev),
        ExprKind::Range { start, step, stop } => {
            walk_expr(start, b, ev);
            if let Some(s) = step {
                walk_expr(s, b, ev);
            }
            walk_expr(stop, b, ev);
        }
        ExprKind::Matrix(rows) => {
            for r in rows {
                for c in r {
                    walk_expr(c, b, ev);
                }
            }
        }
        ExprKind::Number { .. } | ExprKind::Str(_) | ExprKind::Colon | ExprKind::EndKeyword => {}
    }
}

fn take_name(
    b: &mut Builder,
    ev: &[usize],
    cursor: &mut usize,
    web: &HashMap<usize, String>,
) -> String {
    let id = ev[*cursor];
    *cursor += 1;
    let root = b.uf.find(id);
    web[&root].clone()
}

fn rename_block(
    block: &Block,
    b: &mut Builder,
    ev: &[usize],
    cursor: &mut usize,
    web: &HashMap<usize, String>,
) -> Block {
    block
        .iter()
        .map(|s| rename_stmt(s, b, ev, cursor, web))
        .collect()
}

fn rename_stmt(
    stmt: &Stmt,
    b: &mut Builder,
    ev: &[usize],
    cursor: &mut usize,
    web: &HashMap<usize, String>,
) -> Stmt {
    let kind = match &stmt.kind {
        StmtKind::Expr(e) => StmtKind::Expr(rename_expr(e, b, ev, cursor, web)),
        StmtKind::Assign { lhs, rhs } => {
            let rhs = rename_expr(rhs, b, ev, cursor, web);
            let lhs = rename_lvalue(lhs, b, ev, cursor, web);
            StmtKind::Assign { lhs, rhs }
        }
        StmtKind::MultiAssign { lhs, rhs } => {
            let rhs = rename_expr(rhs, b, ev, cursor, web);
            let lhs = lhs
                .iter()
                .map(|lv| rename_lvalue(lv, b, ev, cursor, web))
                .collect();
            StmtKind::MultiAssign { lhs, rhs }
        }
        StmtKind::If { arms, else_body } => StmtKind::If {
            arms: arms
                .iter()
                .map(|(c, body)| {
                    (
                        rename_expr(c, b, ev, cursor, web),
                        rename_block(body, b, ev, cursor, web),
                    )
                })
                .collect(),
            else_body: else_body
                .as_ref()
                .map(|body| rename_block(body, b, ev, cursor, web)),
        },
        StmtKind::While { cond, body } => StmtKind::While {
            cond: rename_expr(cond, b, ev, cursor, web),
            body: rename_block(body, b, ev, cursor, web),
        },
        StmtKind::For { var: _, iter, body } => {
            let iter = rename_expr(iter, b, ev, cursor, web);
            let var = take_name(b, ev, cursor, web);
            StmtKind::For {
                var,
                iter,
                body: rename_block(body, b, ev, cursor, web),
            }
        }
        other => other.clone(),
    };
    Stmt {
        kind,
        span: stmt.span,
        display: stmt.display,
    }
}

fn rename_lvalue(
    lv: &LValue,
    b: &mut Builder,
    ev: &[usize],
    cursor: &mut usize,
    web: &HashMap<usize, String>,
) -> LValue {
    match &lv.indices {
        None => {
            let name = take_name(b, ev, cursor, web);
            LValue {
                name,
                indices: None,
                span: lv.span,
            }
        }
        Some(idx) => {
            let indices: Vec<Expr> = idx
                .iter()
                .map(|e| rename_expr(e, b, ev, cursor, web))
                .collect();
            let name = take_name(b, ev, cursor, web);
            LValue {
                name,
                indices: Some(indices),
                span: lv.span,
            }
        }
    }
}

fn rename_expr(
    e: &Expr,
    b: &mut Builder,
    ev: &[usize],
    cursor: &mut usize,
    web: &HashMap<usize, String>,
) -> Expr {
    let kind = match &e.kind {
        ExprKind::Ident(_) => ExprKind::Ident(take_name(b, ev, cursor, web)),
        ExprKind::Index { base: _, args } => {
            let base = take_name(b, ev, cursor, web);
            let args = args
                .iter()
                .map(|a| rename_expr(a, b, ev, cursor, web))
                .collect();
            ExprKind::Index { base, args }
        }
        ExprKind::Call { callee, args } => ExprKind::Call {
            callee: callee.clone(),
            args: args
                .iter()
                .map(|a| rename_expr(a, b, ev, cursor, web))
                .collect(),
        },
        ExprKind::Unary { op, operand } => ExprKind::Unary {
            op: *op,
            operand: Box::new(rename_expr(operand, b, ev, cursor, web)),
        },
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op: *op,
            lhs: Box::new(rename_expr(lhs, b, ev, cursor, web)),
            rhs: Box::new(rename_expr(rhs, b, ev, cursor, web)),
        },
        ExprKind::Transpose { op, operand } => ExprKind::Transpose {
            op: *op,
            operand: Box::new(rename_expr(operand, b, ev, cursor, web)),
        },
        ExprKind::Range { start, step, stop } => ExprKind::Range {
            start: Box::new(rename_expr(start, b, ev, cursor, web)),
            step: step
                .as_ref()
                .map(|s| Box::new(rename_expr(s, b, ev, cursor, web))),
            stop: Box::new(rename_expr(stop, b, ev, cursor, web)),
        },
        ExprKind::Matrix(rows) => ExprKind::Matrix(
            rows.iter()
                .map(|r| {
                    r.iter()
                        .map(|c| rename_expr(c, b, ev, cursor, web))
                        .collect()
                })
                .collect(),
        ),
        k => k.clone(),
    };
    Expr::new(kind, e.span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_frontend::parse;
    use otter_frontend::pretty::program_to_string;

    fn rename_src(src: &str) -> (SsaInfo, String) {
        // SSA runs on resolved ASTs in the pipeline (so `x(2)` is
        // `Index`, not `Call`); mirror that here.
        let resolved = crate::resolve::resolve(src, &otter_frontend::EmptyProvider)
            .map(|r| r.program)
            .unwrap_or_else(|_| {
                // Sources with undefined condition variables (used by
                // the control-flow tests) still parse; fall back to
                // the raw AST for those.
                let f = parse(src).unwrap();
                Program {
                    script: f.script,
                    functions: f.functions,
                }
            });
        let info = ssa_rename(&resolved.script, &[]);
        let printed = program_to_string(&Program {
            script: info.block.clone(),
            functions: vec![],
        });
        (info, printed)
    }

    #[test]
    fn straight_line_redefinition_splits() {
        // x: scalar then matrix — the paper's motivating case.
        let (info, printed) = rename_src("x = 2;\ny = x + 1;\nx = [1, 2, 3];\nz = x(2);");
        assert_eq!(info.webs_per_var["x"].len(), 2, "{printed}");
        assert!(printed.contains("x__1 = [1, 2, 3]"), "{printed}");
        assert!(printed.contains("z = x__1(2)"), "{printed}");
        assert!(
            printed.contains("y = x + 1"),
            "first web keeps the base name: {printed}"
        );
    }

    #[test]
    fn loop_carried_variable_stays_one_web() {
        let (info, printed) = rename_src("s = 0;\nfor i = 1:10\ns = s + i;\nend\nt = s;");
        assert_eq!(info.webs_per_var["s"].len(), 1, "{printed}");
        assert!(printed.contains("s = s + i"), "{printed}");
        assert!(printed.contains("t = s"), "{printed}");
    }

    #[test]
    fn while_loop_joins_back_edge() {
        let (info, _) = rename_src("x = 1;\nwhile x < 10\nx = x * 2;\nend\ny = x;");
        assert_eq!(info.webs_per_var["x"].len(), 1);
    }

    #[test]
    fn if_join_unifies_branches() {
        let (info, printed) = rename_src("c = 1;\nif c > 0\nx = 1;\nelse\nx = 2;\nend\ny = x;");
        assert_eq!(info.webs_per_var["x"].len(), 1, "{printed}");
        assert!(printed.contains("y = x"), "{printed}");
    }

    #[test]
    fn if_without_else_joins_entry_version() {
        let (info, _) = rename_src("c = 1;\nx = 1;\nif c > 0\nx = 2;\nend\ny = x;");
        // The conditional redefinition merges with the entry value.
        assert_eq!(info.webs_per_var["x"].len(), 1);
    }

    #[test]
    fn indexed_assignment_is_partial_def() {
        let (info, printed) = rename_src("a = zeros(3, 3);\na(1, 2) = 5;\nb = a(1, 2);");
        assert_eq!(info.webs_per_var["a"].len(), 1, "{printed}");
    }

    #[test]
    fn redefinition_after_loop_splits() {
        let (info, printed) =
            rename_src("x = 0;\nfor i = 1:3\nx = x + i;\nend\nx = [1, 2];\ny = x(1);");
        assert_eq!(info.webs_per_var["x"].len(), 2, "{printed}");
        assert!(printed.contains("y = x__1(1)"), "{printed}");
    }

    #[test]
    fn versions_counted() {
        let (info, _) = rename_src("x = 1;\nx = 2;\nx = 3;");
        // Entry version + three defs.
        assert_eq!(info.versions_per_var["x"], 4);
        assert_eq!(info.webs_per_var["x"].len(), 3);
    }

    #[test]
    fn base_mapping_round_trips() {
        let (info, _) = rename_src("x = 1;\nx = [1, 2];");
        for (web, base) in &info.base_of {
            assert!(web == base || web.starts_with(&format!("{base}__")));
        }
    }

    #[test]
    fn independent_variables_untouched() {
        let (_, printed) = rename_src("alpha = 1;\nbeta = alpha + 2;\ngamma = beta * 3;");
        assert!(printed.contains("alpha = 1"));
        assert!(printed.contains("beta = alpha + 2"));
        assert!(printed.contains("gamma = beta * 3"));
        assert!(!printed.contains("__"), "{printed}");
    }

    #[test]
    fn conditional_then_redefinition_shape() {
        // Regression-style structural test: definition inside both
        // if arms, then an unconditional redefinition afterwards.
        let (info, printed) = rename_src(
            "c = 1;\nif c > 0\nx = 1;\nelse\nx = 2;\nend\ny = x;\nx = zeros(2, 2);\nz = x(1, 1);",
        );
        assert_eq!(info.webs_per_var["x"].len(), 2, "{printed}");
        assert!(printed.contains("y = x"), "{printed}");
        assert!(printed.contains("z = x__1(1, 1)"), "{printed}");
    }

    #[test]
    fn multi_assign_defs() {
        let file = parse("[q, r] = decomp(a);\nq = q + 1;").unwrap();
        let info = ssa_rename(&file.script, &[]);
        // q: entry + 2 defs; the second def uses the first — loop-free
        // so two webs.
        assert_eq!(info.webs_per_var["q"].len(), 2);
    }

    #[test]
    fn params_seed_entry_versions() {
        let file = parse("y = x + 1;").unwrap();
        let info = ssa_rename(&file.script, &["x".to_string()]);
        assert_eq!(info.webs_per_var["x"].len(), 1);
        let printed = program_to_string(&Program {
            script: info.block,
            functions: vec![],
        });
        assert!(printed.contains("y = x + 1"));
    }
}
