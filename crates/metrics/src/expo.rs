//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! The classic pull-scrape format: one `# TYPE` header per metric
//! family, `name{label="value"} value` sample lines, and histograms
//! expanded into cumulative `_bucket{le="..."}` series plus `_sum` and
//! `_count`. Every metric is prefixed `otter_` so a scrape of several
//! jobs namespaces cleanly.

use crate::registry::{MetricValue, MetricsSnapshot};
use std::fmt::Write;

/// Render a snapshot in Prometheus text-exposition style.
pub fn expo(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (key, value) in &snapshot.entries {
        let family = format!("otter_{}", key.name);
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} {}", value.kind());
            last_family = family.clone();
        }
        let labels = |extra: Option<(&str, String)>| -> String {
            let mut pairs: Vec<String> = key
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            if let Some((k, v)) = extra {
                pairs.push(format!("{k}=\"{v}\""));
            }
            if pairs.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", pairs.join(","))
            }
        };
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{family}{} {c}", labels(None));
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{family}{} {g}", labels(None));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (_, le, count) in h.nonzero_buckets() {
                    cumulative += count;
                    let _ = writeln!(
                        out,
                        "{family}_bucket{} {cumulative}",
                        labels(Some(("le", format!("{le}"))))
                    );
                }
                let _ = writeln!(
                    out,
                    "{family}_bucket{} {}",
                    labels(Some(("le", "+Inf".to_string()))),
                    h.count()
                );
                let _ = writeln!(out, "{family}_sum{} {}", labels(None), h.sum());
                let _ = writeln!(out, "{family}_count{} {}", labels(None), h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn families_and_samples_render() {
        let mut r = MetricsRegistry::new();
        r.inc("messages_total", &[("kind", "p2p")], 7);
        r.gauge_max("peak_bytes", &[], 4096.0);
        r.observe("op_seconds", &[("op", "matmul")], 0.5);
        r.observe("op_seconds", &[("op", "matmul")], 2.0);
        let text = expo(&r.snapshot());
        assert!(
            text.contains("# TYPE otter_messages_total counter"),
            "{text}"
        );
        assert!(
            text.contains("otter_messages_total{kind=\"p2p\"} 7"),
            "{text}"
        );
        assert!(text.contains("# TYPE otter_peak_bytes gauge"), "{text}");
        assert!(text.contains("otter_peak_bytes 4096"), "{text}");
        assert!(text.contains("# TYPE otter_op_seconds histogram"), "{text}");
        assert!(
            text.contains("otter_op_seconds_bucket{op=\"matmul\",le=\"0.5\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("otter_op_seconds_bucket{op=\"matmul\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("otter_op_seconds_sum{op=\"matmul\"} 2.5"),
            "{text}"
        );
        assert!(
            text.contains("otter_op_seconds_count{op=\"matmul\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn buckets_are_cumulative() {
        let mut r = MetricsRegistry::new();
        for v in [1.0, 2.0, 4.0] {
            r.observe("h", &[], v);
        }
        let text = expo(&r.snapshot());
        assert!(text.contains("otter_h_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("otter_h_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("otter_h_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("otter_h_bucket{le=\"+Inf\"} 3"), "{text}");
    }

    #[test]
    fn one_type_header_per_family() {
        let mut r = MetricsRegistry::new();
        r.inc("ops_total", &[("op", "a")], 1);
        r.inc("ops_total", &[("op", "b")], 2);
        let text = expo(&r.snapshot());
        assert_eq!(text.matches("# TYPE otter_ops_total").count(), 1, "{text}");
    }
}
