//! Recursive-descent parser for the MATLAB subset (paper pass 1).
//!
//! The grammar follows MATLAB's operator precedence:
//!
//! ```text
//! lowest   |        (element-wise or)
//!          &        (element-wise and)
//!          == ~= < <= > >=
//!          :        (range construction)
//!          + -      (binary)
//!          * / \ .* ./ .\
//!          unary + - ~
//!          ^ .^     (left-associative)
//! highest  postfix ' .'  and primaries
//! ```
//!
//! As in the paper, `name(args)` is parsed uniformly as a *call*;
//! identifier resolution later decides whether it is really matrix
//! indexing. `end` is a statement-block terminator except inside index
//! parentheses, where it denotes the last element of a dimension.
//!
//! Restriction carried over from the paper (§3): matrix-literal
//! elements must be separated by commas; white-space separation is a
//! parse error, reported as such.

use crate::ast::*;
use crate::error::{FrontendError, FrontendErrorKind, Result};
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parser state over a scanned token stream.
pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Nesting depth of index/call parentheses — controls whether
    /// `end` is a value and whether newlines are ignored.
    paren_depth: u32,
    /// Nesting depth of `[...]` matrix literals.
    bracket_depth: u32,
}

impl Parser {
    pub fn new(toks: Vec<Token>) -> Self {
        Parser {
            toks,
            pos: 0,
            paren_depth: 0,
            bracket_depth: 0,
        }
    }

    /// Parse a complete M-file.
    pub fn parse_file(mut self) -> Result<SourceFile> {
        let mut script = Block::new();
        let mut functions = Vec::new();
        self.skip_separators();
        while !self.at(&TokenKind::Eof) {
            if self.at(&TokenKind::Function) {
                functions.push(self.function_def()?);
            } else if !functions.is_empty() {
                // Statements after a function definition belong to that
                // function in classic M-files; function_def consumes
                // them, so reaching here means a stray token.
                return Err(self.err_expected("`function` or end of file"));
            } else {
                script.push(self.statement()?);
            }
            self.skip_separators();
        }
        Ok(SourceFile { script, functions })
    }

    // ---- token plumbing -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn at(&self, k: &TokenKind) -> bool {
        self.peek() == k
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.at(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: &TokenKind) -> Result<Token> {
        if self.at(k) {
            Ok(self.bump())
        } else {
            Err(self.err_expected(&k.describe()))
        }
    }

    fn err_expected(&self, what: &str) -> FrontendError {
        FrontendError::new(
            FrontendErrorKind::Expected {
                expected: what.to_string(),
                found: self.peek().describe(),
            },
            self.peek_span(),
        )
    }

    /// Skip newlines/semis/commas between statements.
    fn skip_separators(&mut self) {
        while matches!(
            self.peek(),
            TokenKind::Newline | TokenKind::Semi | TokenKind::Comma
        ) {
            self.bump();
        }
    }

    /// Inside parens/brackets MATLAB joins lines implicitly only after
    /// operators; our lexer already strips `...` continuations, and for
    /// simplicity we ignore newlines inside call/index parens (but NOT
    /// inside matrix brackets, where they separate rows).
    fn skip_newlines_in_parens(&mut self) {
        if self.paren_depth > 0 && self.bracket_depth == 0 {
            while self.at(&TokenKind::Newline) {
                self.bump();
            }
        }
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Stmt> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::If => self.if_stmt(start),
            TokenKind::While => self.while_stmt(start),
            TokenKind::For => self.for_stmt(start),
            TokenKind::Break => {
                self.bump();
                self.finish_simple(StmtKind::Break, start)
            }
            TokenKind::Continue => {
                self.bump();
                self.finish_simple(StmtKind::Continue, start)
            }
            TokenKind::Return => {
                self.bump();
                self.finish_simple(StmtKind::Return, start)
            }
            TokenKind::Global => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    // A name only belongs to the `global` list if it is
                    // not the start of a new assignment (`, x = ...`).
                    let next_is_eq =
                        self.toks.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Eq);
                    match self.peek().clone() {
                        TokenKind::Ident(n) if !next_is_eq => {
                            self.bump();
                            names.push(n);
                        }
                        TokenKind::Comma => {
                            // Consume the comma only when it separates
                            // two global names; otherwise it terminates
                            // the statement (handled by finish_stmt).
                            let after = self.toks.get(self.pos + 1).map(|t| t.kind.clone());
                            let after2 = self.toks.get(self.pos + 2).map(|t| t.kind.clone());
                            match (after, after2) {
                                (Some(TokenKind::Ident(_)), Some(k)) if k != TokenKind::Eq => {
                                    self.bump();
                                }
                                _ => break,
                            }
                        }
                        _ => break,
                    }
                }
                if names.is_empty() {
                    return Err(self.err_expected("variable name after `global`"));
                }
                self.finish_simple(StmtKind::Global(names), start)
            }
            TokenKind::LBracket => self.bracket_stmt(start),
            _ => self.expr_or_assign_stmt(start),
        }
    }

    /// Consume the trailing `;` / `,` / newline of a simple statement
    /// and record whether MATLAB would echo the result.
    fn finish_stmt(&mut self, kind: StmtKind, start: Span) -> Result<Stmt> {
        let display = match self.peek() {
            TokenKind::Semi => {
                self.bump();
                false
            }
            TokenKind::Comma | TokenKind::Newline => {
                self.bump();
                true
            }
            TokenKind::Eof
            | TokenKind::End
            | TokenKind::Else
            | TokenKind::ElseIf
            | TokenKind::Function => true,
            _ => return Err(self.err_expected("`;`, `,`, or end of line")),
        };
        let span = start.to(self.toks[self.pos.saturating_sub(1)].span);
        Ok(Stmt {
            kind,
            span,
            display,
        })
    }

    fn finish_simple(&mut self, kind: StmtKind, start: Span) -> Result<Stmt> {
        self.finish_stmt(kind, start)
    }

    /// `[` at statement start: either a multi-assignment
    /// `[a, b] = f(x)` or a matrix-literal expression statement.
    fn bracket_stmt(&mut self, start: Span) -> Result<Stmt> {
        // Parse as an expression first; a following `=` retrofits it
        // into a multi-assign target list.
        let expr = self.expression()?;
        if self.at(&TokenKind::Eq) {
            self.bump();
            let ExprKind::Matrix(rows) = expr.kind else {
                return Err(self.err_expected("assignment target list"));
            };
            if rows.len() != 1 {
                return Err(FrontendError::new(
                    FrontendErrorKind::Unsupported(
                        "multi-assignment target list must be a single row".into(),
                    ),
                    expr.span,
                ));
            }
            let mut lhs = Vec::new();
            for e in rows.into_iter().next().unwrap() {
                lhs.push(self.expr_to_lvalue(e)?);
            }
            let rhs = self.expression()?;
            self.finish_stmt(StmtKind::MultiAssign { lhs, rhs }, start)
        } else {
            self.finish_stmt(StmtKind::Expr(expr), start)
        }
    }

    fn expr_to_lvalue(&self, e: Expr) -> Result<LValue> {
        match e.kind {
            ExprKind::Ident(name) => Ok(LValue {
                name,
                indices: None,
                span: e.span,
            }),
            ExprKind::Call { callee, args } | ExprKind::Index { base: callee, args } => {
                Ok(LValue {
                    name: callee,
                    indices: Some(args),
                    span: e.span,
                })
            }
            _ => Err(FrontendError::new(
                FrontendErrorKind::Expected {
                    expected: "assignable target (variable or indexed variable)".into(),
                    found: "expression".into(),
                },
                e.span,
            )),
        }
    }

    fn expr_or_assign_stmt(&mut self, start: Span) -> Result<Stmt> {
        let expr = self.expression()?;
        if self.at(&TokenKind::Eq) {
            self.bump();
            let lhs = self.expr_to_lvalue(expr)?;
            let rhs = self.expression()?;
            self.finish_stmt(StmtKind::Assign { lhs, rhs }, start)
        } else {
            self.finish_stmt(StmtKind::Expr(expr), start)
        }
    }

    fn if_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.expect(&TokenKind::If)?;
        let mut arms = Vec::new();
        let cond = self.expression()?;
        self.skip_separators();
        let body = self.block(&[TokenKind::ElseIf, TokenKind::Else, TokenKind::End])?;
        arms.push((cond, body));
        let mut else_body = None;
        loop {
            match self.peek() {
                TokenKind::ElseIf => {
                    self.bump();
                    let c = self.expression()?;
                    self.skip_separators();
                    let b = self.block(&[TokenKind::ElseIf, TokenKind::Else, TokenKind::End])?;
                    arms.push((c, b));
                }
                TokenKind::Else => {
                    self.bump();
                    self.skip_separators();
                    else_body = Some(self.block(&[TokenKind::End])?);
                    self.expect(&TokenKind::End)?;
                    break;
                }
                TokenKind::End => {
                    self.bump();
                    break;
                }
                _ => return Err(self.err_expected("`elseif`, `else`, or `end`")),
            }
        }
        self.finish_stmt(StmtKind::If { arms, else_body }, start)
    }

    fn while_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.expect(&TokenKind::While)?;
        let cond = self.expression()?;
        self.skip_separators();
        let body = self.block(&[TokenKind::End])?;
        self.expect(&TokenKind::End)?;
        self.finish_stmt(StmtKind::While { cond, body }, start)
    }

    fn for_stmt(&mut self, start: Span) -> Result<Stmt> {
        self.expect(&TokenKind::For)?;
        let TokenKind::Ident(var) = self.peek().clone() else {
            return Err(self.err_expected("loop variable"));
        };
        self.bump();
        self.expect(&TokenKind::Eq)?;
        let iter = self.expression()?;
        self.skip_separators();
        let body = self.block(&[TokenKind::End])?;
        self.expect(&TokenKind::End)?;
        self.finish_stmt(StmtKind::For { var, iter, body }, start)
    }

    /// Parse statements until one of `terminators` (not consumed).
    fn block(&mut self, terminators: &[TokenKind]) -> Result<Block> {
        let mut stmts = Block::new();
        self.skip_separators();
        while !terminators.contains(self.peek()) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err_expected("`end`"));
            }
            stmts.push(self.statement()?);
            self.skip_separators();
        }
        Ok(stmts)
    }

    fn function_def(&mut self) -> Result<Function> {
        let start = self.peek_span();
        self.expect(&TokenKind::Function)?;
        // Three header forms:
        //   function name(params)
        //   function out = name(params)
        //   function [o1, o2] = name(params)
        let mut outs = Vec::new();
        let name;
        match self.peek().clone() {
            TokenKind::LBracket => {
                self.bump();
                loop {
                    let TokenKind::Ident(o) = self.peek().clone() else {
                        return Err(self.err_expected("output variable name"));
                    };
                    self.bump();
                    outs.push(o);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Eq)?;
                let TokenKind::Ident(n) = self.peek().clone() else {
                    return Err(self.err_expected("function name"));
                };
                self.bump();
                name = n;
            }
            TokenKind::Ident(first) => {
                self.bump();
                if self.eat(&TokenKind::Eq) {
                    outs.push(first);
                    let TokenKind::Ident(n) = self.peek().clone() else {
                        return Err(self.err_expected("function name"));
                    };
                    self.bump();
                    name = n;
                } else {
                    name = first;
                }
            }
            _ => return Err(self.err_expected("function name")),
        }
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                loop {
                    let TokenKind::Ident(p) = self.peek().clone() else {
                        return Err(self.err_expected("parameter name"));
                    };
                    self.bump();
                    params.push(p);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.skip_separators();
        // Classic (pre-R2006) M-file functions have no closing `end`;
        // the body runs to the next `function` or end of file. We also
        // accept an explicit trailing `end`.
        let body = self.block(&[TokenKind::Function, TokenKind::Eof, TokenKind::End])?;
        if self.at(&TokenKind::End) {
            self.bump();
        }
        let span = start.to(self.toks[self.pos.saturating_sub(1)].span);
        Ok(Function {
            name,
            params,
            outs,
            body,
            span,
        })
    }

    // ---- expressions ----------------------------------------------------

    /// Entry point: lowest-precedence expression.
    pub fn expression(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::Pipe) {
            self.bump();
            self.skip_newlines_in_parens();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.at(&TokenKind::Amp) {
            self.bump();
            self.skip_newlines_in_parens();
            let rhs = self.cmp_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.range_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::LtEq => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::GtEq => BinOp::Ge,
                _ => break,
            };
            self.bump();
            self.skip_newlines_in_parens();
            let rhs = self.range_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    /// `a:b` or `a:b:c`. The colon in MATLAB binds looser than
    /// arithmetic but tighter than comparison.
    fn range_expr(&mut self) -> Result<Expr> {
        let first = self.add_expr()?;
        if !self.at(&TokenKind::Colon) {
            return Ok(first);
        }
        self.bump();
        let second = self.add_expr()?;
        if self.at(&TokenKind::Colon) {
            self.bump();
            let third = self.add_expr()?;
            let span = first.span.to(third.span);
            Ok(Expr::new(
                ExprKind::Range {
                    start: Box::new(first),
                    step: Some(Box::new(second)),
                    stop: Box::new(third),
                },
                span,
            ))
        } else {
            let span = first.span.to(second.span);
            Ok(Expr::new(
                ExprKind::Range {
                    start: Box::new(first),
                    step: None,
                    stop: Box::new(second),
                },
                span,
            ))
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            self.skip_newlines_in_parens();
            let rhs = self.mul_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Backslash => BinOp::LeftDiv,
                TokenKind::DotStar => BinOp::ElemMul,
                TokenKind::DotSlash => BinOp::ElemDiv,
                TokenKind::DotBackslash => BinOp::ElemLeftDiv,
                _ => break,
            };
            self.bump();
            self.skip_newlines_in_parens();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let start = self.peek_span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Plus => Some(UnOp::Plus),
            TokenKind::Not => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            let span = start.to(operand.span);
            Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            ))
        } else {
            self.pow_expr()
        }
    }

    fn pow_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.postfix_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Caret => BinOp::Pow,
                TokenKind::DotCaret => BinOp::ElemPow,
                _ => break,
            };
            self.bump();
            self.skip_newlines_in_parens();
            // MATLAB allows a unary sign directly after `^`: 2^-3.
            let rhs = if matches!(
                self.peek(),
                TokenKind::Minus | TokenKind::Plus | TokenKind::Not
            ) {
                self.unary_expr()?
            } else {
                self.postfix_expr()?
            };
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Transpose => {
                    let t = self.bump();
                    let span = e.span.to(t.span);
                    e = Expr::new(
                        ExprKind::Transpose {
                            op: TransposeOp::Conjugate,
                            operand: Box::new(e),
                        },
                        span,
                    );
                }
                TokenKind::DotTranspose => {
                    let t = self.bump();
                    let span = e.span.to(t.span);
                    e = Expr::new(
                        ExprKind::Transpose {
                            op: TransposeOp::Plain,
                            operand: Box::new(e),
                        },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Number { value, is_int } => {
                self.bump();
                Ok(Expr::new(ExprKind::Number { value, is_int }, span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::End if self.paren_depth > 0 => {
                self.bump();
                Ok(Expr::new(ExprKind::EndKeyword, span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    let end = self.toks[self.pos.saturating_sub(1)].span;
                    Ok(Expr::new(
                        ExprKind::Call { callee: name, args },
                        span.to(end),
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), span))
                }
            }
            TokenKind::LParen => {
                self.bump();
                self.paren_depth += 1;
                self.skip_newlines_in_parens();
                let inner = self.expression()?;
                self.skip_newlines_in_parens();
                self.paren_depth -= 1;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => self.matrix_literal(span),
            _ => Err(self.err_expected("an expression")),
        }
    }

    /// Arguments of `name(...)`: expressions, bare `:` slices, and
    /// `end` arithmetic are all permitted.
    fn call_args(&mut self) -> Result<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        self.paren_depth += 1;
        let mut args = Vec::new();
        self.skip_newlines_in_parens();
        if !self.at(&TokenKind::RParen) {
            loop {
                self.skip_newlines_in_parens();
                if self.at(&TokenKind::Colon)
                    && matches!(
                        self.toks[self.pos + 1].kind,
                        TokenKind::Comma | TokenKind::RParen
                    )
                {
                    let s = self.bump().span;
                    args.push(Expr::new(ExprKind::Colon, s));
                } else {
                    args.push(self.expression()?);
                }
                self.skip_newlines_in_parens();
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.paren_depth -= 1;
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    /// `[a, b; c, d]` — rows separated by `;` or newline, elements by
    /// commas (the paper's documented restriction).
    fn matrix_literal(&mut self, start: Span) -> Result<Expr> {
        self.expect(&TokenKind::LBracket)?;
        self.bracket_depth += 1;
        let mut rows: Vec<Vec<Expr>> = Vec::new();
        let mut row: Vec<Expr> = Vec::new();
        // Leading newlines inside the bracket are cosmetic.
        while self.at(&TokenKind::Newline) {
            self.bump();
        }
        loop {
            match self.peek() {
                TokenKind::RBracket => {
                    self.bump();
                    break;
                }
                TokenKind::Semi | TokenKind::Newline => {
                    self.bump();
                    // Collapse runs of row separators.
                    while matches!(self.peek(), TokenKind::Semi | TokenKind::Newline) {
                        self.bump();
                    }
                    if !row.is_empty() {
                        rows.push(std::mem::take(&mut row));
                    }
                }
                TokenKind::Comma => {
                    self.bump();
                }
                _ => {
                    if !row.is_empty() {
                        // Two expressions without an intervening comma:
                        // the white-space-delimiter form we reject.
                        let prev_comma = matches!(
                            self.toks[self.pos.saturating_sub(1)].kind,
                            TokenKind::Comma
                                | TokenKind::Semi
                                | TokenKind::Newline
                                | TokenKind::LBracket
                        );
                        if !prev_comma {
                            self.bracket_depth -= 1;
                            return Err(FrontendError::new(
                                FrontendErrorKind::Unsupported(
                                    "white-space-delimited matrix elements; separate elements \
                                     with commas (Otter restriction, paper §3)"
                                        .into(),
                                ),
                                self.peek_span(),
                            ));
                        }
                    }
                    row.push(self.expression()?);
                }
            }
        }
        self.bracket_depth -= 1;
        if !row.is_empty() {
            rows.push(row);
        }
        let end = self.toks[self.pos.saturating_sub(1)].span;
        Ok(Expr::new(ExprKind::Matrix(rows), start.to(end)))
    }
}

/// Parse a complete M-file from source text.
pub fn parse(src: &str) -> Result<SourceFile> {
    Parser::new(tokenize(src)?).parse_file()
}

/// Parse a single expression (used by tests and the REPL example).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = Parser::new(tokenize(src)?);
    let e = p.expression()?;
    if !matches!(
        p.peek(),
        TokenKind::Eof | TokenKind::Newline | TokenKind::Semi
    ) {
        return Err(p.err_expected("end of expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap()
    }

    fn script(src: &str) -> Block {
        parse(src).unwrap().script
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = expr("a + b * c");
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e.kind
        else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_pow_over_unary() {
        // MATLAB: -2^2 == -4.
        let e = expr("-2^2");
        let ExprKind::Unary {
            op: UnOp::Neg,
            operand,
        } = e.kind
        else {
            panic!("{e:?}")
        };
        assert!(matches!(
            operand.kind,
            ExprKind::Binary { op: BinOp::Pow, .. }
        ));
    }

    #[test]
    fn pow_allows_signed_exponent() {
        let e = expr("2^-3");
        let ExprKind::Binary {
            op: BinOp::Pow,
            rhs,
            ..
        } = e.kind
        else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Unary { op: UnOp::Neg, .. }));
    }

    #[test]
    fn range_binds_looser_than_arithmetic() {
        // 1:n-1 is 1:(n-1).
        let e = expr("1:n-1");
        let ExprKind::Range { stop, step, .. } = e.kind else {
            panic!("{e:?}")
        };
        assert!(step.is_none());
        assert!(matches!(stop.kind, ExprKind::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn three_part_range() {
        let e = expr("0:0.1:2*pi");
        let ExprKind::Range { step, stop, .. } = e.kind else {
            panic!("{e:?}")
        };
        assert!(step.is_some());
        assert!(matches!(stop.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_binds_looser_than_range() {
        // a < 1:5 parses as a < (1:5).
        let e = expr("a < 1:5");
        let ExprKind::Binary {
            op: BinOp::Lt, rhs, ..
        } = e.kind
        else {
            panic!("{e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Range { .. }));
    }

    #[test]
    fn call_and_index_are_uniform() {
        let e = expr("d(i, j)");
        let ExprKind::Call { callee, args } = e.kind else {
            panic!("{e:?}")
        };
        assert_eq!(callee, "d");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn colon_slice_argument() {
        let e = expr("a(:, j)");
        let ExprKind::Call { args, .. } = e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(args[0].kind, ExprKind::Colon));
        assert!(matches!(args[1].kind, ExprKind::Ident(_)));
    }

    #[test]
    fn end_in_index() {
        let e = expr("v(2:end)");
        let ExprKind::Call { args, .. } = e.kind else {
            panic!("{e:?}")
        };
        let ExprKind::Range { stop, .. } = &args[0].kind else {
            panic!()
        };
        assert!(matches!(stop.kind, ExprKind::EndKeyword));
    }

    #[test]
    fn end_arithmetic_in_index() {
        let e = expr("v(end-1)");
        let ExprKind::Call { args, .. } = e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(
            args[0].kind,
            ExprKind::Binary { op: BinOp::Sub, .. }
        ));
    }

    #[test]
    fn transpose_postfix() {
        let e = expr("a' * b");
        let ExprKind::Binary {
            op: BinOp::Mul,
            lhs,
            ..
        } = e.kind
        else {
            panic!("{e:?}")
        };
        assert!(matches!(
            lhs.kind,
            ExprKind::Transpose {
                op: TransposeOp::Conjugate,
                ..
            }
        ));
    }

    #[test]
    fn matrix_literal_rows() {
        let e = expr("[1, 2; 3, 4]");
        let ExprKind::Matrix(rows) = e.kind else {
            panic!("{e:?}")
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[1].len(), 2);
    }

    #[test]
    fn matrix_literal_newline_rows() {
        let e = expr("[1, 2\n3, 4]");
        let ExprKind::Matrix(rows) = e.kind else {
            panic!("{e:?}")
        };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn empty_matrix() {
        let e = expr("[]");
        let ExprKind::Matrix(rows) = e.kind else {
            panic!("{e:?}")
        };
        assert!(rows.is_empty());
    }

    #[test]
    fn whitespace_delimited_elements_rejected() {
        // The paper's documented restriction.
        let err = parse_expr("[1 2]").unwrap_err();
        assert!(
            matches!(err.kind, FrontendErrorKind::Unsupported(_)),
            "{err}"
        );
    }

    #[test]
    fn assignment_statement() {
        let s = script("x = a + 1;\n");
        assert_eq!(s.len(), 1);
        let StmtKind::Assign { lhs, .. } = &s[0].kind else {
            panic!("{s:?}")
        };
        assert_eq!(lhs.name, "x");
        assert!(!s[0].display);
    }

    #[test]
    fn display_flag_tracks_semicolon() {
        let s = script("x = 1\ny = 2;");
        assert!(s[0].display);
        assert!(!s[1].display);
    }

    #[test]
    fn indexed_assignment() {
        let s = script("a(i, j) = a(i, j) / b(j, i);");
        let StmtKind::Assign { lhs, .. } = &s[0].kind else {
            panic!("{s:?}")
        };
        assert_eq!(lhs.name, "a");
        assert_eq!(lhs.indices.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn multi_assignment() {
        let s = script("[q, r] = qr(a);");
        let StmtKind::MultiAssign { lhs, rhs } = &s[0].kind else {
            panic!("{s:?}")
        };
        assert_eq!(lhs.len(), 2);
        assert_eq!(lhs[0].name, "q");
        assert!(matches!(rhs.kind, ExprKind::Call { .. }));
    }

    #[test]
    fn if_elseif_else() {
        let s = script("if a < 1\nx = 1;\nelseif a < 2\nx = 2;\nelse\nx = 3;\nend");
        let StmtKind::If { arms, else_body } = &s[0].kind else {
            panic!("{s:?}")
        };
        assert_eq!(arms.len(), 2);
        assert!(else_body.is_some());
    }

    #[test]
    fn while_loop() {
        let s = script("while err > tol\nerr = err / 2;\nend");
        let StmtKind::While { body, .. } = &s[0].kind else {
            panic!("{s:?}")
        };
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn for_loop_over_range() {
        let s = script("for i = 1:n\ns = s + i;\nend");
        let StmtKind::For { var, iter, body } = &s[0].kind else {
            panic!("{s:?}")
        };
        assert_eq!(var, "i");
        assert!(matches!(iter.kind, ExprKind::Range { .. }));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn nested_loops() {
        let s = script("for i = 1:n\nfor j = 1:n\na(i, j) = i + j;\nend\nend");
        let StmtKind::For { body, .. } = &s[0].kind else {
            panic!("{s:?}")
        };
        assert!(matches!(body[0].kind, StmtKind::For { .. }));
    }

    #[test]
    fn function_file() {
        let f = parse("function [s] = trapz2(x, y)\ns = sum(x) + sum(y);\n").unwrap();
        assert!(f.is_function_file());
        let func = &f.functions[0];
        assert_eq!(func.name, "trapz2");
        assert_eq!(func.params, vec!["x", "y"]);
        assert_eq!(func.outs, vec!["s"]);
        assert_eq!(func.body.len(), 1);
    }

    #[test]
    fn function_single_out_no_brackets() {
        let f = parse("function y = square(x)\ny = x .* x;\n").unwrap();
        assert_eq!(f.functions[0].outs, vec!["y"]);
        assert_eq!(f.functions[0].name, "square");
    }

    #[test]
    fn function_no_outputs() {
        let f = parse("function show(x)\ndisp(x);\n").unwrap();
        assert!(f.functions[0].outs.is_empty());
        assert_eq!(f.functions[0].name, "show");
    }

    #[test]
    fn multiple_functions_per_file() {
        let f =
            parse("function y = f(x)\ny = g(x) + 1;\n\nfunction y = g(x)\ny = x * 2;\n").unwrap();
        assert_eq!(f.functions.len(), 2);
        assert_eq!(f.functions[1].name, "g");
    }

    #[test]
    fn statements_separated_by_commas() {
        let s = script("a = 1, b = 2");
        assert_eq!(s.len(), 2);
        assert!(s[0].display);
    }

    #[test]
    fn break_continue_return() {
        let s = script("for i = 1:10\nif i > 5\nbreak;\nend\ncontinue;\nend\nreturn;");
        assert!(matches!(s.last().unwrap().kind, StmtKind::Return));
    }

    #[test]
    fn global_declaration() {
        let s = script("global tol, x = tol;");
        let StmtKind::Global(names) = &s[0].kind else {
            panic!("{s:?}")
        };
        assert_eq!(names, &vec!["tol".to_string()]);
    }

    #[test]
    fn paper_example_statement_parses() {
        // From §3: a = b * c + d(i,j);
        let s = script("a = b * c + d(i,j);");
        let StmtKind::Assign { rhs, .. } = &s[0].kind else {
            panic!("{s:?}")
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            lhs,
            rhs: d,
        } = &rhs.kind
        else {
            panic!()
        };
        assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
        assert!(matches!(d.kind, ExprKind::Call { .. }));
    }

    #[test]
    fn missing_end_is_reported() {
        let err = parse("while x > 0\nx = x - 1;\n").unwrap_err();
        assert!(matches!(err.kind, FrontendErrorKind::Expected { .. }));
    }

    #[test]
    fn unbalanced_paren_is_reported() {
        assert!(parse_expr("(a + b").is_err());
    }

    #[test]
    fn error_spans_point_at_problem() {
        let err = parse("x = ;").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert_eq!(err.span.col, 5);
    }
}
