//! Human-readable IR dump, used by `--emit ir` style debugging and by
//! compiler tests that assert on program structure.

use crate::instr::*;
use std::fmt::Write;

/// Render a whole program.
pub fn program_to_string(p: &IrProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {{");
    for i in &p.main {
        write_instr(&mut out, i, 1);
    }
    let _ = writeln!(out, "}}");
    for f in p.functions.values() {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|(n, r)| format!("{n}: {}", rank_str(*r)))
            .collect();
        let outs: Vec<String> = f
            .outs
            .iter()
            .map(|(n, r)| format!("{n}: {}", rank_str(*r)))
            .collect();
        let _ = writeln!(
            out,
            "fn {}({}) -> ({}) {{",
            f.name,
            params.join(", "),
            outs.join(", ")
        );
        for i in &f.body {
            write_instr(&mut out, i, 1);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn rank_str(r: VarRank) -> &'static str {
    match r {
        VarRank::Scalar => "scalar",
        VarRank::Matrix => "matrix",
    }
}

/// Render one scalar expression.
pub fn sexpr_to_string(e: &SExpr) -> String {
    match e {
        SExpr::Const(v) => format!("{v}"),
        SExpr::Var(n) => n.clone(),
        SExpr::DimOf { var, sel } => {
            let f = match sel {
                DimSel::Rows => "rows",
                DimSel::Cols => "cols",
                DimSel::Length => "length",
                DimSel::Numel => "numel",
            };
            format!("{f}({var})")
        }
        SExpr::OwnElem => "ownelem".to_string(),
        SExpr::Neg(x) => format!("(-{})", sexpr_to_string(x)),
        SExpr::Not(x) => format!("(!{})", sexpr_to_string(x)),
        SExpr::Bin(op, a, b) => {
            format!(
                "({} {} {})",
                sexpr_to_string(a),
                op.c_symbol(),
                sexpr_to_string(b)
            )
        }
        SExpr::Call(f, args) => {
            let parts: Vec<String> = args.iter().map(sexpr_to_string).collect();
            format!("{}({})", f.c_name(), parts.join(", "))
        }
    }
}

/// Render one element-wise expression.
pub fn ewexpr_to_string(e: &EwExpr) -> String {
    match e {
        EwExpr::Mat(m) => format!("{m}[k]"),
        EwExpr::Scalar(s) => sexpr_to_string(s),
        EwExpr::Neg(x) => format!("(-{})", ewexpr_to_string(x)),
        EwExpr::Not(x) => format!("(!{})", ewexpr_to_string(x)),
        EwExpr::Bin(op, a, b) => match op {
            EwOp::Pow => format!("pow({}, {})", ewexpr_to_string(a), ewexpr_to_string(b)),
            _ => format!(
                "({} {} {})",
                ewexpr_to_string(a),
                op.c_symbol(),
                ewexpr_to_string(b)
            ),
        },
        EwExpr::Call(f, args) => {
            let parts: Vec<String> = args.iter().map(ewexpr_to_string).collect();
            format!("{}({})", f.c_name(), parts.join(", "))
        }
    }
}

/// Render one instruction at an indent level.
pub fn write_instr(out: &mut String, i: &Instr, indent: usize) {
    let pad = "  ".repeat(indent);
    match i {
        Instr::AssignScalar { dst, src } => {
            let _ = writeln!(out, "{pad}{dst} = {};", sexpr_to_string(src));
        }
        Instr::InitMatrix { dst, init } => {
            let desc = match init {
                MatInit::Zeros { rows, cols } => {
                    format!(
                        "zeros({}, {})",
                        sexpr_to_string(rows),
                        sexpr_to_string(cols)
                    )
                }
                MatInit::Ones { rows, cols } => {
                    format!("ones({}, {})", sexpr_to_string(rows), sexpr_to_string(cols))
                }
                MatInit::Eye { n } => format!("eye({})", sexpr_to_string(n)),
                MatInit::Rand { rows, cols } => {
                    format!("rand({}, {})", sexpr_to_string(rows), sexpr_to_string(cols))
                }
                MatInit::Range { start, step, stop } => format!(
                    "range({}, {}, {})",
                    sexpr_to_string(start),
                    sexpr_to_string(step),
                    sexpr_to_string(stop)
                ),
                MatInit::Literal { rows } => {
                    let rs: Vec<String> = rows
                        .iter()
                        .map(|r| {
                            let cells: Vec<String> = r.iter().map(sexpr_to_string).collect();
                            cells.join(", ")
                        })
                        .collect();
                    format!("[{}]", rs.join("; "))
                }
                MatInit::Linspace { a, b, n } => format!(
                    "linspace({}, {}, {})",
                    sexpr_to_string(a),
                    sexpr_to_string(b),
                    sexpr_to_string(n)
                ),
            };
            let _ = writeln!(out, "{pad}{dst} = {desc};");
        }
        Instr::CopyMatrix { dst, src } => {
            let _ = writeln!(out, "{pad}{dst} = copy({src});");
        }
        Instr::LoadFile { dst, path } => {
            let _ = writeln!(out, "{pad}{dst} = load('{path}');");
        }
        Instr::ElemWise { dst, expr } => {
            let _ = writeln!(out, "{pad}forall k: {dst}[k] = {};", ewexpr_to_string(expr));
        }
        Instr::MatMul { dst, a, b } => {
            let _ = writeln!(out, "{pad}{dst} = matmul({a}, {b});");
        }
        Instr::MatVec { dst, a, x } => {
            let _ = writeln!(out, "{pad}{dst} = matvec({a}, {x});");
        }
        Instr::Outer { dst, u, v } => {
            let _ = writeln!(out, "{pad}{dst} = outer({u}, {v});");
        }
        Instr::Transpose { dst, a } => {
            let _ = writeln!(out, "{pad}{dst} = transpose({a});");
        }
        Instr::BroadcastElem { dst, m, i, j } => match j {
            Some(j) => {
                let _ = writeln!(
                    out,
                    "{pad}{dst} = bcast({m}[{}, {}]);",
                    sexpr_to_string(i),
                    sexpr_to_string(j)
                );
            }
            None => {
                let _ = writeln!(out, "{pad}{dst} = bcast({m}[{}]);", sexpr_to_string(i));
            }
        },
        Instr::StoreElem { m, i, j, val } => match j {
            Some(j) => {
                let _ = writeln!(
                    out,
                    "{pad}if owner: {m}[{}, {}] = {};",
                    sexpr_to_string(i),
                    sexpr_to_string(j),
                    sexpr_to_string(val)
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{pad}if owner: {m}[{}] = {};",
                    sexpr_to_string(i),
                    sexpr_to_string(val)
                );
            }
        },
        Instr::Reduce { dst, op, m } => {
            let _ = writeln!(out, "{pad}{dst} = {}({m});", op.c_name());
        }
        Instr::Dot { dst, a, b } => {
            let _ = writeln!(out, "{pad}{dst} = dot({a}, {b});");
        }
        Instr::TrapzXY { dst, x, y } => {
            let _ = writeln!(out, "{pad}{dst} = trapz({x}, {y});");
        }
        Instr::MatMulEw {
            dst,
            a,
            b,
            tmp,
            expr,
        } => {
            let _ = writeln!(
                out,
                "{pad}fused: {tmp} = matmul({a}, {b}); forall k: {dst}[k] = {};",
                ewexpr_to_string(expr)
            );
        }
        Instr::MatVecEw {
            dst,
            a,
            x,
            tmp,
            expr,
        } => {
            let _ = writeln!(
                out,
                "{pad}fused: {tmp} = matvec({a}, {x}); forall k: {dst}[k] = {};",
                ewexpr_to_string(expr)
            );
        }
        Instr::ReduceEw { dst, op, tmp, expr } => {
            let _ = writeln!(
                out,
                "{pad}fused: forall k: {tmp}[k] = {}; {dst} = {}({tmp});",
                ewexpr_to_string(expr),
                op.c_name()
            );
        }
        Instr::ColReduce { dst, op, m } => {
            let name = match op {
                ColRedOp::Sum => "colsum",
                ColRedOp::Mean => "colmean",
                ColRedOp::Prod => "colprod",
                ColRedOp::Max => "colmax",
                ColRedOp::Min => "colmin",
                ColRedOp::Any => "colany",
                ColRedOp::All => "colall",
            };
            let _ = writeln!(out, "{pad}{dst} = {name}({m});");
        }
        Instr::Shift { dst, v, k } => {
            let _ = writeln!(out, "{pad}{dst} = shift({v}, {});", sexpr_to_string(k));
        }
        Instr::ExtractRow { dst, m, i } => {
            let _ = writeln!(out, "{pad}{dst} = {m}[{}, :];", sexpr_to_string(i));
        }
        Instr::ExtractCol { dst, m, j } => {
            let _ = writeln!(out, "{pad}{dst} = {m}[:, {}];", sexpr_to_string(j));
        }
        Instr::AssignRow { m, i, v } => {
            let _ = writeln!(out, "{pad}{m}[{}, :] = {v};", sexpr_to_string(i));
        }
        Instr::AssignCol { m, j, v } => {
            let _ = writeln!(out, "{pad}{m}[:, {}] = {v};", sexpr_to_string(j));
        }
        Instr::ExtractRange { dst, v, lo, hi } => {
            let _ = writeln!(
                out,
                "{pad}{dst} = {v}[{}..{}];",
                sexpr_to_string(lo),
                sexpr_to_string(hi)
            );
        }
        Instr::ExtractStrided {
            dst,
            v,
            lo,
            step,
            hi,
        } => {
            let _ = writeln!(
                out,
                "{pad}{dst} = {v}[{}..{}..{}];",
                sexpr_to_string(lo),
                sexpr_to_string(step),
                sexpr_to_string(hi)
            );
        }
        Instr::FillRow { m, i, val } => {
            let _ = writeln!(
                out,
                "{pad}{m}[{}, :] = fill {};",
                sexpr_to_string(i),
                sexpr_to_string(val)
            );
        }
        Instr::FillCol { m, j, val } => {
            let _ = writeln!(
                out,
                "{pad}{m}[:, {}] = fill {};",
                sexpr_to_string(j),
                sexpr_to_string(val)
            );
        }
        Instr::FillRange { m, lo, hi, val } => {
            let _ = writeln!(
                out,
                "{pad}{m}[{}..{}] = fill {};",
                sexpr_to_string(lo),
                sexpr_to_string(hi),
                sexpr_to_string(val)
            );
        }
        Instr::AssignRange { m, lo, hi, v } => {
            let _ = writeln!(
                out,
                "{pad}{m}[{}..{}] = {v};",
                sexpr_to_string(lo),
                sexpr_to_string(hi)
            );
        }
        Instr::Free { name } => {
            let _ = writeln!(out, "{pad}free {name};");
        }
        Instr::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}if {} {{", sexpr_to_string(cond));
            for s in then_body {
                write_instr(out, s, indent + 1);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    write_instr(out, s, indent + 1);
                }
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Instr::While { pre, cond, body } => {
            let _ = writeln!(out, "{pad}while {{");
            for s in pre {
                write_instr(out, s, indent + 1);
            }
            let _ = writeln!(out, "{pad}}} {} {{", sexpr_to_string(cond));
            for s in body {
                write_instr(out, s, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Instr::For {
            var,
            start,
            step,
            stop,
            body,
        } => {
            let _ = writeln!(
                out,
                "{pad}for {var} = {} : {} : {} {{",
                sexpr_to_string(start),
                sexpr_to_string(step),
                sexpr_to_string(stop)
            );
            for s in body {
                write_instr(out, s, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Instr::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
        Instr::Continue => {
            let _ = writeln!(out, "{pad}continue;");
        }
        Instr::Call { fun, args, outs } => {
            let a: Vec<String> = args
                .iter()
                .map(|x| match x {
                    Arg::Scalar(s) => sexpr_to_string(s),
                    Arg::Matrix(m) => m.clone(),
                })
                .collect();
            let _ = writeln!(out, "{pad}[{}] = {fun}({});", outs.join(", "), a.join(", "));
        }
        Instr::Print { name, target } => match target {
            PrintTarget::Scalar(s) => {
                let _ = writeln!(out, "{pad}print {name} = {};", sexpr_to_string(s));
            }
            PrintTarget::Matrix(m) => {
                let _ = writeln!(out, "{pad}print {name} = {m};");
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_example_shape() {
        // a = b * c + d(i, j) after rewriting: three statements.
        let prog = IrProgram {
            main: vec![
                Instr::MatMul {
                    dst: "ML_tmp1".into(),
                    a: "b".into(),
                    b: "c".into(),
                },
                Instr::BroadcastElem {
                    dst: "ML_tmp2".into(),
                    m: "d".into(),
                    i: SExpr::var("i"),
                    j: Some(SExpr::var("j")),
                },
                Instr::ElemWise {
                    dst: "a".into(),
                    expr: EwExpr::bin(
                        EwOp::Add,
                        EwExpr::mat("ML_tmp1"),
                        EwExpr::Scalar(SExpr::var("ML_tmp2")),
                    ),
                },
            ],
            ..Default::default()
        };
        let s = program_to_string(&prog);
        assert!(s.contains("ML_tmp1 = matmul(b, c);"), "{s}");
        assert!(s.contains("ML_tmp2 = bcast(d[i, j]);"), "{s}");
        assert!(
            s.contains("forall k: a[k] = (ML_tmp1[k] + ML_tmp2);"),
            "{s}"
        );
    }

    #[test]
    fn renders_control_flow() {
        let prog = IrProgram {
            main: vec![Instr::While {
                pre: vec![Instr::Reduce {
                    dst: "t".into(),
                    op: RedOp::Norm2,
                    m: "r".into(),
                }],
                cond: SExpr::bin(SBinOp::Gt, SExpr::var("t"), SExpr::c(1e-6)),
                body: vec![Instr::Break],
            }],
            ..Default::default()
        };
        let s = program_to_string(&prog);
        assert!(s.contains("t = ML_norm2(r);"), "{s}");
        assert!(s.contains("break;"), "{s}");
    }

    #[test]
    fn renders_functions_with_ranks() {
        let mut funcs = std::collections::BTreeMap::new();
        funcs.insert(
            "sq".to_string(),
            IrFunction {
                name: "sq".into(),
                params: vec![("x".into(), VarRank::Matrix)],
                outs: vec![("y".into(), VarRank::Matrix)],
                body: vec![Instr::ElemWise {
                    dst: "y".into(),
                    expr: EwExpr::bin(EwOp::Mul, EwExpr::mat("x"), EwExpr::mat("x")),
                }],
                ..Default::default()
            },
        );
        let prog = IrProgram {
            functions: funcs,
            ..Default::default()
        };
        let s = program_to_string(&prog);
        assert!(s.contains("fn sq(x: matrix) -> (y: matrix)"), "{s}");
    }
}
