//! Hand-written scanner for the MATLAB subset.
//!
//! Corresponds to the `lex` specification of the paper's pass 1, with
//! the same documented restriction: inside matrix literals, elements
//! must be separated by commas (white-space separation is rejected by
//! the parser, not silently misread).
//!
//! MATLAB's one genuinely context-sensitive token is `'`, which is a
//! postfix transpose after a value-producing token and a string
//! delimiter everywhere else; [`TokenKind::allows_postfix_quote`]
//! encodes the rule.

use crate::error::{FrontendError, FrontendErrorKind, Result};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Scanner state over a single source buffer.
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Kind of the previous significant token, for `'` disambiguation.
    prev: Option<TokenKind>,
}

impl<'src> Lexer<'src> {
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            prev: None,
        }
    }

    /// Scan the entire buffer into a token vector ending in `Eof`.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            // Collapse runs of newlines into one; a leading newline
            // carries no information either.
            let redundant_newline = tok.kind == TokenKind::Newline
                && matches!(
                    out.last().map(|t: &Token| &t.kind),
                    None | Some(TokenKind::Newline)
                );
            if !redundant_newline {
                out.push(tok);
            }
            if done {
                break;
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span::new(start as u32, self.pos as u32, line, col)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'%') => {
                    // Comment to end of line; the newline itself is
                    // still significant and handled by next_token.
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'.') if self.bytes[self.pos..].starts_with(b"...") => {
                    // Line continuation: swallow through the newline.
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia();
        let (start, line, col) = (self.pos, self.line, self.col);
        let Some(b) = self.peek() else {
            return Ok(self.emit(TokenKind::Eof, start, line, col));
        };
        let kind = match b {
            b'\n' => {
                self.bump();
                TokenKind::Newline
            }
            b'0'..=b'9' => self.number(start, line, col)?,
            b'.' => {
                if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    self.number(start, line, col)?
                } else {
                    self.bump();
                    match self.peek() {
                        Some(b'*') => {
                            self.bump();
                            TokenKind::DotStar
                        }
                        Some(b'/') => {
                            self.bump();
                            TokenKind::DotSlash
                        }
                        Some(b'\\') => {
                            self.bump();
                            TokenKind::DotBackslash
                        }
                        Some(b'^') => {
                            self.bump();
                            TokenKind::DotCaret
                        }
                        Some(b'\'') => {
                            self.bump();
                            TokenKind::DotTranspose
                        }
                        _ => {
                            return Err(FrontendError::new(
                                FrontendErrorKind::UnexpectedChar('.'),
                                self.span_from(start, line, col),
                            ))
                        }
                    }
                }
            }
            b'\'' => {
                if self.prev.as_ref().is_some_and(|p| p.allows_postfix_quote()) {
                    self.bump();
                    TokenKind::Transpose
                } else {
                    self.string(start, line, col)?
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'\\' => {
                self.bump();
                TokenKind::Backslash
            }
            b'^' => {
                self.bump();
                TokenKind::Caret
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Eq
                }
            }
            b'~' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Not
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::LtEq
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                self.bump();
                TokenKind::Amp
            }
            b'|' => {
                self.bump();
                TokenKind::Pipe
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            other => {
                self.bump();
                return Err(FrontendError::new(
                    FrontendErrorKind::UnexpectedChar(other as char),
                    self.span_from(start, line, col),
                ));
            }
        };
        Ok(self.emit(kind, start, line, col))
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) -> Token {
        self.prev = Some(kind.clone());
        Token {
            kind,
            span: self.span_from(start, line, col),
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn number(&mut self, start: usize, line: u32, col: u32) -> Result<TokenKind> {
        let mut saw_dot = false;
        let mut saw_exp = false;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && !self.bytes[self.pos..].starts_with(b"...") {
            // A `.` directly followed by an operator char is an
            // element-wise operator, not a decimal point: `2.*x`.
            let next = self.peek2();
            if !matches!(
                next,
                Some(b'*') | Some(b'/') | Some(b'\\') | Some(b'^') | Some(b'\'')
            ) {
                saw_dot = true;
                self.bump();
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            // Only take the exponent if it is well-formed; `2e` alone
            // would otherwise swallow an identifier.
            let save = (self.pos, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                saw_exp = true;
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                (self.pos, self.line, self.col) = save;
            }
        }
        let text = &self.src[start..self.pos];
        let value: f64 = text.parse().map_err(|_| {
            FrontendError::new(
                FrontendErrorKind::BadNumber(text.to_string()),
                self.span_from(start, line, col),
            )
        })?;
        Ok(TokenKind::Number {
            value,
            is_int: !saw_dot && !saw_exp,
        })
    }

    fn string(&mut self, start: usize, line: u32, col: u32) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(FrontendError::new(
                        FrontendErrorKind::UnterminatedString,
                        self.span_from(start, line, col),
                    ))
                }
                Some(b'\'') => {
                    self.bump();
                    if self.peek() == Some(b'\'') {
                        // `''` is an escaped quote inside the string.
                        self.bump();
                        text.push('\'');
                    } else {
                        break;
                    }
                }
                Some(b) => {
                    self.bump();
                    text.push(b as char);
                }
            }
        }
        Ok(TokenKind::Str(text))
    }
}

/// Scan `src` into tokens. Convenience wrapper over [`Lexer`].
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn scans_simple_assignment() {
        assert_eq!(
            kinds("x = 3;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Number {
                    value: 3.0,
                    is_int: true
                },
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn scans_elementwise_operators() {
        assert_eq!(
            kinds("a .* b ./ c .^ d .\\ e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::DotStar,
                TokenKind::Ident("b".into()),
                TokenKind::DotSlash,
                TokenKind::Ident("c".into()),
                TokenKind::DotCaret,
                TokenKind::Ident("d".into()),
                TokenKind::DotBackslash,
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn number_forms() {
        assert_eq!(
            kinds("2"),
            vec![
                TokenKind::Number {
                    value: 2.0,
                    is_int: true
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("2.5"),
            vec![
                TokenKind::Number {
                    value: 2.5,
                    is_int: false
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds(".5"),
            vec![
                TokenKind::Number {
                    value: 0.5,
                    is_int: false
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("1e3"),
            vec![
                TokenKind::Number {
                    value: 1000.0,
                    is_int: false
                },
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("1.5e-2"),
            vec![
                TokenKind::Number {
                    value: 0.015,
                    is_int: false
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn integer_dot_star_is_elementwise() {
        // `2.*x` must scan as 2 .* x, not (2.) * x.
        assert_eq!(
            kinds("2.*x"),
            vec![
                TokenKind::Number {
                    value: 2.0,
                    is_int: true
                },
                TokenKind::DotStar,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn trailing_dot_number() {
        assert_eq!(
            kinds("2. + 1"),
            vec![
                TokenKind::Number {
                    value: 2.0,
                    is_int: false
                },
                TokenKind::Plus,
                TokenKind::Number {
                    value: 1.0,
                    is_int: true
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn exponent_without_digits_is_ident_suffix() {
        assert_eq!(
            kinds("2e"),
            vec![
                TokenKind::Number {
                    value: 2.0,
                    is_int: true
                },
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn transpose_vs_string() {
        // After an identifier, `'` is transpose.
        assert_eq!(
            kinds("a'"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Transpose,
                TokenKind::Eof
            ]
        );
        // After `=`, `'` starts a string.
        assert_eq!(
            kinds("x = 'hi'"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Str("hi".into()),
                TokenKind::Eof
            ]
        );
        // After `)`, transpose.
        assert_eq!(
            kinds("f(x)'"),
            vec![
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Transpose,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn double_transpose_chains() {
        assert_eq!(
            kinds("a''"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Transpose,
                TokenKind::Transpose,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dot_transpose() {
        assert_eq!(
            kinds("a.'"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::DotTranspose,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_with_escaped_quote() {
        assert_eq!(
            kinds("x = 'it''s'"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Str("it's".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = tokenize("x = 'oops").unwrap_err();
        assert_eq!(err.kind, FrontendErrorKind::UnterminatedString);
        let err = tokenize("x = 'oops\ny = 1").unwrap_err();
        assert_eq!(err.kind, FrontendErrorKind::UnterminatedString);
    }

    #[test]
    fn comments_are_skipped_but_newline_kept() {
        assert_eq!(
            kinds("x = 1 % set x\ny = 2"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Number {
                    value: 1.0,
                    is_int: true
                },
                TokenKind::Newline,
                TokenKind::Ident("y".into()),
                TokenKind::Eq,
                TokenKind::Number {
                    value: 2.0,
                    is_int: true
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn continuation_joins_lines() {
        assert_eq!(
            kinds("x = 1 + ...\n 2"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Number {
                    value: 1.0,
                    is_int: true
                },
                TokenKind::Plus,
                TokenKind::Number {
                    value: 2.0,
                    is_int: true
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn newline_runs_collapse() {
        assert_eq!(
            kinds("\n\n\nx\n\n\ny\n\n"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Newline,
                TokenKind::Ident("y".into()),
                TokenKind::Newline,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b ~= c >= d == e < f > g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LtEq,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Ident("c".into()),
                TokenKind::GtEq,
                TokenKind::Ident("d".into()),
                TokenKind::EqEq,
                TokenKind::Ident("e".into()),
                TokenKind::Lt,
                TokenKind::Ident("f".into()),
                TokenKind::Gt,
                TokenKind::Ident("g".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character_reported_with_position() {
        let err = tokenize("x = @").unwrap_err();
        assert_eq!(err.kind, FrontendErrorKind::UnexpectedChar('@'));
        assert_eq!(err.span.line, 1);
        assert_eq!(err.span.col, 5);
    }

    #[test]
    fn spans_track_lines() {
        let toks = tokenize("a\nbb\n ccc").unwrap();
        let cc = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("ccc".into()))
            .unwrap();
        assert_eq!(cc.span.line, 3);
        assert_eq!(cc.span.col, 2);
    }

    #[test]
    fn keywords_scanned() {
        assert_eq!(
            kinds("for i = 1"),
            vec![
                TokenKind::For,
                TokenKind::Ident("i".into()),
                TokenKind::Eq,
                TokenKind::Number {
                    value: 1.0,
                    is_int: true
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn end_then_transpose() {
        // `end` produces a value in index context, so `'` after it is
        // transpose: a(end)' — contrived but legal.
        assert_eq!(
            kinds("a(end)'"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LParen,
                TokenKind::End,
                TokenKind::RParen,
                TokenKind::Transpose,
                TokenKind::Eof
            ]
        );
    }
}
