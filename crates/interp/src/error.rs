//! Interpreter diagnostics.

use otter_frontend::Span;
use std::fmt;

/// A run-time error raised while interpreting a script.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpError {
    pub message: String,
    pub span: Span,
}

impl InterpError {
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        InterpError {
            message: message.into(),
            span,
        }
    }

    /// Error with no useful location.
    pub fn nowhere(message: impl Into<String>) -> Self {
        InterpError {
            message: message.into(),
            span: Span::DUMMY,
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_dummy() {
            write!(f, "run-time error: {}", self.message)
        } else {
            write!(f, "run-time error at {}: {}", self.span, self.message)
        }
    }
}

impl std::error::Error for InterpError {}

impl From<InterpError> for otter_frontend::Diagnostic {
    fn from(e: InterpError) -> Self {
        otter_frontend::Diagnostic::new("execution", e.message).with_span(e.span)
    }
}

pub type Result<T> = std::result::Result<T, InterpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_span() {
        let e = InterpError::new("undefined variable `x`", Span::new(0, 1, 3, 2));
        assert_eq!(
            e.to_string(),
            "run-time error at 3:2: undefined variable `x`"
        );
        let e = InterpError::nowhere("boom");
        assert_eq!(e.to_string(), "run-time error: boom");
    }
}
