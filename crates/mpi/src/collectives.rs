//! MPI-style collective operations over [`Comm`], built from
//! point-to-point messages. Every rooted collective is parameterized
//! by a [`CollectiveAlgo`]: the binomial-tree schedules a 1998 MPICH
//! would use (`O(log p)` latency terms — the figures' speedup shapes
//! depend on this), or the naive linear schedules a first-cut run-time
//! library might have shipped (`O(p)`), kept for the collectives
//! ablation.
//!
//! Every collective is fallible: a dead or misbehaving peer surfaces
//! as a [`CommError`] on the ranks that notice, not as a panic inside
//! the rank thread.

use crate::comm::Comm;
use crate::error::CommError;
use otter_trace::EventKind;

/// Message schedule for the rooted collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollectiveAlgo {
    /// Binomial tree: `⌈log₂ p⌉` rounds.
    #[default]
    Tree,
    /// Root talks to every rank in turn: `O(p)` on the root's path.
    Linear,
}

impl CollectiveAlgo {
    /// Stable lowercase name, used in trace events and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveAlgo::Tree => "tree",
            CollectiveAlgo::Linear => "linear",
        }
    }
}

/// Reduction operators supported by `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    Prod,
    Max,
    Min,
}

impl ReduceOp {
    /// Apply the operator element-wise, accumulating `src` into `dst`.
    pub fn fold(self, dst: &mut [f64], src: &[f64]) {
        assert_eq!(dst.len(), src.len(), "reduction buffers differ in length");
        match self {
            ReduceOp::Sum => dst.iter_mut().zip(src).for_each(|(d, s)| *d += s),
            ReduceOp::Prod => dst.iter_mut().zip(src).for_each(|(d, s)| *d *= s),
            ReduceOp::Max => dst.iter_mut().zip(src).for_each(|(d, s)| *d = d.max(*s)),
            ReduceOp::Min => dst.iter_mut().zip(src).for_each(|(d, s)| *d = d.min(*s)),
        }
    }

    /// Identity element of the operator.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    /// Stable lowercase name, used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Prod => "prod",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        }
    }
}

impl Comm {
    /// Broadcast `data` from `root` to every rank with an explicit
    /// schedule; returns the data on all ranks.
    pub fn broadcast_with(
        &mut self,
        root: usize,
        data: &[f64],
        algo: CollectiveAlgo,
    ) -> Result<Vec<f64>, CommError> {
        let t0 = self.clock();
        let out = match algo {
            CollectiveAlgo::Tree => self.broadcast_tree(root, data)?,
            CollectiveAlgo::Linear => self.broadcast_lin(root, data)?,
        };
        self.emit_span(
            EventKind::Collective {
                name: "broadcast",
                algo: algo.label(),
                op: None,
            },
            t0,
        );
        self.note_collective("broadcast", algo.label(), t0);
        Ok(out)
    }

    /// Broadcast `data` from `root` using this endpoint's configured
    /// schedule ([`Comm::collective_algo`], tree by default).
    pub fn broadcast(&mut self, root: usize, data: &[f64]) -> Result<Vec<f64>, CommError> {
        self.broadcast_with(root, data, self.collective_algo())
    }

    /// Broadcast a single scalar from `root`.
    pub fn broadcast_scalar(&mut self, root: usize, v: f64) -> Result<f64, CommError> {
        Ok(self.broadcast(root, &[v])?[0])
    }

    /// Binomial tree: round `k` has up to `2^k` transfers in flight
    /// (passed as the fabric-sharing hint).
    fn broadcast_tree(&mut self, root: usize, data: &[f64]) -> Result<Vec<f64>, CommError> {
        let p = self.size();
        self.check_root(root, "broadcast root")?;
        if p == 1 {
            return Ok(data.to_vec());
        }
        // Work in a root-relative rank space so any root works.
        let vrank = (self.rank() + p - root) % p;
        let mut have: Option<Vec<f64>> = if vrank == 0 {
            Some(data.to_vec())
        } else {
            None
        };
        let rounds = p.next_power_of_two().trailing_zeros();
        for k in 0..rounds {
            let stride = 1usize << k;
            let stage_width = stride.min(p - stride); // transfers this round
            if vrank < stride {
                // This rank already has the data; it may need to send.
                let peer = vrank + stride;
                if peer < p {
                    let abs = (peer + root) % p;
                    let payload = have.as_ref().expect("tree invariant: holder has data");
                    let payload = payload.clone();
                    self.send_concurrent(abs, &payload, stage_width)?;
                }
            } else if vrank < stride * 2 {
                let peer = vrank - stride;
                let abs = (peer + root) % p;
                have = Some(self.recv(abs)?);
            }
        }
        Ok(have.expect("broadcast delivered to every rank"))
    }

    /// Linear schedule: the root sends to every other rank in turn.
    fn broadcast_lin(&mut self, root: usize, data: &[f64]) -> Result<Vec<f64>, CommError> {
        let p = self.size();
        self.check_root(root, "broadcast root")?;
        if self.rank() == root {
            for r in 0..p {
                if r != root {
                    self.send(r, data)?;
                }
            }
            Ok(data.to_vec())
        } else {
            self.recv(root)
        }
    }

    /// Reduce `data` element-wise with `op` onto `root` with an
    /// explicit schedule. Non-root ranks get `None`.
    pub fn reduce_with(
        &mut self,
        root: usize,
        data: &[f64],
        op: ReduceOp,
        algo: CollectiveAlgo,
    ) -> Result<Option<Vec<f64>>, CommError> {
        let t0 = self.clock();
        let out = match algo {
            CollectiveAlgo::Tree => self.reduce_tree(root, data, op)?,
            CollectiveAlgo::Linear => self.reduce_lin(root, data, op)?,
        };
        self.emit_span(
            EventKind::Collective {
                name: "reduce",
                algo: algo.label(),
                op: Some(op.label()),
            },
            t0,
        );
        self.note_collective("reduce", algo.label(), t0);
        Ok(out)
    }

    /// Reduce onto `root` using this endpoint's configured schedule.
    pub fn reduce(
        &mut self,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>, CommError> {
        self.reduce_with(root, data, op, self.collective_algo())
    }

    /// Mirror image of the broadcast tree: fold up, largest stride
    /// first.
    fn reduce_tree(
        &mut self,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>, CommError> {
        let p = self.size();
        self.check_root(root, "reduce root")?;
        if p == 1 {
            return Ok(Some(data.to_vec()));
        }
        let vrank = (self.rank() + p - root) % p;
        let mut acc = data.to_vec();
        let rounds = p.next_power_of_two().trailing_zeros();
        for k in (0..rounds).rev() {
            let stride = 1usize << k;
            let stage_width = stride.min(p.saturating_sub(stride));
            if vrank < stride {
                let peer = vrank + stride;
                if peer < p {
                    let abs = (peer + root) % p;
                    let incoming = self.recv(abs)?;
                    op.fold(&mut acc, &incoming);
                    // Charge the fold as compute: one op per element.
                    self.compute(incoming.len() as f64);
                }
            } else if vrank < stride * 2 {
                let peer = vrank - stride;
                let abs = (peer + root) % p;
                let payload = acc.clone();
                self.send_concurrent(abs, &payload, stage_width)?;
            }
        }
        Ok(if vrank == 0 { Some(acc) } else { None })
    }

    /// Linear schedule: every rank sends to the root, which folds in
    /// rank order. Deterministic and `O(p)` on the root.
    fn reduce_lin(
        &mut self,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>, CommError> {
        let p = self.size();
        self.check_root(root, "reduce root")?;
        if self.rank() == root {
            let mut acc = data.to_vec();
            for r in 0..p {
                if r != root {
                    let incoming = self.recv(r)?;
                    op.fold(&mut acc, &incoming);
                    self.compute(incoming.len() as f64);
                }
            }
            Ok(Some(acc))
        } else {
            self.send(root, data)?;
            Ok(None)
        }
    }

    /// Reduce-to-all with an explicit schedule: reduce onto rank 0,
    /// then broadcast the result. (MPICH's small-message allreduce did
    /// exactly this.)
    pub fn allreduce_with(
        &mut self,
        data: &[f64],
        op: ReduceOp,
        algo: CollectiveAlgo,
    ) -> Result<Vec<f64>, CommError> {
        let t0 = self.clock();
        let partial = self.reduce_with(0, data, op, algo)?;
        let out = match partial {
            Some(v) => self.broadcast_with(0, &v, algo)?,
            None => self.broadcast_with(0, &[], algo)?,
        };
        self.emit_span(
            EventKind::Collective {
                name: "allreduce",
                algo: algo.label(),
                op: Some(op.label()),
            },
            t0,
        );
        self.note_collective("allreduce", algo.label(), t0);
        Ok(out)
    }

    /// Reduce-to-all using this endpoint's configured schedule.
    pub fn allreduce(&mut self, data: &[f64], op: ReduceOp) -> Result<Vec<f64>, CommError> {
        self.allreduce_with(data, op, self.collective_algo())
    }

    /// Scalar all-reduce convenience.
    pub fn allreduce_scalar(&mut self, v: f64, op: ReduceOp) -> Result<f64, CommError> {
        Ok(self.allreduce(&[v], op)?[0])
    }

    /// Gather variable-length contributions onto `root`, concatenated
    /// in rank order. Non-root ranks get `None`. Always linear — the
    /// payloads differ per rank so a tree saves little, and gather in
    /// the generated code is I/O-bound anyway (paper §3 assumption 5:
    /// "one processor coordinates all I/O").
    pub fn gather(
        &mut self,
        root: usize,
        data: &[f64],
    ) -> Result<Option<Vec<Vec<f64>>>, CommError> {
        let p = self.size();
        self.check_root(root, "gather root")?;
        let t0 = self.clock();
        let out = if self.rank() == root {
            let mut parts: Vec<Vec<f64>> = Vec::with_capacity(p);
            for r in 0..p {
                if r == root {
                    parts.push(data.to_vec());
                } else {
                    parts.push(self.recv(r)?);
                }
            }
            Some(parts)
        } else {
            self.send(root, data)?;
            None
        };
        self.emit_span(
            EventKind::Collective {
                name: "gather",
                algo: CollectiveAlgo::Linear.label(),
                op: None,
            },
            t0,
        );
        self.note_collective("gather", CollectiveAlgo::Linear.label(), t0);
        Ok(out)
    }

    /// Gather everyone's contribution to every rank (gather + bcast of
    /// the concatenation, with per-part lengths preserved).
    pub fn allgather(&mut self, data: &[f64]) -> Result<Vec<Vec<f64>>, CommError> {
        let p = self.size();
        if p == 1 {
            return Ok(vec![data.to_vec()]);
        }
        let t0 = self.clock();
        let gathered = self.gather(0, data)?;
        // Flatten with a length header so the broadcast is one message.
        let flat = match gathered {
            Some(parts) => {
                let mut flat: Vec<f64> = Vec::new();
                flat.push(parts.len() as f64);
                for p in &parts {
                    flat.push(p.len() as f64);
                }
                for p in &parts {
                    flat.extend_from_slice(p);
                }
                self.broadcast(0, &flat)?
            }
            None => self.broadcast(0, &[])?,
        };
        let nparts = flat[0] as usize;
        let mut lens = Vec::with_capacity(nparts);
        for i in 0..nparts {
            lens.push(flat[1 + i] as usize);
        }
        let mut out = Vec::with_capacity(nparts);
        let mut off = 1 + nparts;
        for len in lens {
            out.push(flat[off..off + len].to_vec());
            off += len;
        }
        self.emit_span(
            EventKind::Collective {
                name: "allgather",
                algo: self.collective_algo().label(),
                op: None,
            },
            t0,
        );
        self.note_collective("allgather", self.collective_algo().label(), t0);
        Ok(out)
    }

    /// Scatter `parts[r]` to rank `r` from `root`; returns this rank's
    /// part. `parts` is only inspected on the root.
    pub fn scatter(&mut self, root: usize, parts: &[Vec<f64>]) -> Result<Vec<f64>, CommError> {
        let p = self.size();
        self.check_root(root, "scatter root")?;
        let t0 = self.clock();
        let out = if self.rank() == root {
            assert_eq!(parts.len(), p, "scatter needs one part per rank");
            for (r, part) in parts.iter().enumerate() {
                if r != root {
                    let payload = part.clone();
                    self.send(r, &payload)?;
                }
            }
            parts[root].clone()
        } else {
            self.recv(root)?
        };
        self.emit_span(
            EventKind::Collective {
                name: "scatter",
                algo: CollectiveAlgo::Linear.label(),
                op: None,
            },
            t0,
        );
        self.note_collective("scatter", CollectiveAlgo::Linear.label(), t0);
        Ok(out)
    }

    /// Barrier: zero-byte allreduce.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let t0 = self.clock();
        self.allreduce(&[], ReduceOp::Sum)?;
        self.emit_span(EventKind::Barrier, t0);
        self.note_collective("barrier", self.collective_algo().label(), t0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_spmd, run_spmd_with, SpmdOptions};
    use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster};

    #[test]
    fn broadcast_from_every_root() {
        for algo in [CollectiveAlgo::Tree, CollectiveAlgo::Linear] {
            for p in [1, 2, 3, 4, 5, 8] {
                for root in 0..p {
                    let res = run_spmd(&meiko_cs2(), p, |c| {
                        let data = if c.rank() == root {
                            vec![7.0, 8.0]
                        } else {
                            vec![]
                        };
                        c.broadcast_with(root, &data, algo)
                    });
                    for r in &res {
                        assert_eq!(
                            r.value,
                            vec![7.0, 8.0],
                            "algo={algo:?} p={p} root={root} rank={}",
                            r.rank
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_sums_across_ranks() {
        for p in [1, 2, 3, 4, 7, 8, 16] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                c.reduce(0, &[c.rank() as f64, 1.0], ReduceOp::Sum)
            });
            let expect_sum = (p * (p - 1) / 2) as f64;
            let got = res[0].value.as_ref().unwrap();
            assert_eq!(got[0], expect_sum, "p={p}");
            assert_eq!(got[1], p as f64);
            for r in &res[1..] {
                assert!(r.value.is_none());
            }
        }
    }

    #[test]
    fn reduce_max_min_prod() {
        let res = run_spmd(&meiko_cs2(), 5, |c| {
            let x = c.rank() as f64 + 1.0;
            Ok((
                c.allreduce_scalar(x, ReduceOp::Max)?,
                c.allreduce_scalar(x, ReduceOp::Min)?,
                c.allreduce_scalar(x, ReduceOp::Prod)?,
            ))
        });
        for r in &res {
            assert_eq!(r.value.0, 5.0);
            assert_eq!(r.value.1, 1.0);
            assert_eq!(r.value.2, 120.0);
        }
    }

    #[test]
    fn allreduce_agrees_on_all_ranks() {
        for p in [2, 3, 6, 16] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                c.allreduce(&[c.rank() as f64 * 2.0], ReduceOp::Sum)
            });
            let expect = (p * (p - 1)) as f64;
            for r in &res {
                assert_eq!(r.value, vec![expect], "p={p}");
            }
        }
    }

    #[test]
    fn linear_allreduce_matches_tree_allreduce() {
        for p in [1usize, 3, 8, 16] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                let mine = vec![c.rank() as f64 + 1.0];
                let lin = c.allreduce_with(&mine, ReduceOp::Sum, CollectiveAlgo::Linear)?;
                let tree = c.allreduce_with(&mine, ReduceOp::Sum, CollectiveAlgo::Tree)?;
                Ok((lin, tree))
            });
            for r in &res {
                // Values agree to FP-reassociation tolerance.
                assert!((r.value.0[0] - r.value.1[0]).abs() < 1e-12, "p={p}");
            }
        }
    }

    #[test]
    fn comm_level_algo_switches_every_collective() {
        // Configure Linear once at launch; un-suffixed calls follow it.
        let opts = SpmdOptions {
            algo: CollectiveAlgo::Linear,
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 4, opts, |c| {
            assert_eq!(c.collective_algo(), CollectiveAlgo::Linear);
            c.allreduce_scalar(c.rank() as f64, ReduceOp::Sum)
        })
        .unwrap();
        for r in &res {
            assert_eq!(r.value, 6.0);
        }
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let mine = vec![c.rank() as f64; c.rank() + 1]; // variable lengths
            c.gather(0, &mine)
        });
        let parts = res[0].value.as_ref().unwrap();
        assert_eq!(parts.len(), 4);
        for (r, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), r + 1);
            assert!(part.iter().all(|&v| v == r as f64));
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let res = run_spmd(&meiko_cs2(), 3, |c| c.allgather(&[c.rank() as f64 + 10.0]));
        for r in &res {
            assert_eq!(r.value, vec![vec![10.0], vec![11.0], vec![12.0]]);
        }
    }

    #[test]
    fn scatter_distributes_parts() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let parts: Vec<Vec<f64>> = if c.rank() == 1 {
                (0..4).map(|r| vec![r as f64 * 100.0]).collect()
            } else {
                vec![]
            };
            c.scatter(1, &parts)
        });
        for (r, res) in res.iter().enumerate() {
            assert_eq!(res.value, vec![r as f64 * 100.0]);
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            if c.rank() == 2 {
                c.compute(1e7); // one slow rank
            }
            c.barrier()?;
            Ok(c.clock())
        });
        let slowest = 1e7 / 25e6;
        for r in &res {
            assert!(
                r.value >= slowest,
                "rank {} clock {} < {slowest}",
                r.rank,
                r.value
            );
        }
    }

    #[test]
    fn broadcast_latency_scales_logarithmically() {
        // Modeled broadcast time should grow ~log p, not ~p.
        let time_at = |p: usize| {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                let v = c.broadcast(0, &[1.0])?;
                let _ = v;
                Ok(c.clock())
            });
            res.iter().map(|r| r.clock).fold(0.0, f64::max)
        };
        let t4 = time_at(4);
        let t16 = time_at(16);
        // log2(16)/log2(4) = 2; allow generous slack but reject linear (×4).
        assert!(t16 / t4 < 3.0, "t4={t4} t16={t16}");
    }

    #[test]
    fn tree_beats_linear_in_modeled_latency_at_scale() {
        let time = |algo: CollectiveAlgo| {
            let res = run_spmd(&meiko_cs2(), 16, move |c| {
                for _ in 0..10 {
                    c.broadcast_with(0, &[1.0], algo)?;
                }
                Ok(c.clock())
            });
            res.iter().map(|r| r.clock).fold(0.0, f64::max)
        };
        let t_tree = time(CollectiveAlgo::Tree);
        let t_linear = time(CollectiveAlgo::Linear);
        assert!(
            t_linear > 2.0 * t_tree,
            "linear {t_linear} should be much slower than tree {t_tree} at p=16"
        );
    }

    #[test]
    fn cluster_broadcast_pays_ethernet_once_per_node_at_best() {
        // On the SMP cluster, a 16-rank broadcast must cross the
        // Ethernet; modeled time should far exceed the SMP's.
        let cluster_t = {
            let res = run_spmd(&sparc20_cluster(), 16, |c| {
                c.broadcast(0, &vec![0.0; 1024])?;
                Ok(c.clock())
            });
            res.iter().map(|r| r.clock).fold(0.0, f64::max)
        };
        let smp_t = {
            let res = run_spmd(&enterprise_smp(), 8, |c| {
                c.broadcast(0, &vec![0.0; 1024])?;
                Ok(c.clock())
            });
            res.iter().map(|r| r.clock).fold(0.0, f64::max)
        };
        assert!(cluster_t > 10.0 * smp_t, "cluster={cluster_t} smp={smp_t}");
    }

    #[test]
    fn empty_payload_collectives_work() {
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            let b = c.broadcast(0, &[])?;
            let r = c.allreduce(&[], ReduceOp::Sum)?;
            Ok((b.len(), r.len()))
        });
        for r in &res {
            assert_eq!(r.value, (0, 0));
        }
    }

    #[test]
    fn out_of_range_root_is_one_message_format() {
        let res = run_spmd_with(&meiko_cs2(), 2, SpmdOptions::default(), |c| {
            if c.rank() == 0 {
                c.broadcast(9, &[1.0])?;
            }
            Ok(())
        });
        let failure = res.unwrap_err();
        let f0 = failure
            .report
            .failures
            .iter()
            .find(|f| f.rank == 0)
            .unwrap();
        assert_eq!(f0.error.code(), "rank_out_of_range");
        assert_eq!(
            f0.error.to_string(),
            "rank 0: broadcast root rank 9 out of range 0..2"
        );
    }

    #[test]
    fn fold_identity() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max, ReduceOp::Min] {
            let mut acc = vec![op.identity(); 3];
            op.fold(&mut acc, &[2.0, -1.0, 0.5]);
            assert_eq!(acc, vec![2.0, -1.0, 0.5], "{op:?}");
        }
    }
}
