//! A hand-rolled intra-rank worker pool for the tiled kernels.
//!
//! Ranks in this reproduction are OS threads; the kernel layer adds a
//! second level of data parallelism *inside* a rank by splitting a
//! kernel's output rows over pool threads (the hybrid ranks × threads
//! execution the paper's cluster-of-SMPs hardware would use). The pool
//! is dependency-free: a global set of persistent worker threads
//! behind a `Mutex<VecDeque<Job>>` + `Condvar` queue, grown on demand
//! and never torn down (workers park in `Condvar::wait` until process
//! exit).
//!
//! Two properties the kernels rely on:
//!
//! * **No allocation accounting on workers.** Pool threads only write
//!   into row chunks borrowed from the caller; they never construct a
//!   [`crate::DistMatrix`] or touch the thread-local [`crate::alloc`]
//!   counters, so per-rank memory accounting stays exact.
//! * **Caller-blocking scope.** [`parallel_for`] does not return until
//!   every part has run, which is what makes lending the caller's
//!   stack borrows to `'static` jobs sound (see the safety comment).
//!
//! A panic inside a part is caught on the worker, the remaining parts
//! are abandoned by that worker, and the panic is re-raised on the
//! caller once all helpers have drained.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

static QUEUE: OnceLock<Queue> = OnceLock::new();
static WORKERS: Mutex<usize> = Mutex::new(0);

/// Upper bound on pool threads — far above any sane `threads` knob;
/// protects against a runaway configuration spawning unbounded OS
/// threads.
const MAX_WORKERS: usize = 64;

fn queue() -> &'static Queue {
    QUEUE.get_or_init(|| Queue {
        jobs: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    })
}

/// Grow the worker set to at least `n` threads (capped at
/// [`MAX_WORKERS`]). Workers are spawned lazily so a sequential run
/// never pays for threads it does not use.
fn ensure_workers(n: usize) {
    let n = n.min(MAX_WORKERS);
    let mut count = WORKERS.lock().unwrap();
    while *count < n {
        std::thread::Builder::new()
            .name(format!("otter-kernel-{}", *count))
            .spawn(|| {
                let q = queue();
                loop {
                    let job = {
                        let mut jobs = q.jobs.lock().unwrap();
                        loop {
                            if let Some(j) = jobs.pop_front() {
                                break j;
                            }
                            jobs = q.ready.wait(jobs).unwrap();
                        }
                    };
                    job();
                }
            })
            .expect("spawn kernel worker");
        *count += 1;
    }
}

/// State shared between the caller and its helper jobs for one
/// [`parallel_for`] call.
struct Run {
    /// Next unclaimed part index.
    next: AtomicUsize,
    parts: usize,
    /// The caller's part body with its borrow lifetime erased to
    /// `'static`. Valid for exactly as long as the caller blocks in
    /// [`parallel_for`].
    body: *const (dyn Fn(usize) + Sync + 'static),
    panicked: AtomicBool,
    /// Helper jobs still running (the caller's own drain loop is not
    /// counted).
    pending: Mutex<usize>,
    done: Condvar,
}

// SAFETY: `body` is only dereferenced while the issuing caller blocks
// inside `parallel_for`, which keeps the pointee alive; all other
// fields are Sync primitives.
unsafe impl Send for Run {}
unsafe impl Sync for Run {}

impl Run {
    fn drain(&self) {
        // SAFETY: see the struct-level invariant — the caller is
        // blocked in `parallel_for` until `pending` reaches zero, so
        // the closure behind `body` is alive for every call made here.
        let body = unsafe { &*self.body };
        while !self.panicked.load(Ordering::Relaxed) {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.parts {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| body(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Run `body(part)` for every `part` in `0..parts`, spreading parts
/// over up to `threads` threads *including the caller*. Blocks until
/// every part has finished; a panic in any part is re-raised here.
///
/// `threads <= 1` (or fewer than two parts) runs inline without
/// touching the pool — the sequential engines and any
/// single-CPU-budget rank never pay for synchronization.
pub fn parallel_for(parts: usize, threads: usize, body: &(dyn Fn(usize) + Sync)) {
    if threads <= 1 || parts <= 1 {
        for i in 0..parts {
            body(i);
        }
        return;
    }
    let helpers = threads.min(parts).min(MAX_WORKERS + 1) - 1;
    ensure_workers(helpers);
    // SAFETY: erasing the borrow lifetime to 'static is sound because
    // this function blocks until `pending` drains, after which no job
    // can dereference `body` again.
    let body: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(std::ptr::from_ref(body))
    };
    let run = std::sync::Arc::new(Run {
        next: AtomicUsize::new(0),
        parts,
        body,
        panicked: AtomicBool::new(false),
        pending: Mutex::new(helpers),
        done: Condvar::new(),
    });
    {
        let q = queue();
        let mut jobs = q.jobs.lock().unwrap();
        for _ in 0..helpers {
            let r = std::sync::Arc::clone(&run);
            jobs.push_back(Box::new(move || {
                r.drain();
                let mut pending = r.pending.lock().unwrap();
                *pending -= 1;
                if *pending == 0 {
                    r.done.notify_all();
                }
            }));
        }
        drop(jobs);
        q.ready.notify_all();
    }
    run.drain();
    let mut pending = run.pending.lock().unwrap();
    while *pending > 0 {
        pending = run.done.wait(pending).unwrap();
    }
    drop(pending);
    if run.panicked.load(Ordering::Relaxed) {
        panic!("kernel worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_part_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
            parallel_for(hits.len(), threads, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "part {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_parts_is_fine() {
        let hits = AtomicU64::new(0);
        parallel_for(2, 16, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn zero_parts_is_a_noop() {
        parallel_for(0, 4, &|_| panic!("no parts to run"));
    }

    #[test]
    fn writes_land_in_disjoint_chunks() {
        let mut data = vec![0.0f64; 64];
        let chunk = 16;
        {
            let base = data.as_mut_ptr() as usize;
            parallel_for(4, 4, &move |i| {
                // SAFETY: each part touches its own disjoint 16-element
                // chunk, and `data` outlives the blocking call.
                let slice = unsafe {
                    std::slice::from_raw_parts_mut((base as *mut f64).add(i * chunk), chunk)
                };
                for (j, v) in slice.iter_mut().enumerate() {
                    *v = (i * chunk + j) as f64;
                }
            });
        }
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k as f64);
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = catch_unwind(|| {
            parallel_for(8, 4, &|i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}
