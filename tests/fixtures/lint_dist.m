% Lint fixture: redundant broadcast + dead distributed value.
a = rand(4, 4);
a = ones(4, 4);
x = a(1, 2);
y = a(1, 2);
s = sum(a(:, 1));
