//! Property-style agreement checks between the trace stream and the
//! always-on counters: for every benchmark application and job size,
//! the per-rank event totals must *exactly* reproduce what
//! `CommStats`/`RankCounters` measured, and the critical path can
//! never exceed the simulated job time. Any drift between the two
//! accounting paths (stats are charged inside `Comm`, events are
//! recorded by the sink) is a tracing bug.

use otter_core::{run_engine, EngineOptions, OtterEngine};
use otter_machine::meiko_cs2;
use otter_trace::{timelines, EventKind, MemorySink, TraceSink};
use std::sync::Arc;

/// Relative tolerance for summed floating-point durations. The event
/// durations are differences of the same clock values the stats are
/// accumulated from, so only rounding in `t_end - t_start` separates
/// them.
const REL_EPS: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_EPS * a.abs().max(b.abs()).max(1e-30)
}

#[test]
fn trace_totals_agree_with_rank_counters_for_every_app() {
    for app in otter_apps::test_apps() {
        for p in [1usize, 2, 4, 8] {
            let sink = Arc::new(MemorySink::new());
            let opts = EngineOptions::builder().trace(Arc::clone(&sink)).build();
            let report = run_engine(&mut OtterEngine::new(opts), &app.script, &meiko_cs2(), p)
                .unwrap_or_else(|e| panic!("{} x{p}: {e}", app.id));
            let events = sink.snapshot().expect("memory sink retains events");
            assert!(!events.is_empty(), "{} x{p}: no events", app.id);

            let tls = timelines(&events);
            assert_eq!(tls.len(), p, "{} x{p}: one timeline per rank", app.id);
            assert_eq!(report.per_rank.len(), p);

            for (tl, rc) in tls.iter().zip(&report.per_rank) {
                let tag = format!("{} x{p} rank {}", app.id, tl.rank);
                assert_eq!(tl.rank, rc.rank, "{tag}: rank order");

                // Message/byte counts are integers: demand exact
                // agreement between Send events and the counters.
                let sends: Vec<_> = events
                    .iter()
                    .filter(|e| e.rank == tl.rank)
                    .filter_map(|e| match e.kind {
                        EventKind::Send { bytes, .. } => Some(bytes),
                        _ => None,
                    })
                    .collect();
                assert_eq!(sends.len() as u64, rc.messages, "{tag}: message count");
                assert_eq!(
                    sends.iter().copied().sum::<u64>(),
                    rc.bytes,
                    "{tag}: bytes sent"
                );

                // Seconds are sums of clock differences: near-exact.
                assert!(
                    close(tl.compute, rc.compute_seconds),
                    "{tag}: compute {} vs {}",
                    tl.compute,
                    rc.compute_seconds
                );
                assert!(
                    close(tl.comm, rc.comm_seconds),
                    "{tag}: comm {} vs {}",
                    tl.comm,
                    rc.comm_seconds
                );
                assert!(
                    close(tl.idle, rc.idle_seconds),
                    "{tag}: idle {} vs {}",
                    tl.idle,
                    rc.idle_seconds
                );

                // The primitive events tile the rank's clock: nothing
                // is double-counted and nothing falls through.
                assert!(
                    close(tl.compute + tl.comm + tl.idle, tl.clock),
                    "{tag}: compute+comm+idle {} != clock {}",
                    tl.compute + tl.comm + tl.idle,
                    tl.clock
                );
                assert!(close(tl.clock, rc.clock), "{tag}: final clock");
            }

            // The critical path is one dependency chain through the
            // run — it can never be longer than the job itself, and
            // its compute/comm split must account for all of it.
            let cp = report
                .critical_path
                .as_ref()
                .unwrap_or_else(|| panic!("{} x{p}: traced run reports a critical path", app.id));
            assert!(
                cp.total <= report.modeled_seconds * (1.0 + REL_EPS),
                "{} x{p}: critical path {} exceeds job time {}",
                app.id,
                cp.total,
                report.modeled_seconds
            );
            assert!(
                close(cp.compute + cp.comm, cp.total),
                "{} x{p}: critical path split {} + {} != {}",
                app.id,
                cp.compute,
                cp.comm,
                cp.total
            );
            if p == 1 {
                assert_eq!(cp.hops, 0, "{}: no cross-rank hops on one CPU", app.id);
            }
        }
    }
}

#[test]
fn untraced_runs_report_no_critical_path() {
    let app = &otter_apps::test_apps()[0];
    let report = run_engine(
        &mut OtterEngine::new(EngineOptions::default()),
        &app.script,
        &meiko_cs2(),
        4,
    )
    .unwrap();
    assert!(report.critical_path.is_none());
}
