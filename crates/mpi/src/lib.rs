//! # otter-mpi
//!
//! Message-passing substrate for Otter-compiled SPMD programs: the
//! stand-in for the MPI library of the paper's Figure 1 stack
//! (`MATLAB script → compiler → SPMD C + run-time library → MPI`).
//!
//! Each *rank* is an OS thread holding a [`Comm`] endpoint wired to
//! every other rank through lock-free channels, so compiled programs
//! really move data between really-parallel threads. On top of the
//! real execution, every endpoint maintains a **virtual clock**
//! charged against an [`otter_machine::Machine`] model: compute
//! advances the local clock, a message delivers at
//! `max(receiver clock, sender clock + α + bytes·β)` — a conservative
//! parallel-discrete-event simulation. This is how the repo reproduces
//! the paper's speedup curves for hardware that no longer exists
//! (Meiko CS-2, SPARC-20 Ethernet cluster, Enterprise SMP) while still
//! computing real answers.
//!
//! ```
//! use otter_mpi::{run_spmd, ReduceOp};
//! use otter_machine::meiko_cs2;
//!
//! let results = run_spmd(&meiko_cs2(), 4, |comm| {
//!     let mine = vec![comm.rank() as f64 + 1.0];
//!     let total = comm.allreduce(&mine, ReduceOp::Sum);
//!     total[0]
//! });
//! assert!(results.iter().all(|r| r.value == 10.0));
//! ```

pub mod collectives;
pub mod comm;
pub mod runner;

pub use collectives::{CollectiveAlgo, ReduceOp};
pub use comm::{Comm, CommStats};
pub use runner::{job_time, run_spmd, run_spmd_with, RankResult, SpmdOptions};
