//! The serve-mode traffic generator behind `harness load`.
//!
//! A [`LoadSpec`] drives `clients` concurrent sessions against an
//! `otterd` socket — an in-process [`otter_serve::Server`] spun up for
//! the occasion, or an external daemon via `socket` — issuing `run`
//! jobs drawn round-robin from `scripts` distinct sources (the four
//! benchmark apps, plus comment-suffixed variants past four, so every
//! variant compiles identically but occupies its own cache entry).
//!
//! The [`LoadReport`] separates two kinds of numbers, exactly like the
//! statistical bench it is modeled on:
//!
//! * **Informational traffic statistics** — throughput, p50/p95/p99
//!   round-trip latency, cold vs warm compile percentiles, cache-hit
//!   rate. Host- and schedule-dependent; never gated.
//! * **Deterministic per-script outputs** — `modeled_seconds`,
//!   `messages`, `bytes` of each distinct script, embedded as a full
//!   `otter-bench/v1` report under the `bench` key (engine `"serve"`).
//!   `harness load --check baseline.json` feeds that section through
//!   the same [`crate::bench::check`] gate the bench baseline uses, so
//!   one mechanism guards both paths.

use crate::bench::{check, BenchReport, BenchResult, Regression, WallStats};
use crate::figures::Scale;
use otter_core::OtterError;
use otter_metrics::{Json, MetricsSnapshot};
use otter_serve::{JobOptions, ServeClient, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The `"schema"` tag on every load report.
pub const LOAD_SCHEMA: &str = "otter-load/v1";

/// How jobs arrive at the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Each client issues its next job as soon as the previous one
    /// returns (think batch backlog).
    Closed,
    /// Jobs arrive on a fixed global schedule of `rate` jobs/second,
    /// independent of service time (think interactive users); a job
    /// whose scheduled instant has passed is issued immediately.
    Open { rate: f64 },
}

impl Arrival {
    pub fn label(self) -> &'static str {
        match self {
            Arrival::Closed => "closed",
            Arrival::Open { .. } => "open",
        }
    }
}

/// What traffic to generate.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Problem sizes for the underlying scripts.
    pub scale: Scale,
    /// Concurrent client sessions.
    pub clients: usize,
    /// Distinct scripts cycled through (variants past the four apps).
    pub scripts: usize,
    /// Jobs per client.
    pub requests: usize,
    pub arrival: Arrival,
    /// Logical SPMD ranks per job.
    pub ranks: usize,
    /// Worker budget for the in-process server (`None`: host cores).
    /// Ignored when `socket` points at an external daemon.
    pub workers: Option<usize>,
    /// Machine model name jobs run on.
    pub machine: String,
    /// Connect to an existing daemon instead of starting one.
    pub socket: Option<PathBuf>,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            scale: Scale::Test,
            clients: 4,
            scripts: 4,
            requests: 8,
            arrival: Arrival::Closed,
            ranks: 4,
            workers: None,
            machine: "meiko".to_string(),
            socket: None,
        }
    }
}

/// Nearest-rank percentiles of a latency sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

impl LatencyStats {
    /// Summarize a sample set; all zeros when it is empty.
    pub fn from_samples(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats {
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        let rank = |q: f64| s[((q * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1];
        LatencyStats {
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: s[s.len() - 1],
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("p50".to_string(), Json::Num(self.p50)),
            ("p95".to_string(), Json::Num(self.p95)),
            ("p99".to_string(), Json::Num(self.p99)),
            ("max".to_string(), Json::Num(self.max)),
        ])
    }

    fn from_json(json: &Json) -> Result<LatencyStats, String> {
        let num = |f: &str| {
            json.get(f)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("latency stats missing `{f}`"))
        };
        Ok(LatencyStats {
            p50: num("p50")?,
            p95: num("p95")?,
            p99: num("p99")?,
            max: num("max")?,
        })
    }
}

/// The outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub scale: String,
    pub machine: String,
    pub clients: usize,
    pub scripts: usize,
    /// Jobs per client (total = `clients × requests`).
    pub requests: usize,
    pub arrival: String,
    pub ranks: usize,
    /// Jobs that completed successfully.
    pub completed: usize,
    /// Wall seconds from first issue to last reply.
    pub duration_seconds: f64,
    pub throughput_jobs_per_sec: f64,
    /// Client-observed round-trip latency.
    pub latency_seconds: LatencyStats,
    /// Daemon-side compile seconds on cache misses.
    pub compile_cold_seconds: LatencyStats,
    /// Daemon-side compile seconds on cache hits (≈ 0: one hash and
    /// one table lookup; passes 1–6 never run).
    pub compile_warm_seconds: LatencyStats,
    /// `cold p50 / warm p50` (0 when either side has no samples).
    pub cold_over_warm: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Every daemon-minted job id this run exercised, for
    /// cross-referencing against the daemon's `GET /jobs` table.
    /// Printed, never serialized (ids are fresh each run, so they
    /// would churn baselines without gating anything).
    pub job_ids: Vec<String>,
    /// Deterministic per-script outputs in `otter-bench/v1` form, for
    /// the shared regression gate.
    pub bench: BenchReport,
}

/// One distinct script of the traffic mix.
struct LoadScript {
    id: String,
    source: String,
}

/// The four apps plus comment-variants: variant `k` of app `a` has the
/// same compiled form but a distinct source hash, so it exercises its
/// own cache entry.
fn load_scripts(scale: Scale, count: usize) -> Vec<LoadScript> {
    let apps = scale.apps();
    (0..count.max(1))
        .map(|i| {
            let app = &apps[i % apps.len()];
            let variant = i / apps.len();
            if variant == 0 {
                LoadScript {
                    id: app.id.to_string(),
                    source: app.script.clone(),
                }
            } else {
                LoadScript {
                    id: format!("{}+v{variant}", app.id),
                    source: format!("{}\n% load variant {variant}\n", app.script),
                }
            }
        })
        .collect()
}

/// Everything one job contributes to the report.
struct JobSample {
    script: usize,
    /// The daemon-minted correlation id, for cross-referencing this
    /// job against the daemon's `GET /jobs` table.
    job_id: String,
    latency: f64,
    cache_hit: bool,
    compile_seconds: f64,
    modeled_seconds: f64,
    messages: u64,
    bytes: u64,
}

/// Run the traffic. Starts (and cleanly shuts down) an in-process
/// server unless the spec points at an external socket.
pub fn run_load(spec: &LoadSpec) -> Result<LoadReport, OtterError> {
    let scripts = load_scripts(spec.scale, spec.scripts);
    let fail = |msg: String| OtterError::execution(format!("load: {msg}"));

    // Start our own daemon unless pointed at one.
    let (socket, server_thread) = match &spec.socket {
        Some(path) => (path.clone(), None),
        None => {
            let mut cfg = ServeConfig::default();
            static LOAD_SEQ: AtomicU64 = AtomicU64::new(0);
            cfg.socket = std::env::temp_dir().join(format!(
                "otter-load-{}-{}.sock",
                std::process::id(),
                LOAD_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            if let Some(w) = spec.workers {
                cfg.workers = w;
            }
            cfg.cache_capacity = spec.scripts.max(4) * 2;
            let server = Server::bind(cfg).map_err(|e| fail(format!("bind failed: {e}")))?;
            let path = server.socket().clone();
            (path, Some(std::thread::spawn(move || server.run())))
        }
    };

    let clients = spec.clients.max(1);
    let requests = spec.requests.max(1);
    let samples: Mutex<Vec<JobSample>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..clients {
            let scripts = &scripts;
            let samples = &samples;
            let errors = &errors;
            let socket = &socket;
            scope.spawn(move || {
                let mut session =
                    match ServeClient::connect_with_retry(socket, Duration::from_secs(5)) {
                        Ok(s) => s,
                        Err(e) => {
                            errors.lock().unwrap().push(format!("connect failed: {e}"));
                            return;
                        }
                    };
                for req in 0..requests {
                    // Global job index: interleaved across clients so
                    // every script sees traffic from several sessions.
                    let global = req * clients + client;
                    if let Arrival::Open { rate } = spec.arrival {
                        let due = started + Duration::from_secs_f64(global as f64 / rate.max(1e-9));
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                    }
                    let script = global % scripts.len();
                    let t0 = Instant::now();
                    match session.run(
                        &scripts[script].source,
                        JobOptions::default(),
                        &spec.machine,
                        spec.ranks,
                        None,
                    ) {
                        Ok(reply) => {
                            let num =
                                |k: &str| reply.body.get(k).and_then(Json::as_num).unwrap_or(0.0);
                            samples.lock().unwrap().push(JobSample {
                                script,
                                job_id: reply.job_id.clone(),
                                latency: t0.elapsed().as_secs_f64(),
                                cache_hit: reply.cache_hit,
                                compile_seconds: reply.compile_seconds,
                                modeled_seconds: num("modeled_seconds"),
                                messages: num("messages") as u64,
                                bytes: num("bytes") as u64,
                            });
                        }
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                }
            });
        }
    });
    let duration = started.elapsed().as_secs_f64();

    // Our in-process server gets a clean shutdown through the protocol.
    if let Some(handle) = server_thread {
        let stop = ServeClient::connect_with_retry(&socket, Duration::from_secs(5))
            .map_err(|e| fail(format!("shutdown connect failed: {e}")))
            .and_then(|mut c| c.shutdown().map_err(fail));
        stop?;
        handle
            .join()
            .map_err(|_| fail("server thread panicked".to_string()))?
            .map_err(|e| fail(format!("server accept loop failed: {e}")))?;
    }

    let errors = errors.into_inner().unwrap();
    if let Some(first) = errors.first() {
        return Err(fail(format!(
            "{} job(s) failed; first: {first}",
            errors.len()
        )));
    }
    let samples = samples.into_inner().unwrap();

    // Deterministic per-script outputs (identical on every completed
    // job of a script — take the first) become the bench section.
    let mut results = Vec::new();
    for (i, script) in scripts.iter().enumerate() {
        let of_script: Vec<&JobSample> = samples.iter().filter(|s| s.script == i).collect();
        let Some(first) = of_script.first() else {
            continue; // never reached by the schedule; not gated
        };
        let walls: Vec<f64> = of_script.iter().map(|s| s.latency).collect();
        results.push(BenchResult {
            app: script.id.clone(),
            engine: "serve".to_string(),
            ranks: spec.ranks,
            modeled_seconds: first.modeled_seconds,
            messages: first.messages,
            bytes: first.bytes,
            wall: WallStats::from_samples(&walls),
            metrics: MetricsSnapshot::default(),
        });
    }
    let bench = BenchReport {
        scale: match spec.scale {
            Scale::Paper => "paper".to_string(),
            Scale::Test => "test".to_string(),
            Scale::Large => "large".to_string(),
        },
        machine: spec.machine.clone(),
        repeat: requests,
        warmup: 0,
        results,
    };

    let latencies: Vec<f64> = samples.iter().map(|s| s.latency).collect();
    let cold: Vec<f64> = samples
        .iter()
        .filter(|s| !s.cache_hit)
        .map(|s| s.compile_seconds)
        .collect();
    let warm: Vec<f64> = samples
        .iter()
        .filter(|s| s.cache_hit)
        .map(|s| s.compile_seconds)
        .collect();
    let cold_stats = LatencyStats::from_samples(&cold);
    let warm_stats = LatencyStats::from_samples(&warm);
    Ok(LoadReport {
        scale: bench.scale.clone(),
        machine: spec.machine.clone(),
        clients,
        scripts: scripts.len(),
        requests,
        arrival: spec.arrival.label().to_string(),
        ranks: spec.ranks,
        completed: samples.len(),
        duration_seconds: duration,
        throughput_jobs_per_sec: if duration > 0.0 {
            samples.len() as f64 / duration
        } else {
            0.0
        },
        latency_seconds: LatencyStats::from_samples(&latencies),
        compile_cold_seconds: cold_stats,
        compile_warm_seconds: warm_stats,
        cold_over_warm: if warm_stats.p50 > 0.0 && !cold.is_empty() {
            cold_stats.p50 / warm_stats.p50
        } else {
            0.0
        },
        cache_hits: warm.len() as u64,
        cache_misses: cold.len() as u64,
        job_ids: samples.iter().map(|s| s.job_id.clone()).collect(),
        bench,
    })
}

impl LoadReport {
    /// Serialize under the `otter-load/v1` schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(LOAD_SCHEMA.to_string())),
            ("scale".to_string(), Json::Str(self.scale.clone())),
            ("machine".to_string(), Json::Str(self.machine.clone())),
            ("clients".to_string(), Json::Num(self.clients as f64)),
            ("scripts".to_string(), Json::Num(self.scripts as f64)),
            ("requests".to_string(), Json::Num(self.requests as f64)),
            ("arrival".to_string(), Json::Str(self.arrival.clone())),
            ("ranks".to_string(), Json::Num(self.ranks as f64)),
            ("completed".to_string(), Json::Num(self.completed as f64)),
            (
                "duration_seconds".to_string(),
                Json::Num(self.duration_seconds),
            ),
            (
                "throughput_jobs_per_sec".to_string(),
                Json::Num(self.throughput_jobs_per_sec),
            ),
            (
                "latency_seconds".to_string(),
                self.latency_seconds.to_json(),
            ),
            (
                "compile_cold_seconds".to_string(),
                self.compile_cold_seconds.to_json(),
            ),
            (
                "compile_warm_seconds".to_string(),
                self.compile_warm_seconds.to_json(),
            ),
            ("cold_over_warm".to_string(), Json::Num(self.cold_over_warm)),
            ("cache_hits".to_string(), Json::Num(self.cache_hits as f64)),
            (
                "cache_misses".to_string(),
                Json::Num(self.cache_misses as f64),
            ),
            ("bench".to_string(), self.bench.to_json()),
        ])
    }

    /// Parse a report written by [`LoadReport::to_json`].
    pub fn from_json(json: &Json) -> Result<LoadReport, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("load report missing `schema`")?;
        if schema != LOAD_SCHEMA {
            return Err(format!(
                "unsupported load schema `{schema}` (expected `{LOAD_SCHEMA}`)"
            ));
        }
        let str_field = |f: &str| {
            json.get(f)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("load report missing `{f}`"))
        };
        let num_field = |f: &str| {
            json.get(f)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("load report missing `{f}`"))
        };
        let stats_field = |f: &str| {
            LatencyStats::from_json(
                json.get(f)
                    .ok_or_else(|| format!("load report missing `{f}`"))?,
            )
        };
        Ok(LoadReport {
            scale: str_field("scale")?,
            machine: str_field("machine")?,
            clients: num_field("clients")? as usize,
            scripts: num_field("scripts")? as usize,
            requests: num_field("requests")? as usize,
            arrival: str_field("arrival")?,
            ranks: num_field("ranks")? as usize,
            completed: num_field("completed")? as usize,
            duration_seconds: num_field("duration_seconds")?,
            throughput_jobs_per_sec: num_field("throughput_jobs_per_sec")?,
            latency_seconds: stats_field("latency_seconds")?,
            compile_cold_seconds: stats_field("compile_cold_seconds")?,
            compile_warm_seconds: stats_field("compile_warm_seconds")?,
            cold_over_warm: num_field("cold_over_warm")?,
            cache_hits: num_field("cache_hits")? as u64,
            cache_misses: num_field("cache_misses")? as u64,
            job_ids: Vec::new(),
            bench: BenchReport::from_json(json.get("bench").ok_or("load report missing `bench`")?)?,
        })
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "load: {} client(s) x {} request(s) over {} script(s), {} arrival, \
             {} scale on {}, {} rank(s)/job",
            self.clients,
            self.requests,
            self.scripts,
            self.arrival,
            self.scale,
            self.machine,
            self.ranks
        );
        let _ = writeln!(
            out,
            "completed {} job(s) in {:.3} s  ->  {:.1} jobs/s",
            self.completed, self.duration_seconds, self.throughput_jobs_per_sec
        );
        let _ = writeln!(
            out,
            "latency   p50 {:.6} s  p95 {:.6} s  p99 {:.6} s  max {:.6} s",
            self.latency_seconds.p50,
            self.latency_seconds.p95,
            self.latency_seconds.p99,
            self.latency_seconds.max
        );
        let _ = writeln!(
            out,
            "compile   cold p50 {:.6} s  warm p50 {:.6} s  (cold/warm {:.0}x)",
            self.compile_cold_seconds.p50, self.compile_warm_seconds.p50, self.cold_over_warm
        );
        let _ = writeln!(
            out,
            "cache     {} hit(s), {} miss(es)  (hit rate {:.2})",
            self.cache_hits,
            self.cache_misses,
            if self.completed > 0 {
                self.cache_hits as f64 / self.completed as f64
            } else {
                0.0
            }
        );
        if !self.job_ids.is_empty() {
            let _ = writeln!(
                out,
                "job_ids   {}  (cross-reference against GET /jobs)",
                self.job_ids.join(" ")
            );
        }
        out
    }

    /// Gate this run's deterministic bench section against a baseline
    /// load report — the same [`check`] the bench baseline goes
    /// through.
    pub fn check_against(&self, baseline: &LoadReport, tolerance_pct: f64) -> Vec<Regression> {
        check(&baseline.bench, &self.bench, tolerance_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_get_distinct_sources() {
        let scripts = load_scripts(Scale::Test, 6);
        assert_eq!(scripts.len(), 6);
        assert_eq!(scripts[0].id, "cg");
        assert_eq!(scripts[4].id, "cg+v1");
        assert_ne!(scripts[0].source, scripts[4].source);
        assert_ne!(
            otter_core::source_hash(&scripts[0].source),
            otter_core::source_hash(&scripts[4].source)
        );
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = LatencyStats::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(LatencyStats::from_samples(&[]).p50, 0.0);
    }

    #[test]
    fn closed_loop_traffic_round_trips_and_hits_the_cache() {
        let spec = LoadSpec {
            clients: 2,
            scripts: 2,
            requests: 4,
            ranks: 2,
            workers: Some(2),
            ..LoadSpec::default()
        };
        let report = run_load(&spec).expect("load run succeeds");
        assert_eq!(report.completed, 8);
        assert_eq!(report.cache_hits + report.cache_misses, 8);
        assert_eq!(report.job_ids.len(), 8, "one job_id per completed job");
        for id in &report.job_ids {
            assert_eq!(id.len(), 16, "job ids are 16-hex: {id}");
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");
        }
        assert!(
            report.render().contains("job_ids   "),
            "render surfaces the served ids"
        );
        assert!(
            report.cache_hits >= 4,
            "8 jobs over 2 scripts leave at most 4 cold compiles (2 clients racing), \
             got {} hit(s)",
            report.cache_hits
        );
        assert_eq!(report.bench.results.len(), 2, "one bench row per script");
        for r in &report.bench.results {
            assert_eq!(r.engine, "serve");
            assert!(r.modeled_seconds > 0.0);
        }
        let text = report.to_json().to_string();
        let back = LoadReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.completed, 8);
        assert_eq!(back.bench.results.len(), 2);
        assert!(report.check_against(&back, 0.0).is_empty());
    }
}
