//! Per-rank communication endpoints with virtual-time accounting.

use crate::collectives::CollectiveAlgo;
use crate::error::CommError;
use crate::fault::{FaultState, SendDisposition};
use crate::mailbox::Mailbox;
use crate::sched::Scheduler;
use crate::state::{JobState, RankState};
use otter_log::{FlightEvent, FlightRecorder, JobId, LogLevel};
use otter_machine::Machine;
use otter_metrics::MetricsRegistry;
use otter_trace::{EventKind, TraceEvent, TraceSink};
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One message: a vector of doubles stamped with the sender's virtual
/// clock at completion of the send.
#[derive(Debug, Clone)]
pub(crate) struct Packet {
    pub data: Vec<f64>,
    pub send_clock: f64,
}

/// Communication/computation counters a rank accumulates; used by the
/// benchmark harness to report message counts and volumes per
/// experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    /// Virtual seconds spent in modeled computation.
    pub compute_time: f64,
    /// Virtual seconds spent driving sends (the sender-side transfer
    /// charge).
    pub send_time: f64,
    /// Virtual seconds spent blocked in `recv` waiting for a message
    /// that had not yet arrived in virtual time.
    pub wait_time: f64,
}

impl CommStats {
    /// Total virtual seconds attributed to communication.
    pub fn comm_time(&self) -> f64 {
        self.send_time + self.wait_time
    }
}

/// A rank's endpoint: its identity, the job-wide mailbox array, and
/// its virtual clock.
///
/// `Comm` is deliberately `!Sync`: exactly one carrier thread owns
/// each rank, mirroring MPI's process model (enforced by the
/// `PhantomData<Cell<()>>` marker, since the shared mailbox/scheduler
/// handles would otherwise make it `Sync`).
pub struct Comm {
    rank: usize,
    size: usize,
    machine: Arc<Machine>,
    /// One mailbox per rank, shared by the whole job: `mailboxes[d]`
    /// is rank d's inbox, and a send pushes straight into it.
    mailboxes: Arc<Vec<Mailbox>>,
    /// The job's worker-slot scheduler; a blocked receive releases its
    /// slot here and re-acquires on wake.
    sched: Arc<Scheduler>,
    /// Deadlock-detector cadence (from `SpmdOptions`): how often a
    /// blocked receive re-checks the wait-for registry, how long a
    /// cycle snapshot must hold, and the hard fallback for a peer that
    /// is alive but silent.
    poll: Duration,
    confirm: Duration,
    stall: Duration,
    clock: f64,
    stats: CommStats,
    /// Schedule used by the un-suffixed collective methods.
    algo: CollectiveAlgo,
    sink: Arc<dyn TraceSink>,
    /// Cached `sink.enabled()` so the disabled path is one branch.
    tracing: bool,
    /// Per-edge FIFO sequence numbers (only maintained while tracing):
    /// the k-th send on edge (self → d) pairs with the k-th recv on it.
    send_seq: Vec<u64>,
    recv_seq: Vec<u64>,
    /// Per-rank metric registry; `None` when metrics are off (the
    /// zero-cost default — every record site is behind this branch).
    metrics: Option<Box<MetricsRegistry>>,
    /// Wait-for registry shared by every rank of the job; blocked
    /// receives publish their state here so peers can diagnose
    /// deadlocks from a snapshot instead of a blanket timeout.
    job: Arc<JobState>,
    /// Fault-injection bookkeeping; `None` unless the job's
    /// `FaultPlan` targets this rank, so the healthy path is one
    /// branch per op.
    faults: Option<Box<FaultState>>,
    /// Correlation key for every observability artifact of this job.
    job_id: JobId,
    /// Always-on bounded flight recorder: the last few dozen comm /
    /// scheduler / executor events, kept even when tracing and metrics
    /// are off. Single-writer (this rank), fixed memory, and strictly
    /// wall-side — it observes the virtual clock but never charges it.
    flight: FlightRecorder,
    /// Keeps `Comm: !Sync` (one owner per rank) despite the shared
    /// `Arc`/`Mutex` fields above.
    _not_sync: PhantomData<Cell<()>>,
}

impl Comm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine: Arc<Machine>,
        mailboxes: Arc<Vec<Mailbox>>,
        sched: Arc<Scheduler>,
        opts: &crate::runner::SpmdOptions,
        sink: Arc<dyn TraceSink>,
        job: Arc<JobState>,
    ) -> Self {
        debug_assert_eq!(mailboxes.len(), size);
        let tracing = sink.enabled();
        Comm {
            rank,
            size,
            machine,
            mailboxes,
            sched,
            poll: opts.poll_interval,
            confirm: opts.confirm_window,
            stall: opts.stall_timeout,
            clock: 0.0,
            stats: CommStats::default(),
            algo: opts.algo,
            sink,
            tracing,
            send_seq: vec![0; if tracing { size } else { 0 }],
            recv_seq: vec![0; if tracing { size } else { 0 }],
            metrics: opts.metrics.then(|| Box::new(MetricsRegistry::new())),
            job,
            faults: opts
                .faults
                .as_ref()
                .and_then(|plan| FaultState::for_rank(plan, rank, size)),
            job_id: opts.job_id,
            flight: FlightRecorder::with_capacity(opts.recorder_capacity),
            _not_sync: PhantomData,
        }
    }

    /// Claim a worker slot for this rank. Called once by the runner
    /// before the rank body starts; the rank holds the slot except
    /// while parked in a blocked receive.
    pub(crate) fn acquire_worker(&self) {
        self.sched.acquire(self.rank);
    }

    /// Return this rank's worker slot to the pool for good. Called by
    /// the runner after the rank body (and its result snapshot) are
    /// done.
    pub(crate) fn release_worker(&self) {
        self.sched.release();
    }

    /// Wake every rank currently parked waiting on *this* rank, so a
    /// finishing/failing rank's peers re-check its state immediately
    /// instead of sleeping out their poll interval (the replacement
    /// for mpsc's disconnect signal). Called by the runner right after
    /// `set_done`.
    pub(crate) fn wake_ranks_blocked_on_me(&self) {
        for r in self.job.waiters_on(self.rank) {
            self.mailboxes[r].notify();
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine model virtual time is charged against.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Current virtual clock in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Schedule the un-suffixed collectives (`broadcast`, `reduce`,
    /// `allreduce`) use on this endpoint.
    pub fn collective_algo(&self) -> CollectiveAlgo {
        self.algo
    }

    /// Change the collective schedule mid-program (ablations flip this
    /// to compare tree vs linear on one endpoint).
    pub fn set_collective_algo(&mut self, algo: CollectiveAlgo) {
        self.algo = algo;
    }

    /// Whether trace events are being recorded. Layers above `Comm`
    /// gate their own span emission on this.
    pub fn trace_enabled(&self) -> bool {
        self.tracing
    }

    /// Whether this endpoint carries a metric registry. Layers above
    /// `Comm` gate their own recording on this so the disabled path
    /// never constructs a metric key.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// This rank's metric registry, when metrics are on. The runtime
    /// library and the executor record op latencies, message-size
    /// distributions, and allocator high-water marks through this one
    /// access point.
    pub fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_deref_mut()
    }

    /// Detach the registry. The runner does this when a rank finishes
    /// (snapshotting into the rank's result); engines that do
    /// out-of-band reporting collectives after the benchmarked program
    /// take it earlier, at the same point they suspend tracing, so the
    /// metric totals keep matching the stats snapshot.
    pub fn take_metrics(&mut self) -> Option<Box<MetricsRegistry>> {
        self.metrics.take()
    }

    /// The shared job state (runner-internal).
    pub(crate) fn job(&self) -> &Arc<JobState> {
        &self.job
    }

    /// The job's correlation key ([`JobId`] 0 when the launcher did
    /// not assign one).
    pub fn job_id(&self) -> JobId {
        self.job_id
    }

    /// Record one structured log event into this rank's flight
    /// recorder. Always on and allocation-free: the ring overwrites
    /// its oldest event when full, so layers above `Comm` (runtime
    /// library, executor) log freely without gating.
    pub fn log(&mut self, level: LogLevel, code: &'static str, a: u64, b: u64) {
        self.flight.record(level, code, a, b, self.clock);
    }

    /// Read-only view of this rank's flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Drain the flight recorder into an owned event list (oldest
    /// first). The runner does this when the rank finishes, moving the
    /// tail into the rank's result or failure record.
    pub fn take_flight(&mut self) -> Vec<FlightEvent> {
        let events = self.flight.events();
        self.flight = FlightRecorder::with_capacity(self.flight.capacity());
        events
    }

    /// Record one finished collective: an invocation counter labeled
    /// by collective and schedule, plus a duration histogram.
    pub(crate) fn note_collective(&mut self, name: &'static str, algo: &'static str, t0: f64) {
        let dt = self.clock - t0;
        self.log(LogLevel::Debug, "comm.collective", 0, 0);
        if let Some(m) = self.metrics.as_deref_mut() {
            m.inc("collectives_total", &[("coll", name), ("algo", algo)], 1);
            m.observe("collective_seconds", &[("coll", name)], dt);
        }
    }

    /// Stop recording trace events on this endpoint for the rest of
    /// the program. Engines call this before their out-of-band
    /// reporting collectives so trace totals keep matching the stats
    /// snapshot taken at the same point.
    pub fn suspend_tracing(&mut self) {
        self.tracing = false;
    }

    /// Record a span from `t_start` to the current clock. No-op (and
    /// no event construction — callers should pre-check
    /// [`Comm::trace_enabled`] for spans with computed names) when
    /// tracing is off.
    pub fn emit_span(&self, kind: EventKind, t_start: f64) {
        if self.tracing {
            self.sink.record(TraceEvent {
                rank: self.rank,
                t_start,
                t_end: self.clock,
                kind,
            });
        }
    }

    /// Charge `flop_units` of modeled computation (in units of one
    /// sustained flop; see `otter_machine::OpClass::weight`).
    pub fn compute(&mut self, flop_units: f64) {
        let dt = flop_units * self.machine.cpu.flop_time();
        self.clock += dt;
        self.stats.compute_time += dt;
        if self.tracing && dt > 0.0 {
            self.emit_span(EventKind::Compute, self.clock - dt);
        }
    }

    /// Advance the clock by raw virtual seconds (used by the runtime
    /// for memory-traffic charges).
    pub fn advance(&mut self, seconds: f64) {
        self.clock += seconds;
        self.stats.compute_time += seconds;
        if self.tracing && seconds > 0.0 {
            self.emit_span(EventKind::Compute, self.clock - seconds);
        }
    }

    /// One message-target validity check, shared by send and recv so
    /// the two report identically-formatted errors.
    fn check_peer(&self, target: usize, op: &'static str) -> Result<(), CommError> {
        if target >= self.size {
            return Err(CommError::RankOutOfRange {
                rank: self.rank,
                op,
                target,
                size: self.size,
            });
        }
        if target == self.rank {
            return Err(CommError::SelfMessage {
                rank: self.rank,
                op,
                target,
            });
        }
        Ok(())
    }

    /// Root validity check for the collectives (a root may be this
    /// rank, so only the range applies).
    pub(crate) fn check_root(&self, root: usize, op: &'static str) -> Result<(), CommError> {
        if root >= self.size {
            return Err(CommError::RankOutOfRange {
                rank: self.rank,
                op,
                target: root,
                size: self.size,
            });
        }
        Ok(())
    }

    /// Count one comm op against the fault plan; `Err` kills the rank
    /// here, before the op touches the wire.
    fn fault_op(&mut self) -> Result<(), CommError> {
        if let Some(f) = self.faults.as_deref_mut() {
            if f.note_op() {
                let op_index = f.ops;
                self.log(LogLevel::Error, "fault.crash", op_index, 0);
                return Err(CommError::InjectedCrash {
                    rank: self.rank,
                    op_index,
                });
            }
        }
        Ok(())
    }

    /// Blocking send of `data` to `to`.
    ///
    /// The sender is occupied for the full modeled transfer
    /// (`α + bytes·β`), matching a rendezvous-style blocking MPI send
    /// on 1998 interconnects. `concurrent` is the number of transfers
    /// the caller knows share the fabric in this phase (collectives
    /// pass their stage width; point-to-point passes 1) — it feeds the
    /// aggregate-bandwidth ceiling of bus/Ethernet fabrics.
    pub fn send_concurrent(
        &mut self,
        to: usize,
        data: &[f64],
        concurrent: usize,
    ) -> Result<(), CommError> {
        self.check_peer(to, "send to")?;
        self.fault_op()?;
        let bytes = data.len() * 8;
        let dt = self.machine.message_time(self.rank, to, bytes, concurrent);
        self.clock += dt;
        self.stats.send_time += dt;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if self.tracing {
            let seq = self.send_seq[to];
            self.send_seq[to] += 1;
            self.emit_span(
                EventKind::Send {
                    to,
                    bytes: bytes as u64,
                    seq,
                },
                self.clock - dt,
            );
        }
        if let Some(m) = self.metrics.as_deref_mut() {
            m.inc("comm_messages_total", &[], 1);
            m.inc("comm_bytes_total", &[], bytes as u64);
            m.observe("message_bytes", &[], bytes as f64);
            m.observe("send_seconds", &[], dt);
        }
        self.log(LogLevel::Debug, "comm.send", to as u64, bytes as u64);
        let mut send_clock = self.clock;
        let disposition = self.faults.as_deref_mut().map(|f| f.outgoing(to));
        match disposition {
            None | Some(SendDisposition::Deliver) => {}
            // The sender believes the send succeeded: time and
            // stats are charged, the packet just never arrives.
            Some(SendDisposition::Drop) => {
                self.log(LogLevel::Warn, "fault.drop", to as u64, bytes as u64);
                return Ok(());
            }
            Some(SendDisposition::Delay(s)) => {
                self.log(LogLevel::Warn, "fault.delay", to as u64, bytes as u64);
                send_clock += s;
            }
        }
        // A terminated receiver can never consume this message; report
        // it like the old mpsc disconnect did. Stats and time were
        // already charged above, exactly as they were when the channel
        // send failed after the charge.
        match self.job.state_of(to) {
            RankState::Finished | RankState::Failed => {
                self.log(LogLevel::Error, "comm.dead_peer", to as u64, 0);
                Err(CommError::PeerTerminated {
                    rank: self.rank,
                    peer: to,
                })
            }
            _ => {
                self.mailboxes[to].push(
                    self.rank,
                    Packet {
                        data: data.to_vec(),
                        send_clock,
                    },
                );
                self.job.note_progress();
                Ok(())
            }
        }
    }

    /// Blocking send with no known fabric sharing.
    pub fn send(&mut self, to: usize, data: &[f64]) -> Result<(), CommError> {
        self.send_concurrent(to, data, 1)
    }

    /// Block until the next packet from `from` is available. This is
    /// the scheduler's park point: a receive that finds nothing
    /// buffered publishes its blocked state to the wait-for registry,
    /// *releases its worker slot* so another virtual rank can run, and
    /// sleeps on its own mailbox condvar — re-checking the registry on
    /// every poll so deadlocks and dead peers are still diagnosed in
    /// tens of milliseconds, then re-acquiring a slot once unblocked.
    fn recv_packet(&mut self, from: usize) -> Result<Packet, CommError> {
        // Fast path: already buffered — never touches the registry or
        // the scheduler.
        if let Some(p) = self.mailboxes[self.rank].try_pop(from) {
            return Ok(p);
        }
        self.log(LogLevel::Debug, "sched.park", from as u64, 0);
        self.job.set_waiting(self.rank, from);
        self.sched.release();
        // The poll interval backs off exponentially (capped at 16x the
        // base) while nothing changes: packet arrival wakes the condvar
        // directly, so backing off only delays *detection* of deadlocks
        // and dead peers, and cuts the wakeup storm of thousands of
        // parked ranks from O(p / poll) to a trickle.
        let mut wait = self.poll;
        let wait_cap = self.poll * 16;
        // The stall clock restarts whenever the job as a whole makes
        // progress: on a starved pool a rank may legitimately sit
        // blocked for many multiples of the timeout while packets flow
        // elsewhere. Only a globally-quiet 30s is a hang.
        let mut blocked_at = Instant::now();
        let mut last_progress = self.job.progress();
        let result = loop {
            if let Some(p) = self.mailboxes[self.rank].pop_or_wait(from, wait) {
                break Ok(p);
            }
            wait = (wait * 2).min(wait_cap);
            if let Some(v) = self.job.take_verdict(self.rank) {
                match self.mailboxes[self.rank].try_pop(from) {
                    Some(p) => break Ok(p), // verdict lost the race
                    None => break Err(v),
                }
            }
            match self.job.state_of(from) {
                RankState::Finished | RankState::Failed => {
                    // Final drain: the peer may have sent just before
                    // ending.
                    match self.mailboxes[self.rank].try_pop(from) {
                        Some(p) => break Ok(p),
                        None => {
                            break Err(CommError::PeerTerminated {
                                rank: self.rank,
                                peer: from,
                            })
                        }
                    }
                }
                RankState::WaitingOn(_) => {
                    let pending = |r: usize, s: usize| self.mailboxes[r].has_from(s);
                    if let Some(err) =
                        self.job
                            .diagnose_deadlock(self.rank, from, self.confirm, pending)
                    {
                        match self.mailboxes[self.rank].try_pop(from) {
                            Some(p) => break Ok(p),
                            None => {
                                // Wake the other members so they take
                                // their verdicts now, not next poll.
                                if let CommError::Deadlock { cycle, .. } = &err {
                                    for e in cycle {
                                        if e.waiter != self.rank {
                                            self.mailboxes[e.waiter].notify();
                                        }
                                    }
                                }
                                break Err(err);
                            }
                        }
                    }
                }
                RankState::Running => {}
            }
            let progress = self.job.progress();
            if progress != last_progress {
                last_progress = progress;
                blocked_at = Instant::now();
            }
            if blocked_at.elapsed() >= self.stall {
                break Err(CommError::Stalled {
                    rank: self.rank,
                    waiting_on: from,
                    seconds: self.stall.as_secs(),
                });
            }
        };
        // Clear the published wait *before* queueing for a slot: a
        // rank that is merely waiting for a free worker must not look
        // deadlocked to a detector walking the wait-for graph.
        self.job.set_running(self.rank);
        self.sched.acquire(self.rank);
        match &result {
            Ok(_) => self.log(LogLevel::Debug, "sched.unpark", from as u64, 0),
            Err(CommError::Deadlock { waiting_on, .. }) => {
                self.log(LogLevel::Error, "comm.deadlock", *waiting_on as u64, 0)
            }
            Err(CommError::Stalled { waiting_on, .. }) => {
                self.log(LogLevel::Error, "comm.stall", *waiting_on as u64, 0)
            }
            Err(_) => self.log(LogLevel::Error, "comm.dead_peer", from as u64, 0),
        }
        result
    }

    /// Blocking receive of the next message from `from`.
    ///
    /// Virtual time: the message is available at the sender's
    /// post-transfer clock; the receiver waits if it got here early
    /// and proceeds immediately if the message was already buffered.
    pub fn recv(&mut self, from: usize) -> Result<Vec<f64>, CommError> {
        self.check_peer(from, "recv from")?;
        self.fault_op()?;
        let pkt = self.recv_packet(from)?;
        let entered_at = self.clock;
        if pkt.send_clock > self.clock {
            self.stats.wait_time += pkt.send_clock - self.clock;
            self.clock = pkt.send_clock;
            if let Some(m) = self.metrics.as_deref_mut() {
                m.observe("recv_wait_seconds", &[], self.clock - entered_at);
            }
        }
        if self.tracing {
            let seq = self.recv_seq[from];
            self.recv_seq[from] += 1;
            self.emit_span(
                EventKind::Recv {
                    from,
                    bytes: (pkt.data.len() * 8) as u64,
                    seq,
                },
                entered_at,
            );
        }
        self.log(
            LogLevel::Debug,
            "comm.recv",
            from as u64,
            (pkt.data.len() * 8) as u64,
        );
        Ok(pkt.data)
    }

    /// Send a single scalar.
    pub fn send_scalar(&mut self, to: usize, v: f64) -> Result<(), CommError> {
        self.send(to, &[v])
    }

    /// Receive a single scalar.
    pub fn recv_scalar(&mut self, from: usize) -> Result<f64, CommError> {
        let d = self.recv(from)?;
        if d.len() != 1 {
            return Err(CommError::PayloadMismatch {
                rank: self.rank,
                from,
                expected: 1,
                got: d.len(),
            });
        }
        Ok(d[0])
    }
}

#[cfg(test)]
mod tests {
    use crate::runner::{run_spmd, run_spmd_with, SpmdOptions};
    use otter_machine::{meiko_cs2, sparc20_cluster};
    use otter_trace::{timelines, EventKind, MemorySink, TraceSink};
    use std::sync::Arc;

    #[test]
    fn ping_pong_delivers_data() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0, 2.0, 3.0])?;
                c.recv(1)
            } else {
                let v = c.recv(0)?;
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                c.send(0, &doubled)?;
                Ok(doubled)
            }
        });
        assert_eq!(res[0].value, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn virtual_clock_advances_on_messages() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.send(1, &vec![0.0; 1000])?;
            } else {
                c.recv(0)?;
            }
            Ok(c.clock())
        });
        let m = meiko_cs2();
        let expect = m.message_time(0, 1, 8000, 1);
        assert!((res[0].value - expect).abs() < 1e-12);
        // Receiver clock is at least the full transfer time too.
        assert!(res[1].value >= expect);
    }

    #[test]
    fn receiver_waits_for_late_sender() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.compute(1e6); // sender is busy first
                c.send(1, &[42.0])?;
            } else {
                c.recv(0)?;
            }
            Ok(c.clock())
        });
        // Receiver's clock must include the sender's compute phase.
        assert!(res[1].value >= res[0].value * 0.99);
    }

    #[test]
    fn early_receiver_does_not_double_charge() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0])?;
                Ok(0.0)
            } else {
                c.compute(1e7); // receiver is the late one
                let before = c.clock();
                c.recv(0)?;
                Ok(c.clock() - before)
            }
        });
        // Message was already there: no extra virtual wait.
        assert_eq!(res[1].value, 0.0);
    }

    #[test]
    fn compute_charges_flop_time() {
        let res = run_spmd(&meiko_cs2(), 1, |c| {
            c.compute(25e6);
            Ok(c.clock())
        });
        assert!(
            (res[0].value - 1.0).abs() < 1e-9,
            "25 Mflop at 25 Mflop/s = 1 s"
        );
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0, 2.0])?;
                c.send(1, &[3.0])?;
            } else {
                c.recv(0)?;
                c.recv(0)?;
            }
            Ok(c.stats())
        });
        assert_eq!(res[0].value.messages_sent, 2);
        assert_eq!(res[0].value.bytes_sent, 24);
        assert_eq!(res[1].value.messages_sent, 0);
    }

    #[test]
    fn stats_split_send_and_wait_time() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                c.compute(1e6);
                c.send(1, &vec![0.0; 1000])?;
            } else {
                c.recv(0)?; // arrives early, waits for the busy sender
            }
            Ok(c.stats())
        });
        let s0 = res[0].value;
        let s1 = res[1].value;
        assert!(s0.send_time > 0.0);
        assert_eq!(s0.wait_time, 0.0);
        assert_eq!(s1.send_time, 0.0);
        assert!(s1.wait_time > 0.0);
        // Every second of each rank's clock is accounted for.
        for (s, r) in [(s0, &res[0]), (s1, &res[1])] {
            let total = s.compute_time + s.comm_time();
            assert!((total - r.clock).abs() < 1e-12);
        }
    }

    #[test]
    fn messages_from_same_source_keep_order() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            if c.rank() == 0 {
                for i in 0..100 {
                    c.send_scalar(1, i as f64)?;
                }
                Ok(vec![])
            } else {
                (0..100).map(|_| c.recv_scalar(0)).collect()
            }
        });
        let got = &res[1].value;
        assert!(got.iter().enumerate().all(|(i, &v)| v == i as f64));
    }

    #[test]
    fn cluster_inter_node_messages_cost_more() {
        let m = sparc20_cluster();
        let res = run_spmd(&m, 8, |c| {
            match c.rank() {
                0 => c.send(1, &vec![0.0; 4096])?, // intra-node
                1 => {
                    c.recv(0)?;
                }
                2 => c.send(6, &vec![0.0; 4096])?, // inter-node
                6 => {
                    c.recv(2)?;
                }
                _ => {}
            }
            Ok(c.clock())
        });
        assert!(
            res[2].value > 20.0 * res[0].value,
            "inter={} intra={}",
            res[2].value,
            res[0].value
        );
    }

    #[test]
    fn traced_run_records_matching_events() {
        let sink = Arc::new(MemorySink::new());
        let opts = SpmdOptions {
            trace: Some(sink.clone() as Arc<dyn otter_trace::TraceSink>),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 2, opts, |c| {
            if c.rank() == 0 {
                c.compute(1e6);
                c.send(1, &[1.0, 2.0])?;
            } else {
                c.recv(0)?;
            }
            Ok(c.stats())
        })
        .unwrap();
        let events = sink.snapshot().unwrap();
        let sends: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .collect();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].rank, 0);
        assert!(matches!(
            sends[0].kind,
            EventKind::Send {
                to: 1,
                bytes: 16,
                seq: 0
            }
        ));
        // Timeline totals equal the always-on stats, per rank.
        for t in timelines(&events) {
            let s = res[t.rank].value;
            assert!(
                (t.compute - s.compute_time).abs() < 1e-12,
                "rank {}",
                t.rank
            );
            assert!((t.comm - s.send_time).abs() < 1e-12);
            assert!((t.idle - s.wait_time).abs() < 1e-12);
        }
    }

    #[test]
    fn untraced_run_is_untouched() {
        let sink = Arc::new(MemorySink::new());
        // No trace in the options: Comm must not see the sink at all.
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            assert!(!c.trace_enabled());
            if c.rank() == 0 {
                c.send(1, &[1.0])?;
            } else {
                c.recv(0)?;
            }
            Ok(c.clock())
        });
        assert!(res[0].value > 0.0);
        assert!(sink.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_out_of_range_panics() {
        run_spmd(&meiko_cs2(), 1, |c| c.send(5, &[1.0]));
    }

    #[test]
    fn relay_chain_completes_on_one_worker() {
        // Ranks 1..6 all block in recv immediately; rank 0 starts the
        // relay. On a one-worker pool this only terminates if every
        // blocked recv genuinely parks (releases its worker slot) —
        // a rank that held its worker while blocked would starve the
        // sender forever.
        let p = 6;
        let opts = SpmdOptions {
            workers: Some(1),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), p, opts, |c| {
            if c.rank() == 0 {
                c.send_scalar(1, 1.0)?;
                c.recv_scalar(p - 1)
            } else {
                let v = c.recv_scalar(c.rank() - 1)?;
                c.send_scalar((c.rank() + 1) % p, v + 1.0)?;
                Ok(v)
            }
        })
        .unwrap();
        assert_eq!(res[0].value, p as f64); // went all the way around
        for r in res.iter().skip(1) {
            assert_eq!(r.value, r.rank as f64);
        }
    }

    #[test]
    fn self_message_is_a_typed_error() {
        let res = run_spmd_with(&meiko_cs2(), 1, SpmdOptions::default(), |c| c.recv(0));
        let failure = res.unwrap_err();
        let e = &failure.report.failures[0].error;
        assert_eq!(e.code(), "self_message");
        assert!(e.to_string().contains("self-message"), "{e}");
    }

    #[test]
    fn scalar_payload_mismatch_is_typed() {
        let res = run_spmd_with(&meiko_cs2(), 2, SpmdOptions::default(), |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0, 2.0])?;
                Ok(0.0)
            } else {
                c.recv_scalar(0)
            }
        });
        let failure = res.unwrap_err();
        let f = failure
            .report
            .failures
            .iter()
            .find(|f| f.rank == 1)
            .unwrap();
        assert_eq!(f.error.code(), "payload_mismatch");
        assert!(f.error.to_string().contains("expected 1"), "{}", f.error);
    }
}
