//! The daemon: a Unix-socket accept loop over the artifact cache, the
//! job gate, and the metrics registry, plus a minimal HTTP listener
//! for Prometheus scrapes.
//!
//! One thread per connection; a connection is a session of
//! newline-delimited `otter-serve/v1` requests. Compiles go through
//! the shared [`ArtifactCache`] (so concurrent sessions warm each
//! other), runs are admitted onto the worker budget through a
//! [`JobGate`] (so ten simultaneous jobs share the host instead of
//! each claiming full parallelism), and every job updates the
//! `serve_*` metric families. The stats endpoint speaks plain HTTP
//! GET → Prometheus text exposition, so `curl` works against it.

use crate::cache::ArtifactCache;
use crate::proto::{err_response, machine_by_name, ok_response, Request, SERVE_SCHEMA};
use otter_core::{build_postmortem, try_run, write_postmortem, RunRequest};
use otter_log::{FlightEvent, FlightRecorder, JobId, LogLevel};
use otter_metrics::{expo, Json, MetricsRegistry, MetricsSnapshot};
use otter_mpi::JobGate;
use otter_trace::MemorySink;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Rows retained in the `GET /jobs` recent-job table.
const RECENT_JOBS_CAP: usize = 64;
/// Chrome traces retained for `GET /trace/<job_id>` (each can be
/// large, so the LRU is deliberately small).
const TRACE_LRU_CAP: usize = 8;
/// Daemon-side flight-recorder ring size (the `logs` op's backing
/// store: one event per handled request).
const SERVE_RECORDER_CAPACITY: usize = 256;

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the Unix-domain job socket (created at bind, removed at
    /// shutdown).
    pub socket: PathBuf,
    /// Worker budget shared by all concurrent jobs (the [`JobGate`]
    /// total). Defaults to host parallelism.
    pub workers: usize,
    /// Artifact-cache capacity (entries).
    pub cache_capacity: usize,
    /// TCP address for the Prometheus stats endpoint, e.g.
    /// `127.0.0.1:9464`; `None` disables HTTP.
    pub metrics_addr: Option<String>,
    /// Directory for postmortem bundles of failed SPMD jobs (created
    /// on first failure).
    pub postmortem_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: std::env::temp_dir().join(format!("otterd-{}.sock", std::process::id())),
            workers: otter_mpi::default_workers(),
            cache_capacity: 64,
            metrics_addr: None,
            postmortem_dir: std::env::temp_dir()
                .join(format!("otterd-{}-postmortem", std::process::id())),
        }
    }
}

impl ServeConfig {
    /// Parse `--socket PATH --workers W --cache N --metrics-addr A
    /// --postmortem-dir D` (shared by `otterd` and `harness serve`).
    /// Unknown flags are a typed error, not silently ignored.
    pub fn from_args(args: &[String]) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("`{flag}` needs a value"))
            };
            match a.as_str() {
                "--socket" => cfg.socket = PathBuf::from(value("--socket")?),
                "--workers" => {
                    cfg.workers = value("--workers")?
                        .parse()
                        .ok()
                        .filter(|&w: &usize| w >= 1)
                        .ok_or("`--workers` must be a positive integer")?;
                }
                "--cache" => {
                    cfg.cache_capacity = value("--cache")?
                        .parse()
                        .ok()
                        .filter(|&c: &usize| c >= 1)
                        .ok_or("`--cache` must be a positive integer")?;
                }
                "--metrics-addr" => cfg.metrics_addr = Some(value("--metrics-addr")?),
                "--postmortem-dir" => {
                    cfg.postmortem_dir = PathBuf::from(value("--postmortem-dir")?);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// One row of the `GET /jobs` recent-job table.
struct JobRecord {
    job_id: JobId,
    op: &'static str,
    cache_hit: bool,
    latency_seconds: f64,
    /// `ok` | `failed` (SPMD failure, postmortem written) | `error`
    /// (compile or protocol error).
    status: &'static str,
    postmortem: Option<PathBuf>,
}

/// Shared daemon state: everything a connection thread touches.
struct ServerState {
    cache: Mutex<ArtifactCache>,
    gate: JobGate,
    /// `serve_*` families (cache traffic, latencies, job counts).
    metrics: Mutex<MetricsRegistry>,
    /// Merged per-job engine metrics (only jobs that asked for them).
    job_metrics: Mutex<MetricsSnapshot>,
    /// Recent jobs, oldest first (the `GET /jobs` table).
    jobs: Mutex<VecDeque<JobRecord>>,
    /// Chrome traces of recent `trace: true` runs, LRU order
    /// (back = most recently used).
    traces: Mutex<Vec<(JobId, String)>>,
    /// The daemon's own flight recorder: one event per handled
    /// request, served by the `logs` op.
    flight: Mutex<FlightRecorder>,
    /// Where postmortem bundles of failed jobs land.
    postmortem_dir: PathBuf,
    /// Wall-clock origin of the `flight` ring's event clocks.
    started: Instant,
    stop: AtomicBool,
}

impl ServerState {
    /// The full exposition: `serve_*` families plus cache gauges plus
    /// any merged job metrics.
    fn exposition(&self) -> String {
        let mut snap = self.metrics.lock().unwrap().snapshot();
        {
            let cache = self.cache.lock().unwrap();
            let mut reg = MetricsRegistry::new();
            reg.inc("serve_cache_hits_total", &[], cache.hits());
            reg.inc("serve_cache_misses_total", &[], cache.misses());
            reg.inc("serve_cache_evictions_total", &[], cache.evictions());
            reg.gauge_max("serve_cache_entries", &[], cache.len() as f64);
            reg.gauge_max("serve_workers_total", &[], self.gate.total() as f64);
            snap.merge_from(&reg.snapshot());
        }
        snap.merge_from(&self.job_metrics.lock().unwrap());
        expo(&snap)
    }

    /// Append a row to the recent-job table, evicting the oldest past
    /// capacity.
    fn push_job(&self, record: JobRecord) {
        let mut jobs = self.jobs.lock().unwrap();
        if jobs.len() == RECENT_JOBS_CAP {
            jobs.pop_front();
        }
        jobs.push_back(record);
    }

    /// The `GET /jobs` body: recent jobs as a JSON array, newest
    /// first.
    fn jobs_json(&self) -> String {
        let jobs = self.jobs.lock().unwrap();
        let rows: Vec<Json> = jobs
            .iter()
            .rev()
            .map(|j| {
                Json::Obj(vec![
                    ("job_id".to_string(), Json::Str(j.job_id.to_string())),
                    ("op".to_string(), Json::Str(j.op.to_string())),
                    ("cache_hit".to_string(), Json::Bool(j.cache_hit)),
                    ("latency_seconds".to_string(), Json::Num(j.latency_seconds)),
                    ("status".to_string(), Json::Str(j.status.to_string())),
                    (
                        "postmortem".to_string(),
                        match &j.postmortem {
                            Some(p) => Json::Str(p.display().to_string()),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(SERVE_SCHEMA.to_string())),
            ("jobs".to_string(), Json::Arr(rows)),
        ])
        .to_string()
    }

    /// Retain a completed run's Chrome trace for `GET /trace/<id>`.
    fn retain_trace(&self, job_id: JobId, trace: String) {
        let mut traces = self.traces.lock().unwrap();
        traces.retain(|(id, _)| *id != job_id);
        traces.push((job_id, trace));
        if traces.len() > TRACE_LRU_CAP {
            traces.remove(0);
        }
    }

    /// Look up a retained trace, refreshing its LRU position.
    fn trace_for(&self, job_id: JobId) -> Option<String> {
        let mut traces = self.traces.lock().unwrap();
        let idx = traces.iter().position(|(id, _)| *id == job_id)?;
        let entry = traces.remove(idx);
        let body = entry.1.clone();
        traces.push(entry);
        Some(body)
    }

    /// Record one handled request in the daemon flight recorder.
    fn log_request(&self, level: LogLevel, code: &'static str, a: u64, b: u64) {
        let clock = self.started.elapsed().as_secs_f64();
        self.flight.lock().unwrap().record(level, code, a, b, clock);
    }
}

/// A flight-recorder event in the wire/bundle JSON shape.
fn flight_event_json(ev: &FlightEvent) -> Json {
    Json::Obj(vec![
        ("seq".to_string(), Json::Num(ev.seq as f64)),
        ("clock".to_string(), Json::Num(ev.clock)),
        (
            "level".to_string(),
            Json::Str(ev.level.as_str().to_string()),
        ),
        ("code".to_string(), Json::Str(ev.code.to_string())),
        ("a".to_string(), Json::Num(ev.a as f64)),
        ("b".to_string(), Json::Num(ev.b as f64)),
    ])
}

/// An error response that still carries correlation fields (`job_id`,
/// `postmortem`) alongside the message.
fn err_response_with(message: String, mut extra: Vec<(String, Json)>) -> Json {
    let mut all = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("schema".to_string(), Json::Str(SERVE_SCHEMA.to_string())),
        ("error".to_string(), Json::Str(message)),
    ];
    all.append(&mut extra);
    Json::Obj(all)
}

/// A handle for stopping a running server (from a signal handler's
/// flag, a test, or the `shutdown` op itself).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Ask the accept loop to wind down; `Server::run` returns soon
    /// after.
    pub fn request_stop(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
    }

    /// True once a stop was requested.
    pub fn stopping(&self) -> bool {
        self.state.stop.load(Ordering::SeqCst)
    }
}

/// A bound (but not yet running) daemon.
pub struct Server {
    cfg: ServeConfig,
    listener: UnixListener,
    http: Option<std::net::TcpListener>,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the job socket (replacing a stale socket file) and the
    /// optional HTTP stats listener.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        let http = match &cfg.metrics_addr {
            Some(addr) => {
                let l = std::net::TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let state = Arc::new(ServerState {
            cache: Mutex::new(ArtifactCache::new(cfg.cache_capacity)),
            gate: JobGate::new(cfg.workers),
            metrics: Mutex::new(MetricsRegistry::new()),
            job_metrics: Mutex::new(MetricsSnapshot::default()),
            jobs: Mutex::new(VecDeque::with_capacity(RECENT_JOBS_CAP)),
            traces: Mutex::new(Vec::new()),
            flight: Mutex::new(FlightRecorder::with_capacity(SERVE_RECORDER_CAPACITY)),
            postmortem_dir: cfg.postmortem_dir.clone(),
            started: Instant::now(),
            stop: AtomicBool::new(false),
        });
        Ok(Server {
            cfg,
            listener,
            http,
            state,
        })
    }

    /// The bound HTTP stats address (useful when the config asked for
    /// port 0).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The job socket path.
    pub fn socket(&self) -> &PathBuf {
        &self.cfg.socket
    }

    /// A stop handle (clone freely; see [`ServerHandle`]).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Accept connections until a stop is requested, then remove the
    /// socket file and return. Connection threads run detached; the
    /// protocol is request/response, so in-flight jobs finish their
    /// write before noticing the closed listener.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            if self.state.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut idle = true;
            match self.listener.accept() {
                Ok((stream, _)) => {
                    idle = false;
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || handle_connection(stream, &state));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(e),
            }
            if let Some(http) = &self.http {
                match http.accept() {
                    Ok((stream, _)) => {
                        idle = false;
                        let state = Arc::clone(&self.state);
                        std::thread::spawn(move || handle_http(stream, &state));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
            }
            if idle {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let _ = std::fs::remove_file(&self.cfg.socket);
        Ok(())
    }
}

/// One job-socket session: lines in, lines out.
fn handle_connection(stream: UnixStream, state: &Arc<ServerState>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Json::parse(&line).map_err(|e| format!("bad JSON: {e}")) {
            Err(e) => err_response(e),
            Ok(json) => match Request::from_json(&json) {
                Err(e) => err_response(e),
                Ok(req) => dispatch(&req, state),
            },
        };
        let mut text = response.to_string();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Execute one request against the shared state. Compile and run
/// requests mint a [`JobId`] at ingress: the same key then appears in
/// the response, the recent-job table, any retained trace, any
/// postmortem bundle, and the engine's own flight recorders.
fn dispatch(req: &Request, state: &Arc<ServerState>) -> Json {
    let job_started = Instant::now();
    state
        .metrics
        .lock()
        .unwrap()
        .inc("serve_jobs_total", &[("op", req.op())], 1);
    let (response, job_id) = match req {
        Request::Ping => (ok_response(vec![]), None),
        Request::Shutdown => {
            state.stop.store(true, Ordering::SeqCst);
            (
                ok_response(vec![("stopping".to_string(), Json::Bool(true))]),
                None,
            )
        }
        Request::Metrics => (
            ok_response(vec![("text".to_string(), Json::Str(state.exposition()))]),
            None,
        ),
        Request::Logs { level } => {
            let events = state.flight.lock().unwrap().filtered(*level);
            (
                ok_response(vec![(
                    "events".to_string(),
                    Json::Arr(events.iter().map(flight_event_json).collect()),
                )]),
                None,
            )
        }
        Request::Stats => {
            let cache = state.cache.lock().unwrap();
            let fields = vec![
                ("cache_entries".to_string(), Json::Num(cache.len() as f64)),
                ("cache_hits".to_string(), Json::Num(cache.hits() as f64)),
                ("cache_misses".to_string(), Json::Num(cache.misses() as f64)),
                (
                    "cache_evictions".to_string(),
                    Json::Num(cache.evictions() as f64),
                ),
                (
                    "workers_total".to_string(),
                    Json::Num(state.gate.total() as f64),
                ),
                (
                    "workers_available".to_string(),
                    Json::Num(state.gate.available() as f64),
                ),
            ];
            drop(cache);
            (ok_response(fields), None)
        }
        Request::Compile { source, options } => {
            let job_id = JobId::mint();
            let response = match compile_cached(state, source, options) {
                Err(e) => err_response_with(
                    e,
                    vec![("job_id".to_string(), Json::Str(job_id.to_string()))],
                ),
                Ok((artifact, mut fields)) => {
                    fields.push(("job_id".to_string(), Json::Str(job_id.to_string())));
                    fields.push(spans_field(job_id, &["compile"]));
                    fields.push((
                        "ir_instrs".to_string(),
                        Json::Num(artifact.compiled().ir.instr_count() as f64),
                    ));
                    ok_response(fields)
                }
            };
            (response, Some(job_id))
        }
        Request::Run {
            source,
            options,
            machine,
            ranks,
            workers,
        } => {
            let job_id = JobId::mint();
            (
                run_job(state, source, options, machine, *ranks, *workers, job_id),
                Some(job_id),
            )
        }
    };
    let latency_seconds = job_started.elapsed().as_secs_f64();
    state.metrics.lock().unwrap().observe(
        "serve_job_seconds",
        &[("op", req.op())],
        latency_seconds,
    );
    let ok = matches!(response.get("ok"), Some(Json::Bool(true)));
    if let Some(job_id) = job_id {
        let postmortem = response
            .get("postmortem")
            .and_then(Json::as_str)
            .map(PathBuf::from);
        let status = if ok {
            "ok"
        } else if postmortem.is_some() {
            "failed"
        } else {
            "error"
        };
        state.push_job(JobRecord {
            job_id,
            op: req.op(),
            cache_hit: matches!(response.get("cache_hit"), Some(Json::Bool(true))),
            latency_seconds,
            status,
            postmortem,
        });
    }
    let (level, code): (LogLevel, &'static str) = match (req, ok) {
        (Request::Compile { .. }, true) => (LogLevel::Info, "serve.compile"),
        (Request::Compile { .. }, false) => (LogLevel::Error, "serve.compile_error"),
        (Request::Run { .. }, true) => (LogLevel::Info, "serve.run"),
        (Request::Run { .. }, false) => (LogLevel::Error, "serve.run_failed"),
        (_, false) => (LogLevel::Warn, "serve.request_error"),
        (Request::Shutdown, true) => (LogLevel::Info, "serve.shutdown"),
        (_, true) => (LogLevel::Debug, "serve.request"),
    };
    state.log_request(
        level,
        code,
        job_id.map_or(0, |id| id.0),
        (latency_seconds * 1e6) as u64,
    );
    response
}

/// The `spans` response field: per-phase [`otter_log::SpanId`]s chained
/// off the job's root span, so clients can attribute phase timings to
/// one correlation key without any server-side span table. Span 0 is
/// always the request itself; `phases` name the spans after it, in
/// order.
fn spans_field(job_id: JobId, phases: &[&str]) -> (String, Json) {
    let mut span = otter_log::SpanId::root(job_id);
    let mut obj = vec![("request".to_string(), Json::Str(span.to_string()))];
    for phase in phases {
        span = span.next();
        obj.push((phase.to_string(), Json::Str(span.to_string())));
    }
    ("spans".to_string(), Json::Obj(obj))
}

/// Compile through the shared cache; returns the artifact plus the
/// response fields every compile-bearing op shares.
#[allow(clippy::type_complexity)]
fn compile_cached(
    state: &Arc<ServerState>,
    source: &str,
    options: &crate::proto::JobOptions,
) -> Result<(otter_core::CompiledArtifact, Vec<(String, Json)>), String> {
    let eopts = options.to_engine_options();
    let (artifact, outcome) = state
        .cache
        .lock()
        .unwrap()
        .get_or_compile(source, &eopts)
        .map_err(|e| e.to_string())?;
    let hit_label = if outcome.cache_hit { "true" } else { "false" };
    state.metrics.lock().unwrap().observe(
        "serve_compile_seconds",
        &[("cache_hit", hit_label)],
        outcome.compile_seconds,
    );
    Ok((
        artifact.clone(),
        vec![
            ("cache_hit".to_string(), Json::Bool(outcome.cache_hit)),
            (
                "compile_seconds".to_string(),
                Json::Num(outcome.compile_seconds),
            ),
            (
                "source_hash".to_string(),
                Json::Str(format!("{:016x}", artifact.source_hash())),
            ),
            (
                "options_fingerprint".to_string(),
                Json::Str(format!("{:016x}", artifact.options_fingerprint())),
            ),
        ],
    ))
}

/// A full compile-and-run job, correlated under `job_id`.
#[allow(clippy::too_many_arguments)]
fn run_job(
    state: &Arc<ServerState>,
    source: &str,
    options: &crate::proto::JobOptions,
    machine: &str,
    ranks: usize,
    workers: Option<usize>,
    job_id: JobId,
) -> Json {
    let id_field = ("job_id".to_string(), Json::Str(job_id.to_string()));
    let machine = match machine_by_name(machine) {
        Ok(m) => m,
        Err(e) => return err_response_with(e, vec![id_field]),
    };
    let (artifact, mut fields) = match compile_cached(state, source, options) {
        Ok(pair) => pair,
        Err(e) => return err_response_with(e, vec![id_field]),
    };
    fields.push(id_field.clone());
    fields.push(spans_field(job_id, &["compile", "run"]));
    // Admission: take workers from the shared budget for the duration
    // of the run (released on drop, even if the job fails).
    let permit = state.gate.admit(workers.unwrap_or(ranks));
    let run_started = Instant::now();
    let mut req = RunRequest::on(machine, ranks)
        .with_workers(permit.workers())
        .with_job_id(job_id);
    let sink = if options.trace {
        let sink = Arc::new(MemorySink::new());
        req = req.with_trace(Arc::clone(&sink));
        Some(sink)
    } else {
        None
    };
    let outcome = try_run(&artifact, &req);
    let run_seconds = run_started.elapsed().as_secs_f64();
    drop(permit);
    // Whatever the outcome, retain the Chrome trace (on failure it
    // shows the run right up to the fatal event).
    if let Some(sink) = sink {
        state.retain_trace(job_id, otter_trace::chrome_trace(&sink.take()));
    }
    state
        .metrics
        .lock()
        .unwrap()
        .observe("serve_run_seconds", &[], run_seconds);
    fields.push(("run_seconds".to_string(), Json::Num(run_seconds)));
    match outcome {
        Err(e) => err_response_with(e.to_string(), vec![id_field]),
        Ok(Err(failure)) => {
            // Assemble and persist the postmortem bundle; a disk error
            // must not mask the job failure itself.
            let bundle = build_postmortem(&artifact, &failure);
            let mut extra = vec![id_field];
            match write_postmortem(&state.postmortem_dir, &bundle) {
                Ok(path) => extra.push((
                    "postmortem".to_string(),
                    Json::Str(path.display().to_string()),
                )),
                Err(e) => extra.push((
                    "postmortem_error".to_string(),
                    Json::Str(format!("failed to write postmortem bundle: {e}")),
                )),
            }
            err_response_with(format!("SPMD job failed: {}", failure.report), extra)
        }
        Ok(Ok(report)) => {
            if let Some(m) = &report.metrics {
                state.job_metrics.lock().unwrap().merge_from(m);
            }
            let mut scalars: Vec<(String, Json)> = report
                .workspace
                .keys()
                .filter_map(|name| report.scalar(name).map(|v| (name.clone(), Json::Num(v))))
                .collect();
            scalars.sort_by(|a, b| a.0.cmp(&b.0));
            fields.push((
                "modeled_seconds".to_string(),
                Json::Num(report.modeled_seconds),
            ));
            fields.push(("messages".to_string(), Json::Num(report.messages as f64)));
            fields.push(("bytes".to_string(), Json::Num(report.bytes as f64)));
            fields.push(("output".to_string(), Json::Str(report.output.clone())));
            fields.push(("scalars".to_string(), Json::Obj(scalars)));
            ok_response(fields)
        }
    }
}

/// Minimal HTTP, enough for `curl` and a scraper:
/// `GET /metrics` (Prometheus exposition), `GET /jobs` (recent-job
/// table), `GET /trace/<job_id>` (retained Chrome trace); everything
/// else gets a 404.
fn handle_http(mut stream: std::net::TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 4096];
    let n = match stream.read(&mut buf) {
        Ok(n) => n,
        Err(_) => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let first = request.lines().next().unwrap_or("");
    let response = if first.starts_with("GET /metrics") || first.starts_with("GET / ") {
        http_ok("text/plain; version=0.0.4", state.exposition())
    } else if first.starts_with("GET /jobs") {
        http_ok("application/json", state.jobs_json())
    } else if let Some(rest) = first.strip_prefix("GET /trace/") {
        let id = rest.split_whitespace().next().unwrap_or("");
        match otter_log::JobId::parse(id).and_then(|id| state.trace_for(id)) {
            Some(trace) => http_ok("application/json", trace),
            None => http_404(format!(
                "{SERVE_SCHEMA}: no trace retained for job `{id}`\n"
            )),
        }
    } else {
        http_404(format!(
            "{SERVE_SCHEMA}: GET /metrics, /jobs, or /trace/<job_id>\n"
        ))
    };
    let _ = stream.write_all(response.as_bytes());
}

fn http_ok(content_type: &str, body: String) -> String {
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        content_type,
        body.len(),
        body
    )
}

fn http_404(body: String) -> String {
    format!(
        "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
}
