//! # otter-mpi
//!
//! Message-passing substrate for Otter-compiled SPMD programs: the
//! stand-in for the MPI library of the paper's Figure 1 stack
//! (`MATLAB script → compiler → SPMD C + run-time library → MPI`).
//!
//! Each *rank* is an OS thread holding a [`Comm`] endpoint wired to
//! every other rank through lock-free channels, so compiled programs
//! really move data between really-parallel threads. On top of the
//! real execution, every endpoint maintains a **virtual clock**
//! charged against an [`otter_machine::Machine`] model: compute
//! advances the local clock, a message delivers at
//! `max(receiver clock, sender clock + α + bytes·β)` — a conservative
//! parallel-discrete-event simulation. This is how the repo reproduces
//! the paper's speedup curves for hardware that no longer exists
//! (Meiko CS-2, SPARC-20 Ethernet cluster, Enterprise SMP) while still
//! computing real answers.
//!
//! Failures are data, not panics: every fallible operation returns a
//! typed [`CommError`], blocked receives publish themselves into a
//! shared wait-for registry so deadlocks are *diagnosed* (with the
//! full cycle) instead of timed out, and [`run_spmd_with`] returns a
//! [`JobResult`] whose error carries a per-rank [`FailureReport`]
//! plus the surviving ranks' complete results. A seeded [`FaultPlan`]
//! in [`SpmdOptions`] deterministically drops, delays, or crashes to
//! exercise those paths end-to-end.
//!
//! ```
//! use otter_mpi::{run_spmd, ReduceOp};
//! use otter_machine::meiko_cs2;
//!
//! let results = run_spmd(&meiko_cs2(), 4, |comm| {
//!     let mine = vec![comm.rank() as f64 + 1.0];
//!     let total = comm.allreduce(&mine, ReduceOp::Sum)?;
//!     Ok(total[0])
//! });
//! assert!(results.iter().all(|r| r.value == 10.0));
//! ```

pub mod collectives;
pub mod comm;
pub mod error;
pub mod fault;
pub mod runner;
mod state;

pub use collectives::{CollectiveAlgo, ReduceOp};
pub use comm::{Comm, CommStats};
pub use error::{CommError, WaitEdge};
pub use fault::{FaultAction, FaultPlan};
pub use runner::{
    job_time, run_spmd, run_spmd_with, FailureReport, JobFailure, JobResult, RankFailure,
    RankResult, SpmdOptions,
};
