//! Passes 4 and 5 — expression rewriting and owner-computes guards.
//!
//! Pass 4 (paper §3): "the compiler is able to determine which terms
//! and subexpressions may involve interprocessor communication. The
//! compiler must modify the AST to bring these terms and
//! subexpressions to the statement level, where they can be translated
//! into calls to the run-time library. After this has been done, some
//! element-wise matrix operations may remain [emitted as for-loops]."
//!
//! Pass 5: statements manipulating individual matrix elements are
//! wrapped in the `ML_owner` conditional so only the owning processor
//! stores; every *remote* element read becomes an `ML_broadcast`.
//!
//! Lowering therefore turns the typed AST into [`otter_ir`]
//! instructions: communication-bearing operations become run-time
//! library calls with fresh `ML_tmp*` destinations, element-wise
//! arithmetic stays fused in [`EwExpr`] trees (one emitted loop per
//! statement), and replicated scalar arithmetic becomes plain
//! [`SExpr`]s.

use crate::error::{CodegenError, Result};
use otter_analysis::infer::binary_result_type;
use otter_analysis::{Dim, Inference, RankTy, ScopeTypes, VarTy};
use otter_frontend::ast::*;
use otter_frontend::Span;
use otter_ir::*;

/// Lower a resolved + SSA-renamed + inferred program to IR.
pub fn lower(program: &Program, inference: &Inference) -> Result<IrProgram> {
    let mut ir = IrProgram::default();
    let mut cx = Cx {
        inference,
        types: &inference.script_vars,
        tmp: 0,
        self_elem: None,
        def_spans: Default::default(),
    };
    ir.main = cx.lower_block(&program.script)?;
    ir.def_spans = std::mem::take(&mut cx.def_spans);
    for (name, ty) in &inference.script_vars {
        ir.var_ranks.insert(name.clone(), rank_of(ty));
        if ty.rank == RankTy::Matrix {
            ir.var_shapes.insert(name.clone(), ty.shape);
        }
        if let Some(k) = ty.konst {
            ir.var_consts.insert(name.clone(), k);
        }
    }
    // Temps introduced during lowering.
    for name in cx.tmp_ranks_drain() {
        ir.var_ranks.insert(name.0, name.1);
    }
    for f in &program.functions {
        let Some(sig) = inference.functions.get(&f.name) else {
            // Function present but never called: skip it (the paper's
            // compiler only emits reachable code).
            continue;
        };
        let mut fcx = Cx {
            inference,
            types: &sig.vars,
            tmp: 0,
            self_elem: None,
            def_spans: Default::default(),
        };
        let body = fcx.lower_block(&f.body)?;
        let mut var_ranks: std::collections::BTreeMap<String, VarRank> = sig
            .vars
            .iter()
            .map(|(n, t)| (n.clone(), rank_of(t)))
            .collect();
        for (n, r) in fcx.tmp_ranks_drain() {
            var_ranks.insert(n, r);
        }
        let mut var_shapes = std::collections::BTreeMap::new();
        let mut var_consts = std::collections::BTreeMap::new();
        for (n, t) in &sig.vars {
            if t.rank == RankTy::Matrix {
                var_shapes.insert(n.clone(), t.shape);
            }
            if let Some(k) = t.konst {
                var_consts.insert(n.clone(), k);
            }
        }
        ir.functions.insert(
            f.name.clone(),
            IrFunction {
                name: f.name.clone(),
                params: f
                    .params
                    .iter()
                    .zip(&sig.params)
                    .map(|(n, t)| (n.clone(), rank_of(t)))
                    .collect(),
                outs: f
                    .outs
                    .iter()
                    .zip(&sig.outs)
                    .map(|(n, t)| (n.clone(), rank_of(t)))
                    .collect(),
                body,
                var_ranks,
                def_spans: std::mem::take(&mut fcx.def_spans),
                var_shapes,
                var_consts,
                in_place: Default::default(),
            },
        );
    }
    Ok(ir)
}

fn rank_of(t: &VarTy) -> VarRank {
    match t.rank {
        RankTy::Matrix => VarRank::Matrix,
        _ => VarRank::Scalar,
    }
}

/// A lowered expression fragment.
#[derive(Debug, Clone)]
enum Frag {
    /// Replicated scalar.
    S(SExpr),
    /// Element-wise tree over aligned matrices (at least one `Mat`).
    E(EwExpr),
}

struct Cx<'a> {
    #[allow(dead_code)]
    inference: &'a Inference,
    types: &'a ScopeTypes,
    tmp: usize,
    /// While lowering `m(i,j) = rhs`: the store target, so reads of
    /// the same element become [`SExpr::OwnElem`] (paper's in-guard
    /// read) instead of a broadcast.
    self_elem: Option<(String, Vec<SExpr>)>,
    /// Source span of each variable's first definition, recorded as
    /// statements lower (diagnostics metadata on the produced IR).
    def_spans: std::collections::BTreeMap<String, Span>,
}

impl<'a> Cx<'a> {
    fn tmp_ranks_drain(&mut self) -> Vec<(String, VarRank)> {
        // Temp ranks are recorded as they are created.
        TMP_RANKS.with(|t| t.borrow_mut().drain(..).collect())
    }

    fn fresh_tmp(&mut self, rank: VarRank) -> String {
        self.tmp += 1;
        let name = format!("ML_tmp{}", self.tmp);
        TMP_RANKS.with(|t| t.borrow_mut().push((name.clone(), rank)));
        name
    }

    fn var_ty(&self, name: &str, span: Span) -> Result<VarTy> {
        self.types.get(name).copied().ok_or_else(|| {
            CodegenError::new(
                format!("no inferred type for `{name}` (compiler bug)"),
                span,
            )
        })
    }

    // ---- expression lowering -------------------------------------------

    /// Lower to a fragment plus the expression's inferred type.
    fn lower_expr(&mut self, e: &Expr, out: &mut Vec<Instr>) -> Result<(Frag, VarTy)> {
        match &e.kind {
            ExprKind::Number { value, is_int } => {
                let ty = if *is_int {
                    VarTy::int_const(*value)
                } else {
                    VarTy {
                        konst: Some(*value),
                        ..VarTy::scalar(otter_analysis::BaseTy::Real)
                    }
                };
                Ok((Frag::S(SExpr::Const(*value)), ty))
            }
            ExprKind::Str(_) => Err(CodegenError::new(
                "string values only appear as disp/load arguments in compiled code",
                e.span,
            )),
            ExprKind::Ident(name) => {
                if let Some(ty) = self.types.get(name).copied() {
                    if ty.rank == RankTy::Matrix {
                        Ok((Frag::E(EwExpr::mat(name.clone())), ty))
                    } else {
                        Ok((Frag::S(SExpr::var(name.clone())), ty))
                    }
                } else if let Some(v) = otter_analysis::builtins::constant_value(name) {
                    Ok((
                        Frag::S(SExpr::Const(v)),
                        VarTy {
                            konst: Some(v),
                            ..VarTy::scalar(otter_analysis::BaseTy::Real)
                        },
                    ))
                } else {
                    Err(CodegenError::new(
                        format!("unknown identifier `{name}`"),
                        e.span,
                    ))
                }
            }
            ExprKind::Range { start, step, stop } => {
                let (s, _) = self.lower_scalar(start, out)?;
                let st = match step {
                    Some(x) => self.lower_scalar(x, out)?.0,
                    None => SExpr::Const(1.0),
                };
                let (p, _) = self.lower_scalar(stop, out)?;
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::InitMatrix {
                    dst: dst.clone(),
                    init: MatInit::Range {
                        start: s,
                        step: st,
                        stop: p,
                    },
                });
                let ty = range_type(e, self.types);
                Ok((Frag::E(EwExpr::mat(dst)), ty))
            }
            ExprKind::Colon | ExprKind::EndKeyword => {
                Err(CodegenError::new("`:`/`end` outside an index", e.span))
            }
            ExprKind::Unary { op, operand } => {
                let (f, ty) = self.lower_expr(operand, out)?;
                let frag = match (op, f) {
                    (UnOp::Plus, f) => f,
                    (UnOp::Neg, Frag::S(s)) => Frag::S(SExpr::Neg(Box::new(s))),
                    (UnOp::Neg, Frag::E(x)) => Frag::E(EwExpr::Neg(Box::new(x))),
                    (UnOp::Not, Frag::S(s)) => Frag::S(SExpr::Not(Box::new(s))),
                    (UnOp::Not, Frag::E(x)) => Frag::E(EwExpr::Not(Box::new(x))),
                };
                Ok((frag, ty))
            }
            ExprKind::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs, e.span, out),
            ExprKind::Transpose { operand, .. } => {
                let (f, ty) = self.lower_expr(operand, out)?;
                match f {
                    Frag::S(s) => Ok((Frag::S(s), ty)),
                    Frag::E(_) => {
                        let src = self.materialize(f, out);
                        let dst = self.fresh_tmp(VarRank::Matrix);
                        out.push(Instr::Transpose {
                            dst: dst.clone(),
                            a: src,
                        });
                        let t = VarTy {
                            shape: ty.shape.transposed(),
                            ..ty
                        };
                        Ok((Frag::E(EwExpr::mat(dst)), t))
                    }
                }
            }
            ExprKind::Index { base, args } => self.lower_index_read(base, args, e.span, out),
            ExprKind::Call { callee, args } => {
                if let Some(s) = self.try_lower_end_marker(e) {
                    return Ok((Frag::S(s), VarTy::scalar(otter_analysis::BaseTy::Integer)));
                }
                self.lower_call_value(callee, args, e.span, out)
            }
            ExprKind::Matrix(rows) => {
                let mut cells: Vec<Vec<SExpr>> = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut r = Vec::with_capacity(row.len());
                    for c in row {
                        let (s, _) = self.lower_scalar(c, out)?;
                        r.push(s);
                    }
                    cells.push(r);
                }
                let (nr, nc) = (rows.len(), rows.first().map_or(0, |r| r.len()));
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::InitMatrix {
                    dst: dst.clone(),
                    init: MatInit::Literal { rows: cells },
                });
                Ok((
                    Frag::E(EwExpr::mat(dst)),
                    VarTy::matrix(
                        otter_analysis::BaseTy::Real,
                        otter_analysis::Shape::known(nr, nc),
                    ),
                ))
            }
        }
    }

    /// Lower an expression that must be a replicated scalar.
    fn lower_scalar(&mut self, e: &Expr, out: &mut Vec<Instr>) -> Result<(SExpr, VarTy)> {
        let (f, ty) = self.lower_expr(e, out)?;
        match f {
            Frag::S(s) => Ok((s, ty)),
            Frag::E(_) => Err(CodegenError::new(
                "expected a scalar expression, found a matrix",
                e.span,
            )),
        }
    }

    /// Materialize an element-wise fragment into a named matrix.
    fn materialize(&mut self, f: Frag, out: &mut Vec<Instr>) -> String {
        match f {
            Frag::E(EwExpr::Mat(name)) => name,
            Frag::E(expr) => {
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::ElemWise {
                    dst: dst.clone(),
                    expr,
                });
                dst
            }
            Frag::S(s) => {
                // A scalar where a matrix is needed (1×1 literal).
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::InitMatrix {
                    dst: dst.clone(),
                    init: MatInit::Literal {
                        rows: vec![vec![s]],
                    },
                });
                dst
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        span: Span,
        out: &mut Vec<Instr>,
    ) -> Result<(Frag, VarTy)> {
        let (fa, ta) = self.lower_expr(lhs, out)?;
        let (fb, tb) = self.lower_expr(rhs, out)?;
        let rty = binary_result_type(op, ta, tb, span)
            .map_err(|e| CodegenError::new(e.message, e.span))?;
        // Scalar result from scalar operands: plain replicated C.
        if let (Frag::S(a), Frag::S(b)) = (&fa, &fb) {
            let s = lower_scalar_op(op, a.clone(), b.clone(), span)?;
            return Ok((Frag::S(s), rty));
        }
        match op {
            BinOp::Mul => {
                // Communication-bearing: decide which library call.
                if let Frag::S(s) = &fa {
                    // scalar * matrix — element-wise.
                    let b = as_ew(fb);
                    return Ok((
                        Frag::E(EwExpr::bin(EwOp::Mul, EwExpr::Scalar(s.clone()), b)),
                        rty,
                    ));
                }
                if let Frag::S(s) = &fb {
                    let a = as_ew(fa);
                    return Ok((
                        Frag::E(EwExpr::bin(EwOp::Mul, a, EwExpr::Scalar(s.clone()))),
                        rty,
                    ));
                }
                // matrix * matrix.
                if rty.rank == RankTy::Scalar {
                    // (1×k)·(k×1): a dot product. Strip transposes —
                    // dot is orientation-blind.
                    let a = self.strip_transpose_or_materialize(lhs, fa, out)?;
                    let b = self.strip_transpose_or_materialize(rhs, fb, out)?;
                    let dst = self.fresh_tmp(VarRank::Scalar);
                    out.push(Instr::Dot {
                        dst: dst.clone(),
                        a,
                        b,
                    });
                    return Ok((Frag::S(SExpr::var(dst)), rty));
                }
                let a = self.materialize(fa, out);
                let b = self.materialize(fb, out);
                let dst = self.fresh_tmp(VarRank::Matrix);
                // Column-vector right operand → ML_matrix_vector_multiply.
                if tb.shape.cols == Dim::Known(1) && tb.shape.rows != Dim::Known(1) {
                    out.push(Instr::MatVec {
                        dst: dst.clone(),
                        a,
                        x: b,
                    });
                } else if ta.shape.cols == Dim::Known(1) && tb.shape.rows == Dim::Known(1) {
                    // column · row = outer product.
                    out.push(Instr::Outer {
                        dst: dst.clone(),
                        u: a,
                        v: b,
                    });
                } else {
                    out.push(Instr::MatMul {
                        dst: dst.clone(),
                        a,
                        b,
                    });
                }
                Ok((Frag::E(EwExpr::mat(dst)), rty))
            }
            BinOp::Div => match (&fa, &fb) {
                (_, Frag::S(s)) => {
                    let a = as_ew(fa.clone());
                    Ok((
                        Frag::E(EwExpr::bin(EwOp::Div, a, EwExpr::Scalar(s.clone()))),
                        rty,
                    ))
                }
                _ => Err(CodegenError::new(
                    "matrix right-division is not supported by the compiler",
                    span,
                )),
            },
            BinOp::LeftDiv => Err(CodegenError::new(
                "matrix left-division (solve) is not supported by the compiler",
                span,
            )),
            BinOp::Pow => Err(CodegenError::new(
                "matrix power is not supported by the compiler; multiply in a loop",
                span,
            )),
            // Element-wise family: fuse.
            _ => {
                let ew_op = ew_op_of(op);
                let a = as_ew(fa);
                let b = as_ew(fb);
                Ok((Frag::E(EwExpr::bin(ew_op, a, b)), rty))
            }
        }
    }

    /// For dot products `v' * w`, the transpose is a no-op: reuse the
    /// vector under the transpose instead of materializing it.
    fn strip_transpose_or_materialize(
        &mut self,
        src_expr: &Expr,
        frag: Frag,
        out: &mut Vec<Instr>,
    ) -> Result<String> {
        if let ExprKind::Transpose { operand, .. } = &src_expr.kind {
            if let ExprKind::Ident(name) = &operand.kind {
                if self.var_ty(name, src_expr.span)?.rank == RankTy::Matrix {
                    return Ok(name.clone());
                }
            }
        }
        Ok(self.materialize(frag, out))
    }

    /// An index expression with `end` resolved to the right extent.
    fn lower_index_scalar(
        &mut self,
        e: &Expr,
        mvar: &str,
        extent: DimSel,
        out: &mut Vec<Instr>,
    ) -> Result<SExpr> {
        let replaced = substitute_end_sexpr(e, mvar, extent);
        let (s, _) = self.lower_scalar(&replaced, out)?;
        Ok(s)
    }

    fn lower_index_read(
        &mut self,
        base: &str,
        args: &[Expr],
        span: Span,
        out: &mut Vec<Instr>,
    ) -> Result<(Frag, VarTy)> {
        let bty = self.var_ty(base, span)?;
        if bty.rank != RankTy::Matrix {
            return Err(CodegenError::new(
                format!("cannot index scalar `{base}`"),
                span,
            ));
        }
        let elem_base = bty.base;
        match args {
            // -- single index ------------------------------------------------
            [ix] if is_scalar_index(ix) => {
                // v(i): element broadcast (pass 4's ML_broadcast).
                let i = self.lower_index_scalar(ix, base, DimSel::Numel, out)?;
                // Read of the element being stored? (pass 5 in-guard read)
                if let Some((m, idx)) = &self.self_elem {
                    if m == base && idx.len() == 1 && idx[0] == i {
                        return Ok((Frag::S(SExpr::OwnElem), VarTy::scalar(elem_base)));
                    }
                }
                let dst = self.fresh_tmp(VarRank::Scalar);
                out.push(Instr::BroadcastElem {
                    dst: dst.clone(),
                    m: base.to_string(),
                    i,
                    j: None,
                });
                Ok((Frag::S(SExpr::var(dst)), VarTy::scalar(elem_base)))
            }
            [ix] => match &ix.kind {
                ExprKind::Range { start, step, stop } => {
                    let lo = self.lower_index_scalar(start, base, DimSel::Numel, out)?;
                    let hi = self.lower_index_scalar(stop, base, DimSel::Numel, out)?;
                    let dst = self.fresh_tmp(VarRank::Matrix);
                    match step {
                        None => out.push(Instr::ExtractRange {
                            dst: dst.clone(),
                            v: base.to_string(),
                            lo,
                            hi,
                        }),
                        Some(st) => {
                            let (step_s, _) = self.lower_scalar(st, out)?;
                            out.push(Instr::ExtractStrided {
                                dst: dst.clone(),
                                v: base.to_string(),
                                lo,
                                step: step_s,
                                hi,
                            });
                        }
                    }
                    let ty = VarTy::matrix(elem_base, otter_analysis::Shape::UNKNOWN);
                    Ok((Frag::E(EwExpr::mat(dst)), ty))
                }
                _ => Err(CodegenError::new(
                    "this indexing form is not supported by the compiler",
                    span,
                )),
            },
            // -- two indices --------------------------------------------------
            [i, j] if is_scalar_index(i) && is_scalar_index(j) => {
                let si = self.lower_index_scalar(i, base, DimSel::Rows, out)?;
                let sj = self.lower_index_scalar(j, base, DimSel::Cols, out)?;
                if let Some((m, idx)) = &self.self_elem {
                    if m == base && idx.len() == 2 && idx[0] == si && idx[1] == sj {
                        return Ok((Frag::S(SExpr::OwnElem), VarTy::scalar(elem_base)));
                    }
                }
                let dst = self.fresh_tmp(VarRank::Scalar);
                out.push(Instr::BroadcastElem {
                    dst: dst.clone(),
                    m: base.to_string(),
                    i: si,
                    j: Some(sj),
                });
                Ok((Frag::S(SExpr::var(dst)), VarTy::scalar(elem_base)))
            }
            [i, j] if is_scalar_index(i) && matches!(j.kind, ExprKind::Colon) => {
                let si = self.lower_index_scalar(i, base, DimSel::Rows, out)?;
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::ExtractRow {
                    dst: dst.clone(),
                    m: base.to_string(),
                    i: si,
                });
                let ty = VarTy::matrix(
                    elem_base,
                    otter_analysis::Shape {
                        rows: Dim::Known(1),
                        cols: bty.shape.cols,
                    },
                );
                Ok((Frag::E(EwExpr::mat(dst)), ty))
            }
            [i, j] if matches!(i.kind, ExprKind::Colon) && is_scalar_index(j) => {
                let sj = self.lower_index_scalar(j, base, DimSel::Cols, out)?;
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::ExtractCol {
                    dst: dst.clone(),
                    m: base.to_string(),
                    j: sj,
                });
                let ty = VarTy::matrix(
                    elem_base,
                    otter_analysis::Shape {
                        rows: bty.shape.rows,
                        cols: Dim::Known(1),
                    },
                );
                Ok((Frag::E(EwExpr::mat(dst)), ty))
            }
            _ => Err(CodegenError::new(
                "this indexing form is not supported by the compiler \
                 (supported: scalar, contiguous range, row/column slices)",
                span,
            )),
        }
    }

    fn lower_call_value(
        &mut self,
        callee: &str,
        args: &[Expr],
        span: Span,
        out: &mut Vec<Instr>,
    ) -> Result<(Frag, VarTy)> {
        let results = self.lower_call(callee, args, 1, span, out)?;
        results
            .into_iter()
            .next()
            .ok_or_else(|| CodegenError::new(format!("`{callee}` returns no value"), span))
    }

    /// Lower a call to builtins or user functions, producing up to
    /// `nout` (fragment, type) results.
    fn lower_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        nout: usize,
        span: Span,
        out: &mut Vec<Instr>,
    ) -> Result<Vec<(Frag, VarTy)>> {
        use otter_analysis::BaseTy;
        let one = |f: Frag, t: VarTy| Ok(vec![(f, t)]);
        match callee {
            "zeros" | "ones" | "rand" | "eye" => {
                let mut dims = Vec::new();
                for a in args {
                    dims.push(self.lower_scalar(a, out)?.0);
                }
                let (r, c) = match dims.len() {
                    0 => {
                        // Scalar constructors.
                        let v = match callee {
                            "ones" => SExpr::Const(1.0),
                            "zeros" => SExpr::Const(0.0),
                            _ => {
                                return Err(CodegenError::new(
                                    "scalar rand/eye are not supported by the compiler",
                                    span,
                                ))
                            }
                        };
                        return one(Frag::S(v), VarTy::scalar(BaseTy::Integer));
                    }
                    1 => (dims[0].clone(), dims[0].clone()),
                    _ => (dims[0].clone(), dims[1].clone()),
                };
                let init = match callee {
                    "zeros" => MatInit::Zeros { rows: r, cols: c },
                    "ones" => MatInit::Ones { rows: r, cols: c },
                    "rand" => MatInit::Rand { rows: r, cols: c },
                    _ => MatInit::Eye { n: r },
                };
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::InitMatrix {
                    dst: dst.clone(),
                    init,
                });
                let base = if callee == "rand" {
                    BaseTy::Real
                } else {
                    BaseTy::Integer
                };
                one(
                    Frag::E(EwExpr::mat(dst)),
                    VarTy::matrix(base, otter_analysis::Shape::UNKNOWN),
                )
            }
            "linspace" => {
                let a = self.lower_scalar(&args[0], out)?.0;
                let b = self.lower_scalar(&args[1], out)?.0;
                let n = if args.len() > 2 {
                    self.lower_scalar(&args[2], out)?.0
                } else {
                    SExpr::Const(100.0)
                };
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::InitMatrix {
                    dst: dst.clone(),
                    init: MatInit::Linspace { a, b, n },
                });
                one(
                    Frag::E(EwExpr::mat(dst)),
                    VarTy::matrix(BaseTy::Real, otter_analysis::Shape::UNKNOWN),
                )
            }
            "size" | "length" | "numel" => {
                let ExprKind::Ident(mname) = &args[0].kind else {
                    return Err(CodegenError::new(
                        format!("`{callee}` argument must be a variable in compiled code"),
                        span,
                    ));
                };
                let mty = self.var_ty(mname, span)?;
                if mty.rank == RankTy::Scalar {
                    let v = SExpr::Const(1.0);
                    if callee == "size" && nout >= 2 {
                        return Ok(vec![
                            (Frag::S(v.clone()), VarTy::int_const(1.0)),
                            (Frag::S(v), VarTy::int_const(1.0)),
                        ]);
                    }
                    return one(Frag::S(v), VarTy::int_const(1.0));
                }
                let dim = |sel| SExpr::DimOf {
                    var: mname.clone(),
                    sel,
                };
                match callee {
                    "length" => one(Frag::S(dim(DimSel::Length)), VarTy::scalar(BaseTy::Integer)),
                    "numel" => one(Frag::S(dim(DimSel::Numel)), VarTy::scalar(BaseTy::Integer)),
                    _ => {
                        if nout >= 2 {
                            return Ok(vec![
                                (Frag::S(dim(DimSel::Rows)), VarTy::scalar(BaseTy::Integer)),
                                (Frag::S(dim(DimSel::Cols)), VarTy::scalar(BaseTy::Integer)),
                            ]);
                        }
                        if args.len() == 2 {
                            let (d, _) = self.lower_scalar(&args[1], out)?;
                            let sel = match d {
                                SExpr::Const(1.0) => DimSel::Rows,
                                SExpr::Const(2.0) => DimSel::Cols,
                                _ => {
                                    return Err(CodegenError::new(
                                        "size(m, d) needs a literal dimension",
                                        span,
                                    ))
                                }
                            };
                            return one(Frag::S(dim(sel)), VarTy::scalar(BaseTy::Integer));
                        }
                        // size(m) as a 1×2 row vector.
                        let dst = self.fresh_tmp(VarRank::Matrix);
                        out.push(Instr::InitMatrix {
                            dst: dst.clone(),
                            init: MatInit::Literal {
                                rows: vec![vec![dim(DimSel::Rows), dim(DimSel::Cols)]],
                            },
                        });
                        one(
                            Frag::E(EwExpr::mat(dst)),
                            VarTy::matrix(BaseTy::Integer, otter_analysis::Shape::known(1, 2)),
                        )
                    }
                }
            }
            "abs" | "sqrt" | "sin" | "cos" | "tan" | "exp" | "log" | "log2" | "floor" | "ceil"
            | "round" | "sign" => {
                let (f, ty) = self.lower_expr(&args[0], out)?;
                let fun = sfun_of(callee);
                let rty = match callee {
                    "abs" | "floor" | "ceil" | "round" | "sign" => ty,
                    _ => VarTy {
                        base: BaseTy::Real,
                        konst: None,
                        ..ty
                    },
                };
                match f {
                    Frag::S(s) => one(Frag::S(SExpr::Call(fun, vec![s])), rty),
                    Frag::E(x) => one(Frag::E(EwExpr::Call(fun, vec![x])), rty),
                }
            }
            "mod" | "rem" | "max" | "min" if args.len() == 2 => {
                let (fa, ta) = self.lower_expr(&args[0], out)?;
                let (fb, tb) = self.lower_expr(&args[1], out)?;
                let fun = sfun_of(callee);
                match (fa, fb) {
                    (Frag::S(a), Frag::S(b)) => {
                        let t = VarTy::scalar(ta.base.join(tb.base));
                        one(Frag::S(SExpr::Call(fun, vec![a, b])), t)
                    }
                    (a, b) => {
                        let t = if ta.rank == RankTy::Matrix { ta } else { tb };
                        one(Frag::E(EwExpr::Call(fun, vec![as_ew(a), as_ew(b)])), t)
                    }
                }
            }
            "sum" | "mean" | "prod" | "max" | "min" | "any" | "all" => {
                let (f, ty) = self.lower_expr(&args[0], out)?;
                if ty.rank == RankTy::Scalar {
                    // MATLAB reductions are identities on scalars
                    // (any/all map to 0/1; the predicate form still
                    // goes through the scalar expression).
                    if callee == "any" || callee == "all" {
                        return one(
                            Frag::S(SExpr::bin(
                                SBinOp::Ne,
                                match f {
                                    Frag::S(s) => s,
                                    Frag::E(_) => unreachable!("scalar rank"),
                                },
                                SExpr::Const(0.0),
                            )),
                            VarTy::scalar(BaseTy::Integer),
                        );
                    }
                    return one(f, ty);
                }
                let m = self.materialize(f, out);
                let result_base = match callee {
                    "mean" => BaseTy::Real,
                    "any" | "all" => BaseTy::Integer,
                    _ => ty.base,
                };
                if ty.shape.is_vector() {
                    let dst = self.fresh_tmp(VarRank::Scalar);
                    let op = match callee {
                        "sum" => RedOp::SumAll,
                        "mean" => RedOp::MeanAll,
                        "prod" => RedOp::ProdAll,
                        "max" => RedOp::MaxAll,
                        "min" => RedOp::MinAll,
                        "any" => RedOp::AnyAll,
                        _ => RedOp::AllAll,
                    };
                    out.push(Instr::Reduce {
                        dst: dst.clone(),
                        op,
                        m,
                    });
                    one(Frag::S(SExpr::var(dst)), VarTy::scalar(result_base))
                } else {
                    let dst = self.fresh_tmp(VarRank::Matrix);
                    let op = match callee {
                        "sum" => ColRedOp::Sum,
                        "mean" => ColRedOp::Mean,
                        "prod" => ColRedOp::Prod,
                        "max" => ColRedOp::Max,
                        "min" => ColRedOp::Min,
                        "any" => ColRedOp::Any,
                        _ => ColRedOp::All,
                    };
                    out.push(Instr::ColReduce {
                        dst: dst.clone(),
                        op,
                        m,
                    });
                    let t = VarTy::matrix(
                        result_base,
                        otter_analysis::Shape {
                            rows: Dim::Known(1),
                            cols: ty.shape.cols,
                        },
                    );
                    one(Frag::E(EwExpr::mat(dst)), t)
                }
            }
            "norm" => {
                let (f, _) = self.lower_expr(&args[0], out)?;
                let m = self.materialize(f, out);
                let dst = self.fresh_tmp(VarRank::Scalar);
                out.push(Instr::Reduce {
                    dst: dst.clone(),
                    op: RedOp::Norm2,
                    m,
                });
                one(Frag::S(SExpr::var(dst)), VarTy::scalar(BaseTy::Real))
            }
            "dot" => {
                let (fa, _) = self.lower_expr(&args[0], out)?;
                let (fb, _) = self.lower_expr(&args[1], out)?;
                let a = self.materialize(fa, out);
                let b = self.materialize(fb, out);
                let dst = self.fresh_tmp(VarRank::Scalar);
                out.push(Instr::Dot {
                    dst: dst.clone(),
                    a,
                    b,
                });
                one(Frag::S(SExpr::var(dst)), VarTy::scalar(BaseTy::Real))
            }
            "trapz" | "trapz2" => {
                if args.len() == 2 {
                    let (fx, _) = self.lower_expr(&args[0], out)?;
                    let (fy, _) = self.lower_expr(&args[1], out)?;
                    let x = self.materialize(fx, out);
                    let y = self.materialize(fy, out);
                    let dst = self.fresh_tmp(VarRank::Scalar);
                    out.push(Instr::TrapzXY {
                        dst: dst.clone(),
                        x,
                        y,
                    });
                    one(Frag::S(SExpr::var(dst)), VarTy::scalar(BaseTy::Real))
                } else {
                    let (f, _) = self.lower_expr(&args[0], out)?;
                    let m = self.materialize(f, out);
                    let dst = self.fresh_tmp(VarRank::Scalar);
                    out.push(Instr::Reduce {
                        dst: dst.clone(),
                        op: RedOp::Trapz,
                        m,
                    });
                    one(Frag::S(SExpr::var(dst)), VarTy::scalar(BaseTy::Real))
                }
            }
            "circshift" => {
                let (f, ty) = self.lower_expr(&args[0], out)?;
                let (k, _) = self.lower_scalar(&args[1], out)?;
                let v = self.materialize(f, out);
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::Shift {
                    dst: dst.clone(),
                    v,
                    k,
                });
                one(Frag::E(EwExpr::mat(dst)), ty)
            }
            "disp" => {
                match &args[0].kind {
                    ExprKind::Str(s) => {
                        out.push(Instr::Print {
                            name: s.clone(),
                            target: PrintTarget::Scalar(SExpr::Const(0.0)),
                        });
                    }
                    _ => {
                        let (f, _) = self.lower_expr(&args[0], out)?;
                        match f {
                            Frag::S(s) => out.push(Instr::Print {
                                name: "".into(),
                                target: PrintTarget::Scalar(s),
                            }),
                            Frag::E(_) => {
                                let m = self.materialize(f, out);
                                out.push(Instr::Print {
                                    name: "".into(),
                                    target: PrintTarget::Matrix(m),
                                });
                            }
                        }
                    }
                }
                Ok(vec![])
            }
            "load" => {
                let ExprKind::Str(path) = &args[0].kind else {
                    return Err(CodegenError::new("load requires a literal file name", span));
                };
                let dst = self.fresh_tmp(VarRank::Matrix);
                out.push(Instr::LoadFile {
                    dst: dst.clone(),
                    path: path.clone(),
                });
                one(
                    Frag::E(EwExpr::mat(dst)),
                    VarTy::matrix(BaseTy::Real, otter_analysis::Shape::UNKNOWN),
                )
            }
            _ => {
                // User function.
                let Some(sig) = self.inference.functions.get(callee) else {
                    return Err(CodegenError::new(
                        format!("unknown function `{callee}`"),
                        span,
                    ));
                };
                let sig = sig.clone();
                let mut actuals = Vec::with_capacity(args.len());
                for (a, pty) in args.iter().zip(&sig.params) {
                    let (f, _) = self.lower_expr(a, out)?;
                    match (pty.rank, f) {
                        (RankTy::Matrix, f) => actuals.push(Arg::Matrix(self.materialize(f, out))),
                        (_, Frag::S(s)) => actuals.push(Arg::Scalar(s)),
                        (_, Frag::E(_)) => {
                            return Err(CodegenError::new(
                                "matrix passed where scalar parameter expected",
                                span,
                            ))
                        }
                    }
                }
                let mut outs = Vec::new();
                let mut results = Vec::new();
                for oty in sig.outs.iter().take(nout.max(1)) {
                    let rank = rank_of(oty);
                    let t = self.fresh_tmp(rank);
                    outs.push(t.clone());
                    let frag = match rank {
                        VarRank::Scalar => Frag::S(SExpr::var(t)),
                        VarRank::Matrix => Frag::E(EwExpr::mat(t)),
                    };
                    results.push((frag, *oty));
                }
                out.push(Instr::Call {
                    fun: callee.to_string(),
                    args: actuals,
                    outs,
                });
                Ok(results)
            }
        }
    }

    // ---- statements -------------------------------------------------------

    fn lower_block(&mut self, block: &Block) -> Result<Vec<Instr>> {
        let mut out = Vec::new();
        for stmt in block {
            let before = out.len();
            self.lower_stmt(stmt, &mut out)?;
            // Tag every variable first defined by this statement's
            // instructions with the statement's source span. Nested
            // bodies were already tagged by the inner `lower_block`
            // with their more precise inner-statement spans
            // (first-write-wins keeps those).
            for instr in &out[before..] {
                let mut defs = Vec::new();
                instr.defs(&mut defs);
                for d in defs {
                    self.def_spans.entry(d).or_insert(stmt.span);
                }
            }
        }
        Ok(out)
    }

    fn lower_stmt(&mut self, stmt: &Stmt, out: &mut Vec<Instr>) -> Result<()> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                // Expression statements: only calls with side effects
                // (disp) are meaningful in compiled code; a bare value
                // expression is evaluated into `ans`.
                if let ExprKind::Call { callee, args } = &e.kind {
                    let results = self.lower_call(callee, args, 1, e.span, out)?;
                    if let Some((frag, ty)) = results.into_iter().next() {
                        self.emit_assign("ans", frag, &ty, out);
                        if stmt.display {
                            self.emit_print("ans", &ty, out);
                        }
                    }
                    return Ok(());
                }
                let (frag, ty) = self.lower_expr(e, out)?;
                self.emit_assign("ans", frag, &ty, out);
                if stmt.display {
                    self.emit_print("ans", &ty, out);
                }
                Ok(())
            }
            StmtKind::Assign { lhs, rhs } => {
                match &lhs.indices {
                    None => {
                        let (frag, ty) = self.lower_expr(rhs, out)?;
                        self.emit_assign(&lhs.name, frag, &ty, out);
                    }
                    Some(indices) => self.lower_indexed_assign(lhs, indices, rhs, out)?,
                }
                if stmt.display {
                    let ty = self.var_ty(&lhs.name, stmt.span)?;
                    self.emit_print(&lhs.name, &ty, out);
                }
                Ok(())
            }
            StmtKind::MultiAssign { lhs, rhs } => {
                let ExprKind::Call { callee, args } = &rhs.kind else {
                    return Err(CodegenError::new(
                        "multi-assignment requires a function call",
                        rhs.span,
                    ));
                };
                let results = self.lower_call(callee, args, lhs.len(), rhs.span, out)?;
                if results.len() < lhs.len() {
                    return Err(CodegenError::new(
                        format!("`{callee}` returns {} values", results.len()),
                        rhs.span,
                    ));
                }
                for (lv, (frag, ty)) in lhs.iter().zip(results) {
                    self.emit_assign(&lv.name, frag, &ty, out);
                    if stmt.display {
                        self.emit_print(&lv.name, &ty, out);
                    }
                }
                Ok(())
            }
            StmtKind::If { arms, else_body } => {
                // Lower as nested if/else chains.
                self.lower_if_chain(arms, else_body.as_ref(), 0, out)
            }
            StmtKind::While { cond, body } => {
                let mut pre = Vec::new();
                let (c, _) = self.lower_scalar(cond, &mut pre)?;
                let body = self.lower_block(body)?;
                out.push(Instr::While { pre, cond: c, body });
                Ok(())
            }
            StmtKind::For { var, iter, body } => {
                let ExprKind::Range { start, step, stop } = &iter.kind else {
                    return Err(CodegenError::new(
                        "compiled for-loops iterate ranges only",
                        iter.span,
                    ));
                };
                let (s, _) = self.lower_scalar(start, out)?;
                let st = match step {
                    Some(x) => self.lower_scalar(x, out)?.0,
                    None => SExpr::Const(1.0),
                };
                let (p, _) = self.lower_scalar(stop, out)?;
                let body = self.lower_block(body)?;
                out.push(Instr::For {
                    var: var.clone(),
                    start: s,
                    step: st,
                    stop: p,
                    body,
                });
                Ok(())
            }
            StmtKind::Break => {
                out.push(Instr::Break);
                Ok(())
            }
            StmtKind::Continue => {
                out.push(Instr::Continue);
                Ok(())
            }
            StmtKind::Return => Err(CodegenError::new(
                "early `return` is not supported by the compiler",
                stmt.span,
            )),
            StmtKind::Global(_) => Err(CodegenError::new(
                "`global` is not supported by the compiler (interpreter-only)",
                stmt.span,
            )),
        }
    }

    fn lower_if_chain(
        &mut self,
        arms: &[(Expr, Block)],
        else_body: Option<&Block>,
        k: usize,
        out: &mut Vec<Instr>,
    ) -> Result<()> {
        if k >= arms.len() {
            if let Some(b) = else_body {
                let mut lowered = self.lower_block(b)?;
                out.append(&mut lowered);
            }
            return Ok(());
        }
        let (cond, body) = &arms[k];
        let (c, _) = self.lower_scalar(cond, out)?;
        let then_body = self.lower_block(body)?;
        let mut else_instrs = Vec::new();
        self.lower_if_chain(arms, else_body, k + 1, &mut else_instrs)?;
        out.push(Instr::If {
            cond: c,
            then_body,
            else_body: else_instrs,
        });
        Ok(())
    }

    fn emit_assign(&mut self, dst: &str, frag: Frag, ty: &VarTy, out: &mut Vec<Instr>) {
        match frag {
            Frag::S(s) => out.push(Instr::AssignScalar {
                dst: dst.to_string(),
                src: s,
            }),
            Frag::E(EwExpr::Mat(src)) if src == dst => { /* self-assign: no-op */ }
            Frag::E(EwExpr::Mat(src)) => out.push(Instr::CopyMatrix {
                dst: dst.to_string(),
                src,
            }),
            Frag::E(expr) => out.push(Instr::ElemWise {
                dst: dst.to_string(),
                expr,
            }),
        }
        let _ = ty;
    }

    fn emit_print(&mut self, name: &str, ty: &VarTy, out: &mut Vec<Instr>) {
        let target = match ty.rank {
            RankTy::Matrix => PrintTarget::Matrix(name.to_string()),
            _ => PrintTarget::Scalar(SExpr::var(name)),
        };
        out.push(Instr::Print {
            name: name.to_string(),
            target,
        });
    }

    fn lower_indexed_assign(
        &mut self,
        lhs: &LValue,
        indices: &[Expr],
        rhs: &Expr,
        out: &mut Vec<Instr>,
    ) -> Result<()> {
        let m = lhs.name.clone();
        match indices {
            [i] if is_scalar_index(i) => {
                let si = self.lower_index_scalar(i, &m, DimSel::Numel, out)?;
                self.self_elem = Some((m.clone(), vec![si.clone()]));
                let lowered = self.lower_scalar(rhs, out);
                self.self_elem = None;
                let (val, _) = lowered?;
                out.push(Instr::StoreElem {
                    m,
                    i: si,
                    j: None,
                    val,
                });
                Ok(())
            }
            [i, j] if is_scalar_index(i) && is_scalar_index(j) => {
                let si = self.lower_index_scalar(i, &m, DimSel::Rows, out)?;
                let sj = self.lower_index_scalar(j, &m, DimSel::Cols, out)?;
                self.self_elem = Some((m.clone(), vec![si.clone(), sj.clone()]));
                let lowered = self.lower_scalar(rhs, out);
                self.self_elem = None;
                let (val, _) = lowered?;
                out.push(Instr::StoreElem {
                    m,
                    i: si,
                    j: Some(sj),
                    val,
                });
                Ok(())
            }
            [i, j] if is_scalar_index(i) && matches!(j.kind, ExprKind::Colon) => {
                let si = self.lower_index_scalar(i, &m, DimSel::Rows, out)?;
                let (f, _) = self.lower_expr(rhs, out)?;
                match f {
                    Frag::S(val) => out.push(Instr::FillRow { m, i: si, val }),
                    f => {
                        let v = self.materialize(f, out);
                        out.push(Instr::AssignRow { m, i: si, v });
                    }
                }
                Ok(())
            }
            [i, j] if matches!(i.kind, ExprKind::Colon) && is_scalar_index(j) => {
                let sj = self.lower_index_scalar(j, &m, DimSel::Cols, out)?;
                let (f, _) = self.lower_expr(rhs, out)?;
                match f {
                    Frag::S(val) => out.push(Instr::FillCol { m, j: sj, val }),
                    f => {
                        let v = self.materialize(f, out);
                        out.push(Instr::AssignCol { m, j: sj, v });
                    }
                }
                Ok(())
            }
            [ix] => match &ix.kind {
                // v(lo:hi) = scalar | vector.
                ExprKind::Range { start, step, stop } if step.is_none() => {
                    let lo = self.lower_index_scalar(start, &m, DimSel::Numel, out)?;
                    let hi = self.lower_index_scalar(stop, &m, DimSel::Numel, out)?;
                    let (f, _) = self.lower_expr(rhs, out)?;
                    match f {
                        Frag::S(val) => out.push(Instr::FillRange { m, lo, hi, val }),
                        f => {
                            let v = self.materialize(f, out);
                            out.push(Instr::AssignRange { m, lo, hi, v });
                        }
                    }
                    Ok(())
                }
                _ => Err(CodegenError::new(
                    "this indexed-assignment form is not supported by the compiler",
                    lhs.span,
                )),
            },
            _ => Err(CodegenError::new(
                "this indexed-assignment form is not supported by the compiler",
                lhs.span,
            )),
        }
    }
}

// Temp rank side-channel: the lowering context hands temp names to the
// program builder. Thread-local keeps the recursive lowering signatures
// small; lowering is single-threaded per program.
thread_local! {
    static TMP_RANKS: std::cell::RefCell<Vec<(String, VarRank)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn as_ew(f: Frag) -> EwExpr {
    match f {
        Frag::S(s) => EwExpr::Scalar(s),
        Frag::E(e) => e,
    }
}

fn ew_op_of(op: BinOp) -> EwOp {
    match op {
        BinOp::Add => EwOp::Add,
        BinOp::Sub => EwOp::Sub,
        BinOp::ElemMul | BinOp::Mul => EwOp::Mul,
        BinOp::ElemDiv | BinOp::Div => EwOp::Div,
        BinOp::ElemLeftDiv => EwOp::Div, // operands swapped by caller
        BinOp::ElemPow => EwOp::Pow,
        BinOp::Eq => EwOp::Eq,
        BinOp::Ne => EwOp::Ne,
        BinOp::Lt => EwOp::Lt,
        BinOp::Le => EwOp::Le,
        BinOp::Gt => EwOp::Gt,
        BinOp::Ge => EwOp::Ge,
        BinOp::And => EwOp::And,
        BinOp::Or => EwOp::Or,
        BinOp::LeftDiv | BinOp::Pow => unreachable!("handled before"),
    }
}

fn sfun_of(name: &str) -> SFun {
    match name {
        "abs" => SFun::Abs,
        "sqrt" => SFun::Sqrt,
        "sin" => SFun::Sin,
        "cos" => SFun::Cos,
        "tan" => SFun::Tan,
        "exp" => SFun::Exp,
        "log" => SFun::Log,
        "log2" => SFun::Log2,
        "floor" => SFun::Floor,
        "ceil" => SFun::Ceil,
        "round" => SFun::Round,
        "sign" => SFun::Sign,
        "mod" => SFun::Mod,
        "rem" => SFun::Rem,
        "max" => SFun::Max,
        "min" => SFun::Min,
        _ => unreachable!("not a scalar builtin: {name}"),
    }
}

fn lower_scalar_op(op: BinOp, a: SExpr, b: SExpr, span: Span) -> Result<SExpr> {
    let sop = match op {
        BinOp::Add => SBinOp::Add,
        BinOp::Sub => SBinOp::Sub,
        BinOp::Mul | BinOp::ElemMul => SBinOp::Mul,
        BinOp::Div | BinOp::ElemDiv => SBinOp::Div,
        BinOp::LeftDiv | BinOp::ElemLeftDiv => {
            return Ok(SExpr::bin(SBinOp::Div, b, a));
        }
        BinOp::Pow | BinOp::ElemPow => {
            return Ok(SExpr::Call(SFun::Pow, vec![a, b]));
        }
        BinOp::Eq => SBinOp::Eq,
        BinOp::Ne => SBinOp::Ne,
        BinOp::Lt => SBinOp::Lt,
        BinOp::Le => SBinOp::Le,
        BinOp::Gt => SBinOp::Gt,
        BinOp::Ge => SBinOp::Ge,
        BinOp::And => SBinOp::And,
        BinOp::Or => SBinOp::Or,
    };
    let _ = span;
    Ok(SExpr::bin(sop, a, b))
}

fn is_scalar_index(e: &Expr) -> bool {
    !matches!(e.kind, ExprKind::Colon | ExprKind::Range { .. })
}

/// Replace `end` inside an index expression by a [`SExpr::DimOf`]-
/// compatible AST node. We rewrite at the AST level: `end` becomes a
/// call-free marker the scalar lowering turns into `DimOf`.
fn substitute_end_sexpr(e: &Expr, mvar: &str, extent: DimSel) -> Expr {
    let kind = match &e.kind {
        ExprKind::EndKeyword => {
            // Encode as a special identifier the scalar lowering can
            // recognize is impossible (idents resolve through types),
            // so instead we fold it here: represent `end` as a call to
            // a pseudo-builtin we expand inline. Simplest robust path:
            // return a Number placeholder that the caller rewrites...
            // Instead, we return a synthetic Index-free marker:
            return Expr::new(
                ExprKind::Call {
                    callee: "__end__".into(),
                    args: vec![
                        Expr::synth(ExprKind::Str(mvar.to_string())),
                        Expr::synth(ExprKind::Number {
                            value: match extent {
                                DimSel::Rows => 1.0,
                                DimSel::Cols => 2.0,
                                DimSel::Length => 3.0,
                                DimSel::Numel => 4.0,
                            },
                            is_int: true,
                        }),
                    ],
                },
                e.span,
            );
        }
        ExprKind::Unary { op, operand } => ExprKind::Unary {
            op: *op,
            operand: Box::new(substitute_end_sexpr(operand, mvar, extent)),
        },
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op: *op,
            lhs: Box::new(substitute_end_sexpr(lhs, mvar, extent)),
            rhs: Box::new(substitute_end_sexpr(rhs, mvar, extent)),
        },
        other => other.clone(),
    };
    Expr::new(kind, e.span)
}

impl<'a> Cx<'a> {
    /// Hook for the `__end__` pseudo-builtin created by
    /// [`substitute_end_sexpr`].
    fn try_lower_end_marker(&mut self, e: &Expr) -> Option<SExpr> {
        let ExprKind::Call { callee, args } = &e.kind else {
            return None;
        };
        if callee != "__end__" {
            return None;
        }
        let ExprKind::Str(var) = &args[0].kind else {
            return None;
        };
        let ExprKind::Number { value, .. } = &args[1].kind else {
            return None;
        };
        let sel = match *value as i64 {
            1 => DimSel::Rows,
            2 => DimSel::Cols,
            3 => DimSel::Length,
            _ => DimSel::Numel,
        };
        // Static shapes fold to constants; symbolic dims fold through
        // their sample value (the sample file fixes the extent at
        // compile time, paper §3).
        if let Some(ty) = self.types.get(var) {
            let k = match sel {
                DimSel::Rows => ty.shape.rows.concrete(),
                DimSel::Cols => ty.shape.cols.concrete(),
                DimSel::Length => match (ty.shape.rows.concrete(), ty.shape.cols.concrete()) {
                    (Some(r), Some(c)) => Some(r.max(c)),
                    _ => None,
                },
                DimSel::Numel => match (ty.shape.rows.concrete(), ty.shape.cols.concrete()) {
                    (Some(r), Some(c)) => Some(r * c),
                    _ => None,
                },
            };
            if let Some(k) = k {
                return Some(SExpr::Const(k as f64));
            }
        }
        Some(SExpr::DimOf {
            var: var.clone(),
            sel,
        })
    }
}

/// Range expression type (length when static).
fn range_type(e: &Expr, _types: &ScopeTypes) -> VarTy {
    let _ = e;
    VarTy::matrix(otter_analysis::BaseTy::Real, otter_analysis::Shape::UNKNOWN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_analysis::{infer, resolve, ssa_rename, InferOptions};
    use otter_frontend::EmptyProvider;

    fn lower_src(src: &str) -> IrProgram {
        let resolved = resolve(src, &EmptyProvider).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let mut program = resolved.program;
        let info = ssa_rename(&program.script, &[]);
        program.script = info.block;
        for f in &mut program.functions {
            let fi = ssa_rename(&f.body, &f.params);
            f.body = fi.block;
        }
        let inference =
            infer(&program, InferOptions::default()).unwrap_or_else(|e| panic!("{e}\n{src}"));
        lower(&program, &inference).unwrap_or_else(|e| panic!("{e}\n{src}"))
    }

    fn dump(p: &IrProgram) -> String {
        otter_ir::display::program_to_string(p)
    }

    #[test]
    fn paper_statement_lowers_to_three_instrs() {
        let ir = lower_src(
            "n = 4;\nb = ones(n, n);\nc = ones(n, n);\nd = eye(n);\ni = 1;\nj = 2;\na = b * c + d(i, j);",
        );
        let s = dump(&ir);
        assert!(
            s.contains("matmul(b, c)") || s.contains("= matmul(b, c);"),
            "{s}"
        );
        assert!(s.contains("bcast(d[i, j])"), "{s}");
        assert!(s.contains("forall k: a[k]"), "{s}");
    }

    #[test]
    fn elementwise_chain_fuses_into_one_loop() {
        let ir = lower_src("n = 8;\nx = ones(n, 1);\ny = 2 * x + x .* x - x / 4;");
        let s = dump(&ir);
        // One forall for the whole right-hand side.
        let loops = s.matches("forall").count();
        assert_eq!(loops, 1, "{s}");
    }

    #[test]
    fn dot_product_lowered_directly() {
        let mut ir = lower_src("n = 8;\nv = ones(n, 1);\nw = ones(n, 1);\nd = v' * w;");
        // Pass 6 removes the now-dead transpose the operand lowering
        // emitted before the dot pattern matched.
        crate::peephole::peephole(&mut ir);
        let s = dump(&ir);
        assert!(
            s.contains("= dot(v, w);"),
            "transpose stripped for dot: {s}"
        );
        assert!(!s.contains("transpose"), "no materialized transpose: {s}");
    }

    #[test]
    fn matvec_chosen_for_column_vector_rhs() {
        let ir = lower_src("n = 6;\na = ones(n, n);\nx = ones(n, 1);\ny = a * x;");
        let s = dump(&ir);
        assert!(s.contains("= matvec(a, x);"), "{s}");
    }

    #[test]
    fn outer_product_chosen_for_col_times_row() {
        let ir = lower_src("n = 6;\nu = ones(n, 1);\nv = ones(1, n);\nm = u * v;");
        let s = dump(&ir);
        assert!(s.contains("= outer(u, v);"), "{s}");
    }

    #[test]
    fn owner_guard_with_self_element_read() {
        let ir = lower_src(
            "n = 4;\na = ones(n, n);\nb = ones(n, n);\ni = 1;\nj = 2;\na(i, j) = a(i, j) / b(j, i);",
        );
        let s = dump(&ir);
        assert!(s.contains("if owner: a[i, j]"), "{s}");
        assert!(
            s.contains("ownelem"),
            "self-read uses OwnElem, not a broadcast: {s}"
        );
        assert_eq!(s.matches("bcast").count(), 1, "only b(j,i) broadcasts: {s}");
    }

    #[test]
    fn while_condition_temps_survive_peephole() {
        // The condition's inputs live in the pre-block; DCE must see
        // the cond expression as a use.
        let mut ir = lower_src(
            "n = 8;\nr = ones(n, 1);\nit = 0;\nwhile norm(r) > 0.5\nr = r / 2;\nit = it + 1;\nend",
        );
        crate::peephole::peephole(&mut ir);
        let s = dump(&ir);
        assert!(
            s.contains("ML_norm2(r)"),
            "pre-block reduction must survive DCE: {s}"
        );
    }

    #[test]
    fn while_condition_with_reduction_goes_to_pre_block() {
        let ir = lower_src("n = 8;\nr = ones(n, 1);\nwhile norm(r) > 0.5\nr = r / 2;\nend");
        let s = dump(&ir);
        assert!(s.contains("while {"), "{s}");
        assert!(s.contains("ML_norm2(r)"), "{s}");
    }

    #[test]
    fn static_shapes_fold_end_to_constants() {
        let ir = lower_src("v = 1:10;\na = v(end);");
        let s = dump(&ir);
        assert!(s.contains("bcast(v[10])"), "static end folds to 10: {s}");
    }

    #[test]
    fn display_emits_print() {
        let ir = lower_src("x = 2 + 2\n");
        let s = dump(&ir);
        assert!(s.contains("print x"), "{s}");
    }

    #[test]
    fn column_sum_uses_colreduce() {
        let ir = lower_src("a = ones(3, 4);\ncs = sum(a);\nvs = sum(cs);");
        let s = dump(&ir);
        assert!(s.contains("colsum(a)"), "{s}");
        assert!(s.contains("ML_sum_all"), "{s}");
    }

    #[test]
    fn unsupported_constructs_error_cleanly() {
        for (src, needle) in [
            (
                "a = ones(3, 3);\nb = ones(3, 3);\nc = a / b;",
                "right-division",
            ),
            ("a = ones(3, 3);\nb = a ^ 2;", "power"),
            ("global g\ng = 1;", "global"),
        ] {
            let resolved = resolve(src, &EmptyProvider).unwrap();
            let mut program = resolved.program;
            let info = ssa_rename(&program.script, &[]);
            program.script = info.block;
            match infer(&program, InferOptions::default()) {
                Err(e) => assert!(
                    e.to_string().contains(needle) || !e.to_string().is_empty(),
                    "{src}: {e}"
                ),
                Ok(inference) => {
                    let err = lower(&program, &inference).unwrap_err();
                    assert!(err.to_string().contains(needle), "{src}: {err}");
                }
            }
        }
    }
}
