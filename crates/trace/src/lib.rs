//! Structured per-rank event tracing for the Otter execution stack.
//!
//! Every layer of the simulator can emit [`TraceEvent`]s into a shared
//! [`TraceSink`]: the message-passing substrate records `Compute`, `Send`,
//! `Recv`, `Collective` and `Barrier` primitives stamped with simulated
//! (virtual) start/end clocks; the distributed runtime and the SPMD executor
//! add `Phase` and `Statement` spans on top. The three engines (interpreter,
//! matcom, otter) all trace through this one schema.
//!
//! Tracing is opt-in and zero-cost when disabled: callers hold an
//! `Arc<dyn TraceSink>` that defaults to [`NoopSink`], and emitters gate on a
//! cached `enabled()` flag so the disabled path never constructs an event.
//!
//! On top of the raw stream this crate provides:
//!
//! * [`timelines`] — per-rank compute/comm/idle second totals,
//! * [`critical_path`] — the longest dependency chain through the send/recv
//!   graph and the share of communication on it,
//! * [`chrome_trace`] — a Chrome `trace_event` JSON exporter (load the output
//!   in `chrome://tracing` or Perfetto).

mod analyze;
mod chrome;
mod event;
mod sink;

pub use analyze::{critical_path, timelines, CriticalPath, RankTimeline};
pub use chrome::chrome_trace;
pub use event::{EventKind, TraceEvent};
pub use sink::{MemorySink, NoopSink, TraceSink};
