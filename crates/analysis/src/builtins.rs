//! The compiler's built-in function and constant tables.
//!
//! The paper: "Currently our system implements a small number of
//! MATLAB functions." This module is that set — the functions the
//! paper's four benchmark scripts require, plus the constants.
//! Identifier resolution consults these tables to classify names that
//! are never assigned.

/// Built-in functions the compiler can lower.
pub const BUILTIN_FUNCTIONS: &[&str] = &[
    "zeros",
    "ones",
    "eye",
    "rand",
    "linspace", // constructors
    "size",
    "length",
    "numel", // shape queries
    "abs",
    "sqrt",
    "sin",
    "cos",
    "tan",
    "exp",
    "log",
    "log2",
    "floor",
    "ceil",
    "round",
    "sign",
    "mod",
    "rem", // element-wise math
    "sum",
    "mean",
    "prod",
    "max",
    "min",
    "any",
    "all",
    "norm",
    "dot",
    "trapz",
    "trapz2",    // reductions
    "circshift", // structural
    "disp",
    "load", // I/O
];

/// Built-in constants (zero-argument value names).
pub const BUILTIN_CONSTANTS: &[&str] = &["pi", "eps", "Inf", "inf", "NaN", "nan"];

/// Is `name` a built-in function?
pub fn is_builtin_function(name: &str) -> bool {
    BUILTIN_FUNCTIONS.contains(&name)
}

/// Is `name` a built-in constant?
pub fn is_builtin_constant(name: &str) -> bool {
    BUILTIN_CONSTANTS.contains(&name)
}

/// Value of a built-in constant.
pub fn constant_value(name: &str) -> Option<f64> {
    match name {
        "pi" => Some(std::f64::consts::PI),
        "eps" => Some(f64::EPSILON),
        "Inf" | "inf" => Some(f64::INFINITY),
        "NaN" | "nan" => Some(f64::NAN),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(is_builtin_function("trapz2"));
        assert!(is_builtin_function("zeros"));
        assert!(!is_builtin_function("pi"));
        assert!(is_builtin_constant("pi"));
        assert!(!is_builtin_constant("zeros"));
        assert!(!is_builtin_function("qr"));
    }

    #[test]
    fn constant_values() {
        assert_eq!(constant_value("pi"), Some(std::f64::consts::PI));
        assert!(constant_value("NaN").unwrap().is_nan());
        assert_eq!(constant_value("zeros"), None);
    }
}
