//! A small forward-dataflow framework over the SPMD IR.
//!
//! An [`Analysis`] supplies a per-variable fact type (a join
//! semilattice) and a transfer function; the runner walks a block in
//! execution order, joining environments at `if` merges and iterating
//! loop bodies to a fixpoint. Because every lattice here has finite
//! height and environments only grow upward under `join`, the
//! fixpoint terminates; [`MAX_FIXPOINT_ITERS`] is a belt-and-braces
//! bound, not a load-bearing one.
//!
//! Loop *headers* re-run on every fixpoint iteration (a `for` var is
//! redefined each trip; a `while` pre-block re-executes), so kill
//! effects inside transfer functions see the same order real
//! execution does. Transfer functions may be invoked several times
//! for one instruction — any findings they record must therefore be
//! deduplicated by the caller.

use otter_ir::*;
use std::collections::{BTreeMap, BTreeSet};

/// Upper bound on loop fixpoint iterations (the lattices in this
/// crate stabilise in 2–3).
const MAX_FIXPOINT_ITERS: usize = 16;

/// A join-semilattice fact.
pub trait Lattice: Clone + PartialEq {
    /// The "no information" element (absent environment entries).
    fn bottom() -> Self;
    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;
}

/// A variable-name-keyed fact environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Env<F> {
    map: BTreeMap<String, F>,
}

impl<F: Lattice> Default for Env<F> {
    fn default() -> Self {
        Env {
            map: BTreeMap::new(),
        }
    }
}

impl<F: Lattice> Env<F> {
    /// Fact for a name (bottom when never set).
    pub fn get(&self, name: &str) -> F {
        self.map.get(name).cloned().unwrap_or_else(F::bottom)
    }

    pub fn set(&mut self, name: impl Into<String>, fact: F) {
        self.map.insert(name.into(), fact);
    }

    /// Point-wise join with another environment (the `if` merge).
    pub fn join_with(&mut self, other: &Env<F>) {
        for (k, v) in &other.map {
            let joined = self.get(k).join(v);
            self.map.insert(k.clone(), joined);
        }
    }

    /// The names currently carrying a fact.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.map.keys()
    }
}

/// Where the walk currently is: loop nesting and rank-divergent
/// control-flow nesting.
#[derive(Debug, Default)]
pub struct FlowCtx {
    /// Variables defined (at any depth) by each enclosing loop body,
    /// innermost last. Length doubles as the loop depth.
    pub loop_defs: Vec<BTreeSet<String>>,
    /// How many enclosing branches/loops have a rank-divergent
    /// condition (per [`Analysis::cond_divergent`]).
    pub divergent_depth: usize,
}

impl FlowCtx {
    pub fn in_loop(&self) -> bool {
        !self.loop_defs.is_empty()
    }

    pub fn divergent(&self) -> bool {
        self.divergent_depth > 0
    }

    /// Is `name` (re)defined by any enclosing loop's body — i.e. does
    /// it vary across iterations?
    pub fn defined_in_enclosing_loop(&self, name: &str) -> bool {
        self.loop_defs.iter().any(|defs| defs.contains(name))
    }
}

/// One forward analysis: a fact lattice plus a transfer function.
pub trait Analysis {
    type Fact: Lattice;

    /// Apply one instruction's effect to the environment. Never
    /// recurses into nested bodies — the runner drives those.
    fn transfer(&mut self, instr: &Instr, env: &mut Env<Self::Fact>, ctx: &FlowCtx);

    /// Whether a (nominally replicated) scalar condition is actually
    /// rank-divergent under the current facts. Default: never.
    fn cond_divergent(&self, _cond: &SExpr, _env: &Env<Self::Fact>) -> bool {
        false
    }
}

/// All variables defined anywhere inside a block, nested bodies
/// included.
pub fn block_defs(body: &[Instr]) -> BTreeSet<String> {
    fn walk(body: &[Instr], out: &mut BTreeSet<String>) {
        for instr in body {
            let mut defs = Vec::new();
            instr.defs(&mut defs);
            out.extend(defs);
            match instr {
                Instr::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, out);
                    walk(else_body, out);
                }
                Instr::While { pre, body, .. } => {
                    walk(pre, out);
                    walk(body, out);
                }
                Instr::For { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(body, &mut out);
    out
}

/// Run an analysis over a block in execution order.
pub fn run_block<A: Analysis>(
    a: &mut A,
    body: &[Instr],
    env: &mut Env<A::Fact>,
    ctx: &mut FlowCtx,
) {
    for instr in body {
        match instr {
            Instr::If {
                cond,
                then_body,
                else_body,
            } => {
                a.transfer(instr, env, ctx);
                let div = a.cond_divergent(cond, env);
                if div {
                    ctx.divergent_depth += 1;
                }
                let mut else_env = env.clone();
                run_block(a, then_body, env, ctx);
                run_block(a, else_body, &mut else_env, ctx);
                env.join_with(&else_env);
                if div {
                    ctx.divergent_depth -= 1;
                }
            }
            Instr::While { pre, cond, body } => {
                let mut defs = block_defs(pre);
                defs.extend(block_defs(body));
                ctx.loop_defs.push(defs);
                for _ in 0..MAX_FIXPOINT_ITERS {
                    let before = env.clone();
                    a.transfer(instr, env, ctx);
                    run_block(a, pre, env, ctx);
                    let div = a.cond_divergent(cond, env);
                    if div {
                        ctx.divergent_depth += 1;
                    }
                    run_block(a, body, env, ctx);
                    if div {
                        ctx.divergent_depth -= 1;
                    }
                    env.join_with(&before);
                    if *env == before {
                        break;
                    }
                }
                ctx.loop_defs.pop();
            }
            Instr::For { body, .. } => {
                let mut defs = block_defs(body);
                let mut own = Vec::new();
                instr.defs(&mut own);
                defs.extend(own);
                ctx.loop_defs.push(defs);
                let div = for_bounds_divergent(a, instr, env);
                if div {
                    ctx.divergent_depth += 1;
                }
                for _ in 0..MAX_FIXPOINT_ITERS {
                    let before = env.clone();
                    // The header re-runs per iteration: the induction
                    // variable is redefined on every trip.
                    a.transfer(instr, env, ctx);
                    run_block(a, body, env, ctx);
                    env.join_with(&before);
                    if *env == before {
                        break;
                    }
                }
                if div {
                    ctx.divergent_depth -= 1;
                }
                ctx.loop_defs.pop();
            }
            _ => a.transfer(instr, env, ctx),
        }
    }
}

fn for_bounds_divergent<A: Analysis>(a: &A, instr: &Instr, env: &Env<A::Fact>) -> bool {
    let Instr::For {
        start, step, stop, ..
    } = instr
    else {
        return false;
    };
    [start, step, stop]
        .into_iter()
        .any(|e| a.cond_divergent(e, env))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy constant-ness analysis to exercise the runner: a var is
    /// Const if every reaching def assigned a literal.
    #[derive(Clone, PartialEq, Debug)]
    enum K {
        Bot,
        Const,
        Var,
    }

    impl Lattice for K {
        fn bottom() -> Self {
            K::Bot
        }
        fn join(&self, other: &Self) -> Self {
            match (self, other) {
                (K::Bot, x) | (x, K::Bot) => x.clone(),
                (a, b) if a == b => a.clone(),
                _ => K::Var,
            }
        }
    }

    struct ConstA;

    impl Analysis for ConstA {
        type Fact = K;
        fn transfer(&mut self, instr: &Instr, env: &mut Env<K>, _ctx: &FlowCtx) {
            if let Instr::AssignScalar { dst, src } = instr {
                let f = match src {
                    SExpr::Const(_) => K::Const,
                    _ => K::Var,
                };
                env.set(dst.clone(), f);
            }
        }
    }

    fn assign(dst: &str, e: SExpr) -> Instr {
        Instr::AssignScalar {
            dst: dst.into(),
            src: e,
        }
    }

    #[test]
    fn if_merge_joins_branches() {
        let body = vec![Instr::If {
            cond: SExpr::var("c"),
            then_body: vec![assign("x", SExpr::c(1.0))],
            else_body: vec![assign("x", SExpr::var("y"))],
        }];
        let mut env = Env::default();
        run_block(&mut ConstA, &body, &mut env, &mut FlowCtx::default());
        assert_eq!(env.get("x"), K::Var, "const joined with non-const");
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // x starts Const, the loop assigns it from y → joins to Var.
        let body = vec![
            assign("x", SExpr::c(0.0)),
            Instr::For {
                var: "i".into(),
                start: SExpr::c(1.0),
                step: SExpr::c(1.0),
                stop: SExpr::c(3.0),
                body: vec![assign("x", SExpr::var("y"))],
            },
        ];
        let mut env = Env::default();
        run_block(&mut ConstA, &body, &mut env, &mut FlowCtx::default());
        assert_eq!(env.get("x"), K::Var);
    }

    #[test]
    fn loop_defs_tracked() {
        let body = vec![assign("x", SExpr::var("q"))];
        let defs = block_defs(&body);
        assert!(defs.contains("x"));
        assert!(!defs.contains("q"));
    }
}
