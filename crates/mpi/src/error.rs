//! Typed communication failures.
//!
//! Every fallible `Comm` operation returns a [`CommError`] instead of
//! panicking inside the rank thread, so the launcher can assemble a
//! per-rank failure report (see `runner::FailureReport`) with the
//! surviving ranks' partial results intact.

use std::fmt;

/// One edge of the blocked-rank wait-for graph: `waiter` is blocked in
/// a receive that only `waiting_on` can satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    pub waiter: usize,
    pub waiting_on: usize,
}

impl fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.waiter, self.waiting_on)
    }
}

/// Find a wait-for cycle in a static edge snapshot, canonicalized to
/// start at its smallest member — the same spelling the live detector
/// (`JobState::diagnose_deadlock`) produces.
///
/// This is the *offline* half of deadlock diagnosis: a postmortem
/// bundle serializes the final wait-for edges, and `harness postmortem`
/// re-runs the cycle search from the bundle alone, with no live job.
/// Unlike the live detector there are no epochs or confirmation
/// windows to consult; the snapshot is already final.
pub fn find_wait_cycle(edges: &[WaitEdge]) -> Option<Vec<WaitEdge>> {
    // Walk from each waiter in turn; the first closed walk wins. Edges
    // come from per-rank failure records, so each waiter appears once.
    let next_of = |r: usize| edges.iter().find(|e| e.waiter == r).map(|e| e.waiting_on);
    let mut starts: Vec<usize> = edges.iter().map(|e| e.waiter).collect();
    starts.sort_unstable();
    for &start in &starts {
        let mut path: Vec<usize> = Vec::new();
        let mut cur = start;
        while let Some(next) = next_of(cur) {
            path.push(cur);
            if let Some(pos) = path.iter().position(|&r| r == next) {
                let cycle = &path[pos..];
                let min_pos = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &r)| r)
                    .map(|(i, _)| i)
                    .unwrap();
                let n = cycle.len();
                return Some(
                    (0..n)
                        .map(|i| {
                            let waiter = cycle[(min_pos + i) % n];
                            WaitEdge {
                                waiter,
                                waiting_on: next_of(waiter).unwrap(),
                            }
                        })
                        .collect(),
                );
            }
            if path.len() > edges.len() {
                break;
            }
            cur = next;
        }
    }
    None
}

/// Why a communication operation failed on one rank.
///
/// The display strings are stable enough to grep in CI; the
/// machine-readable discriminant is [`CommError::code`].
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// This rank is part of (or transitively blocked on) a wait-for
    /// cycle: every rank in `cycle` is blocked in a receive that only
    /// another member of the cycle could satisfy. Diagnosed from a
    /// confirmed wait-for snapshot, not a timeout.
    Deadlock {
        rank: usize,
        waiting_on: usize,
        /// The confirmed cycle, starting at its smallest member.
        cycle: Vec<WaitEdge>,
    },
    /// The peer this rank was talking to is gone: it finished the
    /// program, failed, or panicked without sending the awaited
    /// message (or before draining this rank's send).
    PeerTerminated { rank: usize, peer: usize },
    /// A send/recv/collective named a rank outside `0..size`.
    RankOutOfRange {
        rank: usize,
        /// The operation, e.g. `"send to"` or `"broadcast root"`.
        op: &'static str,
        target: usize,
        size: usize,
    },
    /// A send or receive named this rank itself.
    SelfMessage {
        rank: usize,
        op: &'static str,
        target: usize,
    },
    /// A message arrived with the wrong shape (e.g. a multi-element
    /// payload where a scalar was required).
    PayloadMismatch {
        rank: usize,
        from: usize,
        expected: usize,
        got: usize,
    },
    /// The rank was killed by the job's `FaultPlan` at its
    /// `op_index`-th communication operation (1-based).
    InjectedCrash { rank: usize, op_index: u64 },
    /// A blocking receive exceeded the hard fallback timeout with the
    /// peer still running and no diagnosable wait-for cycle.
    Stalled {
        rank: usize,
        waiting_on: usize,
        seconds: u64,
    },
    /// The rank body panicked; the panic was caught at the thread
    /// boundary instead of aborting the launcher.
    Panicked { rank: usize, message: String },
    /// The job could not be launched at all: the `SpmdOptions` or the
    /// rank count were invalid (zero ranks, a zero-worker pool). No
    /// rank ever ran; the report carries this error on rank 0.
    InvalidConfig { reason: String },
}

impl CommError {
    /// Stable machine-readable discriminant, used by the harness
    /// failure report and CI greps.
    pub fn code(&self) -> &'static str {
        match self {
            CommError::Deadlock { .. } => "deadlock",
            CommError::PeerTerminated { .. } => "peer_terminated",
            CommError::RankOutOfRange { .. } => "rank_out_of_range",
            CommError::SelfMessage { .. } => "self_message",
            CommError::PayloadMismatch { .. } => "payload_mismatch",
            CommError::InjectedCrash { .. } => "injected_crash",
            CommError::Stalled { .. } => "stalled",
            CommError::Panicked { .. } => "panicked",
            CommError::InvalidConfig { .. } => "invalid_config",
        }
    }

    /// The rank this error was observed on. A launch-time
    /// configuration error precedes any rank, and is attributed to
    /// rank 0 by convention.
    pub fn rank(&self) -> usize {
        match *self {
            CommError::InvalidConfig { .. } => 0,
            CommError::Deadlock { rank, .. }
            | CommError::PeerTerminated { rank, .. }
            | CommError::RankOutOfRange { rank, .. }
            | CommError::SelfMessage { rank, .. }
            | CommError::PayloadMismatch { rank, .. }
            | CommError::InjectedCrash { rank, .. }
            | CommError::Stalled { rank, .. }
            | CommError::Panicked { rank, .. } => rank,
        }
    }

    /// The peer this rank was blocked on when it failed, if the
    /// failure was a blocked receive. Feeds the job report's
    /// blocked-peer inversion ("who was waiting on the dead rank").
    pub fn waiting_on(&self) -> Option<usize> {
        match *self {
            CommError::Deadlock { waiting_on, .. } | CommError::Stalled { waiting_on, .. } => {
                Some(waiting_on)
            }
            CommError::PeerTerminated { peer, .. } => Some(peer),
            _ => None,
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Deadlock {
                rank,
                waiting_on,
                cycle,
            } => {
                write!(
                    f,
                    "rank {rank} deadlocked waiting for a message from rank {waiting_on}"
                )?;
                if !cycle.is_empty() {
                    write!(f, " (wait-for cycle: ")?;
                    for (i, e) in cycle.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            CommError::PeerTerminated { rank, peer } => write!(
                f,
                "rank {peer} terminated while rank {rank} awaited its message"
            ),
            CommError::RankOutOfRange {
                rank,
                op,
                target,
                size,
            } => write!(f, "rank {rank}: {op} rank {target} out of range 0..{size}"),
            CommError::SelfMessage { rank, op, target } => {
                write!(f, "rank {rank}: {op} rank {target} is a self-message")
            }
            CommError::PayloadMismatch {
                rank,
                from,
                expected,
                got,
            } => write!(
                f,
                "rank {rank}: message from rank {from} has {got} element(s), expected {expected}"
            ),
            CommError::InjectedCrash { rank, op_index } => {
                write!(f, "rank {rank} crashed by fault plan at comm op {op_index}")
            }
            CommError::Stalled {
                rank,
                waiting_on,
                seconds,
            } => write!(
                f,
                "rank {rank} stalled for {seconds}s waiting for rank {waiting_on} \
                 (peer still running, no wait-for cycle)"
            ),
            CommError::Panicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            CommError::InvalidConfig { reason } => {
                write!(f, "invalid SPMD configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_greppable_phrases() {
        let e = CommError::RankOutOfRange {
            rank: 0,
            op: "send to",
            target: 5,
            size: 2,
        };
        assert!(e.to_string().contains("out of range"));
        let e = CommError::PeerTerminated { rank: 1, peer: 0 };
        assert!(e.to_string().contains("terminated"));
    }

    #[test]
    fn waiting_on_reports_blocked_edges_only() {
        let d = CommError::Deadlock {
            rank: 2,
            waiting_on: 3,
            cycle: vec![],
        };
        assert_eq!(d.waiting_on(), Some(3));
        let c = CommError::InjectedCrash {
            rank: 2,
            op_index: 1,
        };
        assert_eq!(c.waiting_on(), None);
        assert_eq!(c.code(), "injected_crash");
    }
}
