//! # otter-serve
//!
//! `otterd`: the compiler as a persistent service. Instead of paying
//! passes 1–6 on every invocation, a daemon keeps a content-addressed
//! cache of [`otter_core::CompiledArtifact`]s — keyed by `(source
//! hash, option fingerprint)` — and serves compile and run jobs over
//! a Unix-domain socket speaking newline-delimited JSON
//! ([`proto::SERVE_SCHEMA`]). Concurrent jobs share one worker budget
//! through [`otter_mpi::JobGate`], and the daemon exports `serve_*`
//! metric families (plus merged per-job engine metrics) as Prometheus
//! text on an optional HTTP endpoint.
//!
//! The split this crate rides on is the PR's core API change:
//! [`otter_core::compile`] produces an immutable artifact,
//! [`otter_core::run`] executes it — so a cache hit is an `Arc` clone
//! and the warm path runs zero compiler passes.
//!
//! ```no_run
//! use otter_serve::{JobOptions, ServeClient, ServeConfig, Server};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind(ServeConfig::default())?;
//! let socket = server.socket().clone();
//! std::thread::spawn(move || server.run());
//! let mut client =
//!     ServeClient::connect_with_retry(&socket, std::time::Duration::from_secs(2))?;
//! let reply = client.run("x = 1 + 1;", JobOptions::default(), "meiko", 4, None)?;
//! assert!(!reply.cache_hit); // first sight of this script
//! client.shutdown()?;
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use cache::{ArtifactCache, CacheOutcome};
pub use client::{JobReply, ServeClient};
pub use proto::{machine_by_name, JobOptions, Request, SERVE_SCHEMA};
pub use server::{ServeConfig, Server, ServerHandle};
