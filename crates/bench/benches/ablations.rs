//! Criterion benches for the ablation studies: peephole on/off and
//! compiler-pipeline cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otter_core::{compile, run_compiled, CompileOptions};
use otter_machine::meiko_cs2;

fn bench_peephole(c: &mut Criterion) {
    let machine = meiko_cs2();
    let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params::test());
    let with = compile(&app.script, &otter_frontend::EmptyProvider, &CompileOptions::default())
        .unwrap();
    let without = compile(
        &app.script,
        &otter_frontend::EmptyProvider,
        &CompileOptions { no_peephole: true, ..Default::default() },
    )
    .unwrap();
    let mut g = c.benchmark_group("ablation_peephole");
    g.sample_size(10);
    g.bench_function("cg_with_peephole", |b| {
        b.iter(|| run_compiled(&with, &machine, 4).unwrap())
    });
    g.bench_function("cg_without_peephole", |b| {
        b.iter(|| run_compiled(&without, &machine, 4).unwrap())
    });
    g.finish();
}

fn bench_compile_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler_pipeline");
    for app in otter_apps::test_apps() {
        g.bench_with_input(BenchmarkId::new("compile", app.id), &app, |b, app| {
            b.iter(|| otter_core::compile_str(&app.script).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_peephole, bench_compile_time);
criterion_main!(benches);
