//! Invariants of the metrics subsystem.
//!
//! Three layers: the histogram/snapshot merge algebra must be
//! associative and commutative (that is what makes the job-level
//! snapshot independent of rank arrival order); the job snapshot an
//! engine run reports must agree exactly with the `EngineReport`
//! counters it rides along with (the metrics are a second witness of
//! the same events, not an estimate); and turning metrics on must not
//! perturb the simulation — Figure 2 renders byte-identical either
//! way.

use otter_bench::render::render_fig2_csv;
use otter_bench::{fig2_with, Scale};
use otter_core::{run_engine, EngineOptions, OtterEngine};
use otter_det::DetRng;
use otter_metrics::{Histogram, MetricsRegistry, MetricsSnapshot};

// ---- merge algebra --------------------------------------------------------

/// Integer-valued samples spanning many buckets: addition of integers
/// up to a few thousand is exact in f64, so `sum` comparisons below
/// are exact equality, not tolerance checks.
fn sample_values(rng: &mut DetRng, n: usize) -> Vec<f64> {
    (0..n)
        .map(|_| match rng.gen_index(8) {
            0 => 0.0,                                // underflow bucket
            k => (rng.gen_index(1 << k) + 1) as f64, // 1 ..= 2^k
        })
        .collect()
}

fn hist_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    let mut rng = DetRng::seed_from_u64(0x0717);
    for trial in 0..50 {
        let (na, nb, nc) = (1 + rng.gen_index(40), rng.gen_index(40), rng.gen_index(40));
        let a = hist_of(&sample_values(&mut rng, na));
        let b = hist_of(&sample_values(&mut rng, nb));
        let c = hist_of(&sample_values(&mut rng, nc));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "associativity, trial {trial}");

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutativity, trial {trial}");
    }
}

#[test]
fn histogram_merge_equals_pooled_observations() {
    let mut rng = DetRng::seed_from_u64(0x5EED);
    for _ in 0..20 {
        let xs = sample_values(&mut rng, 30);
        let ys = sample_values(&mut rng, 30);
        let mut merged = hist_of(&xs);
        merged.merge(&hist_of(&ys));
        let pooled = hist_of(&xs.iter().chain(&ys).copied().collect::<Vec<_>>());
        assert_eq!(merged, pooled);
    }
}

#[test]
fn snapshot_merge_is_rank_order_independent() {
    // Simulate 4 ranks with overlapping and disjoint keys, then merge
    // the snapshots in several different orders.
    let mut rng = DetRng::seed_from_u64(0xC0FFEE);
    let mut snaps = Vec::new();
    for rank in 0..4u64 {
        let mut r = MetricsRegistry::new();
        r.inc("msgs", &[], 10 + rank);
        r.gauge_max("peak", &[], (rank * 7 % 5) as f64);
        for v in sample_values(&mut rng, 25) {
            r.observe(
                "lat",
                &[("op", if rank % 2 == 0 { "send" } else { "recv" })],
                v,
            );
        }
        if rank == 2 {
            r.inc("only_rank2", &[], 1);
        }
        snaps.push(r.snapshot());
    }
    let forward = MetricsSnapshot::merged(snaps.iter());
    let reverse = MetricsSnapshot::merged(snaps.iter().rev());
    let shuffled = MetricsSnapshot::merged([&snaps[2], &snaps[0], &snaps[3], &snaps[1]]);
    assert_eq!(forward, reverse);
    assert_eq!(forward, shuffled);
    assert_eq!(forward.counter("msgs", &[]), Some(10 + 11 + 12 + 13));
    assert_eq!(forward.counter("only_rank2", &[]), Some(1));
}

// ---- metrics agree with the EngineReport counters -------------------------

#[test]
fn merged_totals_equal_report_counters() {
    let opts = EngineOptions::builder().metrics(true).build();
    let machine = otter_machine::meiko_cs2();
    for app in otter_apps::test_apps() {
        for p in [1usize, 2, 4, 8] {
            let report = run_engine(
                &mut OtterEngine::new(opts.clone()),
                &app.script,
                &machine,
                p,
            )
            .unwrap_or_else(|e| panic!("{} x{p}: {e}", app.id));
            let ctx = format!("{} x{p}", app.id);
            let m = report
                .metrics
                .as_ref()
                .unwrap_or_else(|| panic!("{ctx}: metrics enabled but report.metrics is None"));

            // Traffic: the comm-layer counters are a second tally of
            // exactly the packets the runner's stats counted.
            assert_eq!(
                m.counter("comm_messages_total", &[]).unwrap_or(0),
                report.messages,
                "{ctx}: messages"
            );
            assert_eq!(
                m.counter("comm_bytes_total", &[]).unwrap_or(0),
                report.bytes,
                "{ctx}: bytes"
            );
            let msg_hist_count = m
                .histogram("message_bytes", &[])
                .map(|h| h.count())
                .unwrap_or(0);
            assert_eq!(msg_hist_count, report.messages, "{ctx}: message size hist");

            // Ops: every rank executes the same instruction sequence
            // (SPMD), so the merged per-opcode counters are exactly p
            // times rank 0's counts.
            for (op, n) in &report.op_counts {
                assert_eq!(
                    m.counter("ops_total", &[("op", op)]),
                    Some(p as u64 * n),
                    "{ctx}: ops_total{{op={op}}}"
                );
            }
            assert_eq!(m.counter_sum("ops_total"), {
                p as u64 * report.op_counts.values().sum::<u64>()
            });

            // Memory: max-gauges across ranks must equal the report's
            // high-water marks.
            assert_eq!(
                m.gauge("alloc_peak_bytes", &[]),
                Some(report.peak_temp_bytes as f64),
                "{ctx}: allocator peak"
            );
            assert_eq!(
                m.gauge("workspace_peak_bytes", &[]),
                Some(report.peak_rank_bytes as f64),
                "{ctx}: workspace peak"
            );

            // Clocks: one observation per rank, the slowest being the
            // modeled time; the imbalance gauge is consistent with it.
            let clocks = m.histogram("rank_clock_seconds", &[]).unwrap();
            assert_eq!(clocks.count(), p as u64, "{ctx}: one clock per rank");
            assert_eq!(clocks.max(), Some(report.modeled_seconds), "{ctx}: slowest");
            let ratio = m.gauge("load_imbalance_ratio", &[]).unwrap();
            assert!(ratio >= 1.0, "{ctx}: imbalance {ratio}");

            // Compile-side pass timings ride along in the job snapshot.
            let passes = m.histogram("compile_pass_seconds", &[("pass", "parse")]);
            assert!(passes.is_some(), "{ctx}: missing compile_pass_seconds");

            if p > 1 {
                assert!(report.messages > 0, "{ctx}: apps must communicate");
                assert!(
                    m.counter_sum("collectives_total") > 0,
                    "{ctx}: no collectives recorded"
                );
            }
        }
    }
}

#[test]
fn metrics_off_means_no_snapshot() {
    let app = &otter_apps::test_apps()[0];
    let machine = otter_machine::meiko_cs2();
    let report = run_engine(
        &mut OtterEngine::new(EngineOptions::default()),
        &app.script,
        &machine,
        4,
    )
    .unwrap();
    assert!(report.metrics.is_none());
}

// ---- observability is free ------------------------------------------------

#[test]
fn metrics_is_zero_cost() {
    // Enabling metrics must not change a single modeled number:
    // Figure 2's CSV renders byte-identical with the knob on and off.
    let off = render_fig2_csv(&fig2_with(Scale::Test, &EngineOptions::default()));
    let on = render_fig2_csv(&fig2_with(
        Scale::Test,
        &EngineOptions::builder().metrics(true).build(),
    ));
    assert_eq!(off, on);
}
