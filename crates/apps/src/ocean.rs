//! Benchmark 2 — ocean engineering (paper §5):
//! "an ocean engineering application from the Department of Civil
//! Engineering at Oregon State University. It evaluates the nonlinear
//! wave excitation force on a submerged sphere using the Morrison
//! equation. It requires vector shifts, outer products, and calls to
//! the built-in function trapz2."
//!
//! The original script is unavailable; this reconstruction computes
//! the Morrison-equation force history of a linear (Airy) wave on a
//! submerged sphere — drag term `½ρ C_d A u|u|` plus inertia term
//! `ρ C_m V u̇` — with the acceleration from centred differences
//! implemented as *vector shifts*, the impulse from `trapz2`, and a
//! depth-decay pressure field from an *outer product*: the exact
//! primitive mix the paper names.

use crate::App;

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Time samples over one wave period.
    pub nt: usize,
    /// Depth samples for the pressure field.
    pub nz: usize,
}

impl Params {
    /// Paper-era scale: the paper notes "the size of the data set is
    /// relatively small, and most of the operations performed have
    /// O(n) time complexity".
    pub fn paper() -> Params {
        Params { nt: 16384, nz: 64 }
    }

    /// Test scale.
    pub fn test() -> Params {
        Params { nt: 256, nz: 8 }
    }

    /// Large scale: O(n) vector kernels over a long time series.
    pub fn large() -> Params {
        Params { nt: 4096, nz: 32 }
    }
}

/// Build the ocean-engineering benchmark script.
pub fn ocean_engineering(p: Params) -> App {
    let Params { nt, nz } = p;
    let script = format!(
        "\
% Morrison-equation wave force on a submerged sphere.
nt = {nt};
nz = {nz};
t = linspace(0, 6.28318530717958647692, nt);
% Airy wave kinematics at the sphere's depth (deterministic).
uvel = sin(t) + 0.3 * sin(2 * t);
% Centred-difference acceleration via circular vector shifts.
dt = t(2) - t(1);
uplus = circshift(uvel, -1);
uminus = circshift(uvel, 1);
accel = (uplus - uminus) / (2 * dt);
% Morrison equation: drag + inertia.
rho = 1025;
cd = 1.0;
cm = 2.0;
dia = 2.0;
area = 3.14159265358979323846 * dia * dia / 4;
vol = 3.14159265358979323846 * dia * dia * dia / 6;
fdrag = 0.5 * rho * cd * area * (uvel .* abs(uvel));
finert = rho * cm * vol * accel;
f = fdrag + finert;
% Integral quantities the engineers report.
impulse = trapz2(t, f);
fpeak = max(abs(f));
frms = sqrt(mean(f .* f));
% Depth-decayed force field (outer product) and its energy.
z = linspace(0, 20, nz);
decay = exp(z / -6.3);
field = decay' * f;
energy = sum(sum(field .* field)) * dt;
"
    );
    App {
        name: "Ocean Engineering",
        id: "ocean",
        script,
        result_vars: vec!["impulse", "fpeak", "frms", "energy"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physics_sanity() {
        let app = ocean_engineering(Params::test());
        let out = otter_interp::run_script(&app.script, None)
            .unwrap_or_else(|e| panic!("{e}\n{}", app.script));
        let fpeak = out.scalar("fpeak").unwrap();
        let frms = out.scalar("frms").unwrap();
        let energy = out.scalar("energy").unwrap();
        assert!(fpeak > 0.0 && frms > 0.0 && energy > 0.0);
        assert!(frms < fpeak, "RMS below peak");
        // The wave is symmetric, so drag impulse nearly cancels and
        // inertia integrates to ~0 over a full period: net impulse is
        // small compared to peak·period.
        let impulse = out.scalar("impulse").unwrap();
        assert!(impulse.abs() < fpeak, "impulse={impulse} fpeak={fpeak}");
    }

    #[test]
    fn field_scales_with_depth_samples() {
        let small = ocean_engineering(Params { nt: 128, nz: 4 });
        let big = ocean_engineering(Params { nt: 128, nz: 16 });
        let e_small = otter_interp::run_script(&small.script, None)
            .unwrap()
            .scalar("energy")
            .unwrap();
        let e_big = otter_interp::run_script(&big.script, None)
            .unwrap()
            .scalar("energy")
            .unwrap();
        assert!(e_big > e_small, "more depth samples add energy rows");
    }
}
