//! # otter-mpi
//!
//! Message-passing substrate for Otter-compiled SPMD programs: the
//! stand-in for the MPI library of the paper's Figure 1 stack
//! (`MATLAB script → compiler → SPMD C + run-time library → MPI`).
//!
//! Each *rank* is a schedulable virtual task holding a [`Comm`]
//! endpoint: a fixed pool of `W` workers (host parallelism by
//! default, [`SpmdOptions::workers`] to override) multiplexes `p`
//! logical ranks, with a rank *parking* — releasing its worker —
//! whenever it blocks in a receive. Messages travel through `p`
//! per-rank mailboxes rather than a `p²` channel mesh, so jobs with
//! thousands of ranks are feasible on a laptop. Compiled programs
//! still really move data between really-parallel threads. On top of
//! the real execution, every endpoint maintains a **virtual clock**
//! charged against an [`otter_machine::Machine`] model: compute
//! advances the local clock, a message delivers at
//! `max(receiver clock, sender clock + α + bytes·β)` — a conservative
//! parallel-discrete-event simulation. This is how the repo reproduces
//! the paper's speedup curves for hardware that no longer exists
//! (Meiko CS-2, SPARC-20 Ethernet cluster, Enterprise SMP) while still
//! computing real answers.
//!
//! Failures are data, not panics: every fallible operation returns a
//! typed [`CommError`], blocked receives publish themselves into a
//! shared wait-for registry so deadlocks are *diagnosed* (with the
//! full cycle) instead of timed out, and [`run_spmd_with`] returns a
//! [`JobResult`] whose error carries a per-rank [`FailureReport`]
//! plus the surviving ranks' complete results. A seeded [`FaultPlan`]
//! in [`SpmdOptions`] deterministically drops, delays, or crashes to
//! exercise those paths end-to-end.
//!
//! ```
//! use otter_mpi::{run_spmd, ReduceOp};
//! use otter_machine::meiko_cs2;
//!
//! let results = run_spmd(&meiko_cs2(), 4, |comm| {
//!     let mine = vec![comm.rank() as f64 + 1.0];
//!     let total = comm.allreduce(&mine, ReduceOp::Sum)?;
//!     Ok(total[0])
//! });
//! assert!(results.iter().all(|r| r.value == 10.0));
//! ```

pub mod admission;
pub mod collectives;
pub mod comm;
pub mod error;
pub mod fault;
mod mailbox;
pub mod runner;
mod sched;
mod state;

pub use admission::{JobGate, JobPermit};
pub use collectives::{CollectiveAlgo, ReduceOp};
pub use comm::{Comm, CommStats};
pub use error::{find_wait_cycle, CommError, WaitEdge};
pub use fault::{FaultAction, FaultPlan};
pub use runner::{
    default_workers, job_time, run_spmd, run_spmd_with, FailureReport, JobFailure, JobResult,
    RankFailure, RankResult, SpmdOptions,
};
