//! Deterministic pseudo-random numbers for the Otter workspace.
//!
//! Everything in this reproduction must be bitwise reproducible: the
//! interpreter's `rand` builtin, the SPMD executor's replicated
//! matrix initialisation, and the randomised test-input generators
//! all need streams that are identical across runs, platforms, and
//! process counts. A tiny local generator gives us that without an
//! external dependency, and keeps the seed → stream mapping frozen
//! forever (a crate upgrade can never silently change test oracles).
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) —
//! a 64-bit state, output-mixed counter generator. It is not
//! cryptographic; it is statistically solid, fast, and trivially
//! seedable from any `u64`, which is exactly what a compiler test
//! bed needs.

/// A seeded deterministic random-number generator (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Construct from a 64-bit seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Mirrors `rand`'s `gen_range(lo..hi)`
    /// call shape so call sites read the same.
    pub fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + self.next_f64() * (range.end - range.start)
    }

    /// Uniform integer in `[0, n)` (for index/shape generation in
    /// tests). Uses rejection-free modulo; bias is negligible for the
    /// small `n` used in test generators.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index: empty domain");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn range_respected_and_covers() {
        let mut r = DetRng::seed_from_u64(9);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let x = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x), "{x}");
            if x < 0.0 {
                lo_half += 1;
            }
        }
        // Roughly balanced halves — catches sign/scale bugs.
        assert!((4000..6000).contains(&lo_half), "{lo_half}");
    }

    #[test]
    fn stream_is_frozen() {
        // Golden values: the seed → stream mapping is part of the
        // workspace contract (test oracles depend on it). If this
        // test fails, reproducibility across PRs has been broken.
        let mut r = DetRng::seed_from_u64(0x07732);
        assert_eq!(r.next_u64(), 0xA50E_ADBC_4AFC_F731);
        assert_eq!(r.next_u64(), 0x561A_6B5D_2A1B_700E);
    }

    #[test]
    fn gen_index_in_bounds() {
        let mut r = DetRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
