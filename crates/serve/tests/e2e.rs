//! End-to-end serve tests over a real Unix socket: an in-process
//! [`Server`] on its own thread, a [`ServeClient`] session driving
//! the `otter-serve/v1` protocol, all four benchmark apps submitted
//! twice (round two must be all cache hits), the stats and metrics
//! ops, the HTTP scrape endpoint, and a protocol-level shutdown.

use otter_serve::{JobOptions, ServeClient, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct Daemon {
    socket: PathBuf,
    metrics_addr: Option<std::net::SocketAddr>,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn spawn_daemon(metrics: bool) -> Daemon {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let cfg = ServeConfig {
        socket: std::env::temp_dir().join(format!(
            "otter-e2e-{}-{}.sock",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )),
        workers: 4,
        cache_capacity: 16,
        metrics_addr: metrics.then(|| "127.0.0.1:0".to_string()),
    };
    let server = Server::bind(cfg).expect("bind");
    Daemon {
        socket: server.socket().clone(),
        metrics_addr: server.metrics_addr(),
        handle: server.handle(),
        thread: Some(std::thread::spawn(move || server.run())),
    }
}

impl Daemon {
    fn client(&self) -> ServeClient {
        ServeClient::connect_with_retry(&self.socket, Duration::from_secs(5)).expect("connect")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.request_stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[test]
fn four_apps_twice_second_round_is_all_hits() {
    let daemon = spawn_daemon(false);
    let mut client = daemon.client();
    client.ping().expect("ping");
    let apps = otter_apps::test_apps();
    assert_eq!(apps.len(), 4);
    for round in 0..2 {
        for app in &apps {
            let reply = client
                .run(&app.script, JobOptions::default(), "meiko", 4, None)
                .unwrap_or_else(|e| panic!("{} round {round}: {e}", app.id));
            assert_eq!(
                reply.cache_hit,
                round == 1,
                "{} round {round}: first sight compiles, second round must hit",
                app.id
            );
        }
    }
    let stats = client.stats().expect("stats");
    let num = |k: &str| {
        stats
            .get(k)
            .and_then(otter_metrics::Json::as_num)
            .unwrap_or(-1.0)
    };
    assert_eq!(num("cache_hits"), 4.0);
    assert_eq!(num("cache_misses"), 4.0);
    assert_eq!(num("cache_entries"), 4.0);
}

#[test]
fn metrics_exposition_has_the_serve_families() {
    let daemon = spawn_daemon(true);
    let mut client = daemon.client();
    client
        .run("x = 1 + 1;", JobOptions::default(), "meiko", 2, None)
        .expect("cold job");
    client
        .run("x = 1 + 1;", JobOptions::default(), "meiko", 2, None)
        .expect("warm job");
    let text = client.metrics_text().expect("metrics op");
    for family in [
        "otter_serve_jobs_total",
        "otter_serve_cache_hits_total",
        "otter_serve_cache_misses_total",
        "otter_serve_compile_seconds",
        "otter_serve_run_seconds",
        "otter_serve_job_seconds",
        "otter_serve_workers_total",
    ] {
        assert!(text.contains(family), "missing family {family} in:\n{text}");
    }
    assert!(
        text.contains(r#"otter_serve_compile_seconds_count{cache_hit="true"}"#),
        "warm compiles must be labeled cache_hit=\"true\":\n{text}"
    );

    // The same exposition over plain HTTP, as a scraper (or curl)
    // would fetch it.
    let addr = daemon.metrics_addr.expect("http listener");
    let mut stream = std::net::TcpStream::connect(addr).expect("tcp connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send GET");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("otter_serve_jobs_total"), "{response}");
}

#[test]
fn errors_are_replies_not_disconnects() {
    let daemon = spawn_daemon(false);
    let mut client = daemon.client();
    let err = client
        .run("x = 1;", JobOptions::default(), "cray", 2, None)
        .expect_err("unknown machine must fail");
    assert!(err.contains("unknown machine"), "{err}");
    let err = client
        .run("x = ][;", JobOptions::default(), "meiko", 2, None)
        .expect_err("syntax error must fail");
    assert!(!err.is_empty());
    // The session survives both failures.
    client.ping().expect("session still alive");
}

#[test]
fn shutdown_op_stops_the_accept_loop_and_removes_the_socket() {
    let daemon = spawn_daemon(false);
    let mut client = daemon.client();
    client.shutdown().expect("shutdown op");
    let thread = {
        // Take the thread out so Drop doesn't double-join.
        let mut d = daemon;
        d.thread.take().expect("thread")
    };
    let result = thread.join().expect("no panic");
    assert!(result.is_ok(), "{result:?}");
}

#[test]
fn concurrent_sessions_share_the_cache() {
    let daemon = spawn_daemon(false);
    let script = otter_apps::test_apps().remove(0).script;
    // Warm the cache once, then hammer it from several sessions.
    daemon
        .client()
        .run(&script, JobOptions::default(), "meiko", 4, None)
        .expect("warm-up job");
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let script = &script;
            let daemon = &daemon;
            scope.spawn(move || {
                let mut session = daemon.client();
                for _ in 0..2 {
                    let reply = session
                        .run(script, JobOptions::default(), "meiko", 4, None)
                        .expect("job");
                    assert!(reply.cache_hit, "all post-warm-up jobs must hit");
                }
            });
        }
    });
}
