//! The reproduction's gold test: every benchmark application from the
//! paper's evaluation compiles through the full Otter pipeline and
//! produces results identical (to FP-reduction tolerance) to the
//! interpreter oracle, at every processor count on every modeled
//! machine.

mod common;

use common::{run_compiled, run_interpreter};
use otter_core::{compile, EngineOptions, EngineReport};
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster, workstation, Machine};

fn assert_app_matches(app: &otter_apps::App, machine: &Machine, ps: &[usize]) {
    let base = run_interpreter(&app.script, &workstation())
        .unwrap_or_else(|e| panic!("{}: interpreter: {e}", app.id));
    let compiled = compile(&app.script, &EngineOptions::default())
        .unwrap_or_else(|e| panic!("{}: compile: {e}", app.id));
    for &p in ps {
        if p > machine.max_cpus {
            continue;
        }
        let run: EngineReport = run_compiled(&compiled, machine, p)
            .unwrap_or_else(|e| panic!("{}: p={p}: {e}", app.id));
        for v in &app.result_vars {
            let a = base
                .scalar(v)
                .unwrap_or_else(|| panic!("{}: interpreter has no scalar `{v}`", app.id));
            let b = run
                .scalar(v)
                .unwrap_or_else(|| panic!("{}: compiled has no scalar `{v}`", app.id));
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                "{} on {} p={p}: `{v}` interpreter={a} otter={b}",
                app.id,
                machine.name
            );
        }
    }
}

#[test]
fn conjugate_gradient_matches_oracle_on_meiko() {
    let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params::test());
    assert_app_matches(&app, &meiko_cs2(), &[1, 2, 3, 4, 8, 16]);
}

#[test]
fn ocean_engineering_matches_oracle_on_meiko() {
    let app = otter_apps::ocean::ocean_engineering(otter_apps::ocean::Params::test());
    assert_app_matches(&app, &meiko_cs2(), &[1, 2, 3, 4, 8, 16]);
}

#[test]
fn n_body_matches_oracle_on_meiko() {
    let app = otter_apps::nbody::n_body(otter_apps::nbody::Params::test());
    assert_app_matches(&app, &meiko_cs2(), &[1, 2, 3, 4, 8, 16]);
}

#[test]
fn transitive_closure_matches_oracle_on_meiko() {
    let app = otter_apps::transitive::transitive_closure(otter_apps::transitive::Params::test());
    assert_app_matches(&app, &meiko_cs2(), &[1, 2, 3, 4, 8, 16]);
}

#[test]
fn all_apps_match_oracle_on_cluster() {
    // The cluster's hierarchical topology exercises different message
    // paths; answers must not depend on the machine model.
    for app in otter_apps::test_apps() {
        assert_app_matches(&app, &sparc20_cluster(), &[4, 8]);
    }
}

#[test]
fn all_apps_match_oracle_on_smp() {
    for app in otter_apps::test_apps() {
        assert_app_matches(&app, &enterprise_smp(), &[2, 8]);
    }
}

#[test]
fn odd_processor_counts_work() {
    // Block distribution with remainders: non-power-of-two ranks.
    for app in otter_apps::test_apps() {
        assert_app_matches(&app, &meiko_cs2(), &[5, 7, 11, 13]);
    }
}

#[test]
fn all_three_engines_agree_on_every_benchmark_app() {
    // Acceptance check for the unified `Engine` trait: the
    // interpreter, MATCOM, and Otter engines produce numerically equal
    // results on the four benchmark apps, and every report carries the
    // uniform counters.
    use otter_core::{run_engine, standard_engines, EngineOptions};
    for app in otter_apps::test_apps() {
        let mut reports = Vec::new();
        for mut engine in standard_engines(&EngineOptions::default()) {
            let name = engine.name();
            let r = run_engine(engine.as_mut(), &app.script, &meiko_cs2(), 8)
                .unwrap_or_else(|e| panic!("{}: {name}: {e}", app.id));
            assert!(r.total_ops() > 0, "{}: {}: no op counts", app.id, r.engine);
            assert!(r.modeled_seconds > 0.0, "{}: {}", app.id, r.engine);
            reports.push(r);
        }
        let base = &reports[0];
        for r in &reports[1..] {
            for v in &app.result_vars {
                let a = base
                    .scalar(v)
                    .unwrap_or_else(|| panic!("{}: {} lacks `{v}`", app.id, base.engine));
                let b = r
                    .scalar(v)
                    .unwrap_or_else(|| panic!("{}: {} lacks `{v}`", app.id, r.engine));
                assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                    "{}: `{v}` {}={a} vs {}={b}",
                    app.id,
                    base.engine,
                    r.engine
                );
            }
        }
        // Only the SPMD engine communicates; its per-rank counters must
        // sum to the totals.
        let otter = reports.iter().find(|r| r.engine == "otter").unwrap();
        assert_eq!(otter.per_rank.len(), 8, "{}", app.id);
        let msg_sum: u64 = otter.per_rank.iter().map(|c| c.messages).sum();
        assert_eq!(msg_sum, otter.messages, "{}", app.id);
        for r in &reports {
            if r.engine != "otter" {
                assert_eq!(r.messages, 0, "{}: {} is sequential", app.id, r.engine);
            }
        }
    }
}

#[test]
fn cg_actually_converges_in_compiled_form() {
    let app = otter_apps::cg::conjugate_gradient(otter_apps::cg::Params::test());
    let compiled = compile(&app.script, &EngineOptions::default()).unwrap();
    let run = run_compiled(&compiled, &meiko_cs2(), 8).unwrap();
    assert!(
        run.scalar("err").unwrap() < 1e-6,
        "err={:?}",
        run.scalar("err")
    );
}

#[test]
fn transitive_closure_is_total_in_compiled_form() {
    let p = otter_apps::transitive::Params::test();
    let app = otter_apps::transitive::transitive_closure(p);
    let compiled = compile(&app.script, &EngineOptions::default()).unwrap();
    let run = run_compiled(&compiled, &meiko_cs2(), 6).unwrap();
    assert_eq!(run.scalar("reach"), Some((p.n * p.n) as f64));
}
