//! Unified driver error type.

use std::fmt;

/// Any failure along the compile-or-execute path.
#[derive(Debug, Clone, PartialEq)]
pub enum OtterError {
    Frontend(String),
    Analysis(String),
    Codegen(String),
    Execution(String),
}

impl fmt::Display for OtterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OtterError::Frontend(m) => write!(f, "front-end: {m}"),
            OtterError::Analysis(m) => write!(f, "analysis: {m}"),
            OtterError::Codegen(m) => write!(f, "codegen: {m}"),
            OtterError::Execution(m) => write!(f, "execution: {m}"),
        }
    }
}

impl std::error::Error for OtterError {}

impl From<otter_frontend::FrontendError> for OtterError {
    fn from(e: otter_frontend::FrontendError) -> Self {
        OtterError::Frontend(e.to_string())
    }
}

impl From<otter_analysis::AnalysisError> for OtterError {
    fn from(e: otter_analysis::AnalysisError) -> Self {
        OtterError::Analysis(e.to_string())
    }
}

impl From<otter_codegen::CodegenError> for OtterError {
    fn from(e: otter_codegen::CodegenError) -> Self {
        OtterError::Codegen(e.to_string())
    }
}

impl From<otter_interp::InterpError> for OtterError {
    fn from(e: otter_interp::InterpError) -> Self {
        OtterError::Execution(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, OtterError>;
