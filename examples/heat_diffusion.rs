//! Domain example: 1-D heat diffusion by explicit finite differences —
//! the kind of numerical model the paper's introduction describes
//! scientists building in MATLAB ("debug their models in MATLAB using
//! a small data set, then ... wait for the MATLAB interpreter to
//! execute the script on a large data set, even if it requires several
//! CPU days").
//!
//! The stencil update uses circular vector shifts — the same primitive
//! as the ocean benchmark — with boundary fix-ups via scalar stores,
//! exercising the owner-computes machinery.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use otter_core::{compile, run, run_engine, EngineOptions, InterpreterEngine, RunRequest};
use otter_machine::{meiko_cs2, workstation};

fn main() {
    let n = 20_000;
    let steps = 200;
    let script = format!(
        "\
n = {n};
nsteps = {steps};
alpha = 0.24;
% Initial condition: a hot spike in a cold rod.
x = (1:n) / n;
u = exp(-((x - 0.5) .* (x - 0.5)) / 0.001)';
% Dirichlet boundaries.
u(1) = 0;
u(n) = 0;
for step = 1:nsteps
  % u_xx via circular shifts; boundaries repaired afterwards.
  left = circshift(u, 1);
  right = circshift(u, -1);
  u = u + alpha * (left - 2 * u + right);
  u(1) = 0;
  u(n) = 0;
end
peak = max(u);
heat = sum(u);
center = u(floor(n / 2));
"
    );

    // Scientists' workflow: interpreter first...
    let interp = run_engine(
        &mut InterpreterEngine::new(EngineOptions::default()),
        &script,
        &workstation(),
        1,
    )
    .expect("interpreter run");
    // ...then the unchanged script, compiled for the parallel machine.
    let artifact = compile(&script, &EngineOptions::default()).expect("compiles");
    let run16 = run(&artifact, &RunRequest::on(meiko_cs2(), 16)).expect("p=16");

    println!("1-D heat diffusion, n = {n} points, {steps} explicit steps\n");
    println!(
        "{:<24} {:>14} {:>14}",
        "quantity", "interpreter", "Otter x16"
    );
    println!("{}", "-".repeat(54));
    for (label, var) in [
        ("peak temperature", "peak"),
        ("total heat", "heat"),
        ("center", "center"),
    ] {
        println!(
            "{label:<24} {:>14.6} {:>14.6}",
            interp.scalar(var).unwrap(),
            run16.scalar(var).unwrap()
        );
    }
    println!();
    println!(
        "modeled time: interpreter {:.3} s → compiled on 16 Meiko CPUs {:.3} s ({:.1}x)",
        interp.modeled_seconds,
        run16.modeled_seconds,
        interp.modeled_seconds / run16.modeled_seconds
    );
    println!(
        "communication: {} messages, {} bytes (halo exchanges of the shift stencil)",
        run16.messages, run16.bytes
    );
}
