//! Element-wise and structural operations on distributed matrices.
//!
//! Element-wise operations need no communication because identically
//! shaped objects are identically distributed (paper §3, assumption 2);
//! the compiler emits them as per-element loops over `local()`. The
//! helpers here are those loops, with modeled compute charged to the
//! caller's virtual clock.
//!
//! Structural operations (shifts, row/column extraction, slicing) do
//! communicate, and encapsulate their message schedules the way the
//! paper's run-time library does.

use crate::dense::Dense;
use crate::dist::Block;
use crate::matrix::DistMatrix;
use otter_machine::OpClass;
use otter_mpi::{Comm, CommError};

impl DistMatrix {
    /// Element-wise unary map; charges `len · weight` flop units.
    pub fn map(&self, comm: &mut Comm, class: OpClass, f: impl Fn(f64) -> f64) -> DistMatrix {
        let local: Vec<f64> = self.local().iter().map(|&x| f(x)).collect();
        comm.compute(local.len() as f64 * class.weight());
        DistMatrix::from_local(comm, self.rows(), self.cols(), local)
    }

    /// Element-wise binary combine of two aligned objects.
    pub fn zip(
        &self,
        comm: &mut Comm,
        other: &DistMatrix,
        class: OpClass,
        f: impl Fn(f64, f64) -> f64,
    ) -> DistMatrix {
        assert!(
            self.aligned_with(other),
            "element-wise op on unaligned shapes {}x{} vs {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let local: Vec<f64> = self
            .local()
            .iter()
            .zip(other.local())
            .map(|(&a, &b)| f(a, b))
            .collect();
        comm.compute(local.len() as f64 * class.weight());
        DistMatrix::from_local(comm, self.rows(), self.cols(), local)
    }

    /// Element-wise combine with a replicated scalar on the right.
    pub fn map_scalar(
        &self,
        comm: &mut Comm,
        s: f64,
        class: OpClass,
        f: impl Fn(f64, f64) -> f64,
    ) -> DistMatrix {
        self.map(comm, class, |x| f(x, s))
    }

    /// In-place element-wise update from an aligned object (the
    /// compiler's fused `a = a ⊕ b` form).
    pub fn zip_assign(
        &mut self,
        comm: &mut Comm,
        other: &DistMatrix,
        class: OpClass,
        f: impl Fn(f64, f64) -> f64,
    ) {
        assert!(
            self.aligned_with(other),
            "element-wise update on unaligned shapes"
        );
        for (a, &b) in self.local_mut().iter_mut().zip(other.local()) {
            *a = f(*a, b);
        }
        comm.compute(self.local_els() as f64 * class.weight());
    }

    // ---- vector shifts ---------------------------------------------------

    /// Circular shift of a distributed vector by `k` (positive =
    /// right), the ocean script's primitive. Each rank exchanges only
    /// the segments that cross block boundaries — O(|k| + n/p) data,
    /// not O(n).
    pub fn circshift(&self, comm: &mut Comm, k: i64) -> Result<DistMatrix, CommError> {
        assert!(self.is_vector(), "circshift expects a vector");
        let n = self.len() as i64;
        if n == 0 {
            return Ok(self.clone());
        }
        let k = ((k % n) + n) % n; // normalized right-shift
        let b = self.block();
        let rank = comm.rank();

        // Destination of my local element with global index g is
        // (g + k) mod n. My contiguous block maps to one or two
        // contiguous destination segments (it can wrap).
        // Send phase: walk my block, split by destination owner.
        let my = b.range(rank);
        let mut segments: Vec<(usize, usize, usize)> = Vec::new(); // (dest_rank, local_lo, local_hi)
        let mut lo = my.start;
        while lo < my.end {
            let dest_g = (lo as i64 + k) as usize % n as usize;
            let owner = b.owner(dest_g);
            // How far can this segment run before it changes owner or
            // wraps?
            let owner_room = b.end(owner) - b.to_local(dest_g) - b.start(owner);
            let wrap_room = n as usize - dest_g;
            let run = owner_room.min(wrap_room).min(my.end - lo);
            segments.push((owner, lo - my.start, lo - my.start + run));
            lo += run;
        }
        // Buffered sends first (deadlock-free), then receives.
        for &(dest, llo, lhi) in &segments {
            if dest != rank {
                let payload = self.local()[llo..lhi].to_vec();
                comm.send(dest, &payload)?;
            }
        }
        // Receive phase: my output element with global index g comes
        // from (g - k) mod n; walk my block splitting by source owner,
        // in the same deterministic order the senders used.
        let mut out = vec![0.0; self.local_els()];
        let mut expected: Vec<(usize, usize, usize)> = Vec::new();
        let mut lo = my.start;
        while lo < my.end {
            let src_g = ((lo as i64 - k % n) + n) as usize % n as usize;
            let owner = b.owner(src_g);
            let owner_room = b.end(owner) - b.to_local(src_g) - b.start(owner);
            let wrap_room = n as usize - src_g;
            let run = owner_room.min(wrap_room).min(my.end - lo);
            expected.push((owner, lo - my.start, lo - my.start + run));
            lo += run;
        }
        // Local segments can be copied directly; remote ones arrive in
        // sender order. Because each (src, dst) pair exchanges its
        // segments in increasing-global-index order on both sides, a
        // FIFO per-pair channel delivers them in the order we expect.
        for &(src, llo, lhi) in &expected {
            if src == rank {
                // Find where in my local data this segment starts.
                let src_g = ((b.start(rank) + llo) as i64 - k % n + n) as usize % n as usize;
                let s0 = b.to_local(src_g);
                out[llo..lhi].copy_from_slice(&self.local()[s0..s0 + (lhi - llo)]);
            } else {
                let data = comm.recv(src)?;
                assert_eq!(data.len(), lhi - llo, "shift segment length mismatch");
                out[llo..lhi].copy_from_slice(&data);
            }
        }
        comm.compute(self.local_els() as f64); // copy traffic
        Ok(DistMatrix::from_local(comm, self.rows(), self.cols(), out))
    }

    // ---- slicing -----------------------------------------------------------

    /// Extract row `i` of a matrix as a distributed row vector
    /// (`a(i, :)`). The owner holds the whole row (row-contiguous
    /// distribution), so it broadcasts and every rank keeps its block.
    pub fn extract_row(&self, comm: &mut Comm, i: usize) -> Result<DistMatrix, CommError> {
        assert!(!self.is_vector(), "extract_row on a vector");
        assert!(i < self.rows(), "row {i} out of {}", self.rows());
        let owner = self.owner_rank(i, 0);
        let row = if comm.rank() == owner {
            let b = self.block();
            let li = i - b.start(owner);
            self.local()[li * self.cols()..(li + 1) * self.cols()].to_vec()
        } else {
            Vec::new()
        };
        let full = comm.broadcast(owner, &row)?;
        Ok(DistMatrix::from_replicated(comm, &Dense::row_vector(&full)))
    }

    /// Extract column `j` as a distributed column vector (`a(:, j)`).
    /// Communication-free: the matrix's row blocks align exactly with
    /// the column vector's element blocks.
    pub fn extract_col(&self, comm: &mut Comm, j: usize) -> DistMatrix {
        assert!(!self.is_vector(), "extract_col on a vector");
        assert!(j < self.cols(), "col {j} out of {}", self.cols());
        let w = self.cols();
        let local: Vec<f64> = self.local().chunks_exact(w).map(|row| row[j]).collect();
        comm.compute(local.len() as f64);
        DistMatrix::from_local(comm, self.rows(), 1, local)
    }

    /// Store a distributed row vector into row `i` (`a(i, :) = v`).
    /// The row's owner gathers the vector.
    pub fn assign_row(
        &mut self,
        comm: &mut Comm,
        i: usize,
        v: &DistMatrix,
    ) -> Result<(), CommError> {
        assert!(!self.is_vector());
        assert!(
            v.is_vector() && v.len() == self.cols(),
            "row assignment shape mismatch"
        );
        let owner = self.owner_rank(i, 0);
        let full = v.gather_to(comm, owner)?;
        if let Some(full) = full {
            let b = self.block();
            let li = i - b.start(owner);
            let w = self.cols();
            self.local_mut()[li * w..(li + 1) * w].copy_from_slice(full.data());
        }
        Ok(())
    }

    /// Store a distributed column vector into column `j`
    /// (`a(:, j) = v`). Communication-free by alignment.
    pub fn assign_col(&mut self, comm: &mut Comm, j: usize, v: &DistMatrix) {
        assert!(!self.is_vector());
        assert!(
            v.is_vector() && v.len() == self.rows(),
            "column assignment shape mismatch"
        );
        let w = self.cols();
        let vlocal = v.local().to_vec();
        for (row, &x) in self.local_mut().chunks_exact_mut(w).zip(&vlocal) {
            row[j] = x;
        }
        comm.compute(vlocal.len() as f64);
    }

    /// Extract a contiguous element range of a vector
    /// (`v(lo..hi)`, 0-based half-open) as a new distributed vector.
    pub fn extract_range(
        &self,
        comm: &mut Comm,
        lo: usize,
        hi: usize,
    ) -> Result<DistMatrix, CommError> {
        assert!(self.is_vector(), "extract_range expects a vector");
        assert!(
            lo <= hi && hi <= self.len(),
            "range {lo}..{hi} out of {}",
            self.len()
        );
        let n_new = hi - lo;
        let src_b = self.block();
        let dst_b = Block::new(n_new, comm.size());
        let rank = comm.rank();
        // Send: my elements with global index g ∈ [lo, hi) go to the
        // owner of g - lo in the new distribution.
        let my = src_b.range(rank);
        let send_lo = my.start.max(lo);
        let send_hi = my.end.min(hi);
        let mut g = send_lo;
        let mut sends: Vec<(usize, usize, usize)> = Vec::new();
        while g < send_hi {
            let owner = dst_b.owner(g - lo);
            let run = (dst_b.end(owner) - (g - lo)).min(send_hi - g);
            sends.push((owner, g - my.start, g - my.start + run));
            g += run;
        }
        for &(dest, llo, lhi) in &sends {
            if dest != rank {
                let payload = self.local()[llo..lhi].to_vec();
                comm.send(dest, &payload)?;
            }
        }
        // Receive: my new elements [dst_b.range(rank)] come from the
        // owners of lo + that range in the old distribution.
        let mut out = vec![0.0; dst_b.count(rank)];
        let my_new = dst_b.range(rank);
        let mut g = my_new.start;
        while g < my_new.end {
            let src_owner = src_b.owner(lo + g);
            let run = (src_b.end(src_owner) - (lo + g)).min(my_new.end - g);
            if src_owner == rank {
                let s0 = (lo + g) - src_b.start(rank);
                out[g - my_new.start..g - my_new.start + run]
                    .copy_from_slice(&self.local()[s0..s0 + run]);
            } else {
                let data = comm.recv(src_owner)?;
                assert_eq!(data.len(), run, "range segment length mismatch");
                out[g - my_new.start..g - my_new.start + run].copy_from_slice(&data);
            }
            g += run;
        }
        comm.compute(out.len() as f64);
        let (rows, cols) = if self.rows() == 1 {
            (1, n_new)
        } else {
            (n_new, 1)
        };
        Ok(DistMatrix::from_local(comm, rows, cols, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_machine::meiko_cs2;
    use otter_mpi::run_spmd;

    fn dist_counting(comm: &Comm, rows: usize, cols: usize) -> DistMatrix {
        let d = Dense::from_vec(rows, cols, (0..rows * cols).map(|k| k as f64).collect());
        DistMatrix::from_replicated(comm, &d)
    }

    #[test]
    fn zip_adds_elementwise() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let a = dist_counting(c, 6, 3);
            let b = DistMatrix::ones(c, 6, 3);
            a.zip(c, &b, OpClass::Add, |x, y| x + y).gather_all(c)
        });
        for (k, &v) in res[0].value.data().iter().enumerate() {
            assert_eq!(v, k as f64 + 1.0);
        }
    }

    #[test]
    fn map_scalar_multiplies() {
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            let a = dist_counting(c, 1, 7);
            a.map_scalar(c, 2.0, OpClass::Mul, |x, s| x * s)
                .gather_all(c)
        });
        assert_eq!(res[0].value.data()[3], 6.0);
    }

    #[test]
    fn zip_assign_updates_in_place() {
        let res = run_spmd(&meiko_cs2(), 2, |c| {
            let mut a = DistMatrix::ones(c, 4, 4);
            let b = dist_counting(c, 4, 4);
            a.zip_assign(c, &b, OpClass::Add, |x, y| x + y);
            Ok(a.gather_all(c)?.sum_all())
        });
        // sum(ones) + sum(0..16) = 16 + 120
        assert_eq!(res[0].value, 136.0);
    }

    #[test]
    fn circshift_matches_dense_all_shifts() {
        let n = 13;
        for p in [1usize, 2, 4, 5] {
            for k in [-17i64, -5, -1, 0, 1, 3, 12, 13, 14, 27] {
                let res = run_spmd(&meiko_cs2(), p, move |c| {
                    let d = Dense::row_vector(&(0..n).map(|x| x as f64).collect::<Vec<_>>());
                    let v = DistMatrix::from_replicated(c, &d);
                    let shifted = v.circshift(c, k)?;
                    Ok((shifted.gather_all(c)?, d.circshift(k)))
                });
                for r in &res {
                    assert_eq!(r.value.0, r.value.1, "p={p} k={k}");
                }
            }
        }
    }

    #[test]
    fn circshift_column_vector() {
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            let d = Dense::col_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]);
            let v = DistMatrix::from_replicated(c, &d);
            Ok((v.circshift(c, 2)?.gather_all(c)?, d.circshift(2)))
        });
        assert_eq!(res[0].value.0, res[0].value.1);
    }

    #[test]
    fn circshift_moves_little_data() {
        // Shift by 1 on p=4, n=1024: each rank ships O(n/p) elements
        // at the block boundary region, not the whole vector.
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let v = DistMatrix::range(c, 1.0, 1.0, 1024.0);
            let before = c.stats().bytes_sent;
            let _ = v.circshift(c, 1)?;
            Ok(c.stats().bytes_sent - before)
        });
        let total: u64 = res.iter().map(|r| r.value).sum();
        // Worst case is ~n bytes total (each rank forwards its block
        // head), far below an allgather (p * n * 8 bytes).
        assert!(total <= 1024 * 8 + 64, "shipped {total} bytes");
    }

    #[test]
    fn extract_row_broadcasts_owner_data() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let a = dist_counting(c, 6, 3);
            a.extract_row(c, 4)?.gather_all(c)
        });
        assert_eq!(res[0].value.data(), &[12.0, 13.0, 14.0]);
        assert_eq!(res[0].value.rows(), 1);
    }

    #[test]
    fn extract_col_needs_no_messages() {
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            let a = dist_counting(c, 6, 3);
            let before = c.stats().messages_sent;
            let col = a.extract_col(c, 1);
            let sent_by_extract = c.stats().messages_sent - before;
            Ok((col.gather_all(c)?, sent_by_extract))
        });
        assert_eq!(res[0].value.0.data(), &[1.0, 4.0, 7.0, 10.0, 13.0, 16.0]);
        assert_eq!(res[0].value.0.cols(), 1);
        // gather_all communicates, but the extraction itself must not.
        // (We measured before the gather.)
        for r in &res {
            assert_eq!(r.value.1, 0, "extract_col sent messages on rank {}", r.rank);
        }
    }

    #[test]
    fn assign_row_and_col_round_trip() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let mut a = DistMatrix::zeros(c, 5, 4);
            let r = DistMatrix::from_replicated(c, &Dense::row_vector(&[1.0, 2.0, 3.0, 4.0]));
            let v =
                DistMatrix::from_replicated(c, &Dense::col_vector(&[10.0, 20.0, 30.0, 40.0, 50.0]));
            a.assign_row(c, 2, &r)?;
            a.assign_col(c, 0, &v);
            a.gather_all(c)
        });
        let m = &res[0].value;
        assert_eq!(m.get(2, 1), 2.0);
        assert_eq!(m.get(2, 0), 30.0, "column assignment overwrites row");
        assert_eq!(m.get(4, 0), 50.0);
        assert_eq!(m.get(0, 3), 0.0);
    }

    #[test]
    fn extract_range_matches_dense() {
        for p in [1usize, 2, 3, 5] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                let v = DistMatrix::range(c, 0.0, 1.0, 19.0); // 20 elements
                let s = v.extract_range(c, 3, 11)?;
                s.gather_all(c)
            });
            assert_eq!(
                res[0].value.data(),
                &(3..11).map(|x| x as f64).collect::<Vec<_>>()[..],
                "p={p}"
            );
        }
    }

    #[test]
    fn extract_range_empty_and_full() {
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            let v = DistMatrix::range(c, 1.0, 1.0, 6.0);
            let empty = v.extract_range(c, 2, 2)?;
            let full = v.extract_range(c, 0, 6)?;
            Ok((empty.len(), full.gather_all(c)?.data().to_vec()))
        });
        assert_eq!(res[0].value.0, 0);
        assert_eq!(res[0].value.1, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn zip_rejects_unaligned() {
        // p = 1 runs inline, so the panic message survives intact.
        run_spmd(&meiko_cs2(), 1, |c| {
            let a = DistMatrix::zeros(c, 3, 2);
            let b = DistMatrix::zeros(c, 2, 3);
            a.zip(c, &b, OpClass::Add, |x, y| x + y);
            Ok(())
        });
    }
}

impl DistMatrix {
    /// Strided extraction `v(lo:step:hi)` (0-based `lo`, element count
    /// `count`). Implemented by gathering the source — strided access
    /// is irregular, and a 1998-style run-time library took the simple
    /// O(n)-communication route for it.
    pub fn extract_strided(
        &self,
        comm: &mut Comm,
        lo: usize,
        step: i64,
        count: usize,
    ) -> Result<DistMatrix, CommError> {
        assert!(self.is_vector(), "extract_strided expects a vector");
        assert!(step != 0, "stride must be nonzero");
        let full = self.gather_all(comm)?;
        let mut data = Vec::with_capacity(count);
        let mut g = lo as i64;
        for _ in 0..count {
            assert!(
                g >= 0 && (g as usize) < self.len(),
                "strided index out of bounds: element ({}, {}) of a {}x{} matrix",
                if self.rows() == 1 { 1 } else { g + 1 },
                if self.rows() == 1 { g + 1 } else { 1 },
                self.rows(),
                self.cols()
            );
            data.push(full.data()[g as usize]);
            g += step;
        }
        comm.compute(count as f64);
        let dense = if self.rows() == 1 {
            Dense::row_vector(&data)
        } else {
            Dense::col_vector(&data)
        };
        Ok(DistMatrix::from_replicated(comm, &dense))
    }

    /// Scalar fill of row `i` (`a(i, :) = s`): communication-free —
    /// only the owning rank touches memory.
    pub fn fill_row(&mut self, comm: &mut Comm, i: usize, val: f64) {
        assert!(!self.is_vector(), "fill_row on a vector");
        assert!(i < self.rows(), "row {i} out of {}", self.rows());
        if self.is_owner(i, 0) {
            let b = self.block();
            let li = i - b.start(comm.rank());
            let w = self.cols();
            self.local_mut()[li * w..(li + 1) * w].fill(val);
        }
        comm.compute(self.cols() as f64);
    }

    /// Scalar fill of column `j` (`a(:, j) = s`): each rank writes its
    /// own rows.
    pub fn fill_col(&mut self, comm: &mut Comm, j: usize, val: f64) {
        assert!(!self.is_vector(), "fill_col on a vector");
        assert!(j < self.cols(), "col {j} out of {}", self.cols());
        let w = self.cols();
        for row in self.local_mut().chunks_exact_mut(w) {
            row[j] = val;
        }
        comm.compute((self.len() / w.max(1)) as f64);
    }

    /// Scalar fill of a vector range (`v(lo..hi) = s`, 0-based
    /// half-open): each rank fills its local overlap.
    pub fn fill_range(&mut self, comm: &mut Comm, lo: usize, hi: usize, val: f64) {
        assert!(self.is_vector(), "fill_range expects a vector");
        assert!(
            lo <= hi && hi <= self.len(),
            "range {lo}..{hi} out of {}",
            self.len()
        );
        let my = self.local_range();
        let a = my.start.max(lo);
        let b = my.end.min(hi);
        if a < b {
            let off = my.start;
            self.local_mut()[a - off..b - off].fill(val);
        }
        comm.compute((hi - lo) as f64);
    }

    /// Vector store into a range (`v(lo..hi) = w`, 0-based half-open).
    /// `w` is gathered (it is at most the range's size); each rank
    /// writes its local overlap.
    pub fn assign_range(
        &mut self,
        comm: &mut Comm,
        lo: usize,
        hi: usize,
        w: &DistMatrix,
    ) -> Result<(), CommError> {
        assert!(
            self.is_vector() && w.is_vector(),
            "assign_range expects vectors"
        );
        assert!(
            lo <= hi && hi <= self.len(),
            "range {lo}..{hi} out of {}",
            self.len()
        );
        assert_eq!(w.len(), hi - lo, "assign_range length mismatch");
        let full = w.gather_all(comm)?;
        let my = self.local_range();
        let a = my.start.max(lo);
        let b = my.end.min(hi);
        if a < b {
            let off = my.start;
            self.local_mut()[a - off..b - off].copy_from_slice(&full.data()[a - lo..b - lo]);
        }
        comm.compute((hi - lo) as f64);
        Ok(())
    }
}

#[cfg(test)]
mod slice_tests {
    use super::*;
    use otter_machine::meiko_cs2;
    use otter_mpi::run_spmd;

    #[test]
    fn strided_extraction_matches_dense() {
        for p in [1usize, 2, 3, 5] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                let v = DistMatrix::range(c, 1.0, 1.0, 20.0);
                // v(3:2:11) in MATLAB → lo=2 (0-based), step 2, 5 elems.
                v.extract_strided(c, 2, 2, 5)?.gather_all(c)
            });
            assert_eq!(res[0].value.data(), &[3.0, 5.0, 7.0, 9.0, 11.0], "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "strided index out of bounds: element (1, 13) of a 1x10 matrix")]
    fn strided_oob_reports_shape_and_position() {
        // p = 1 runs inline, so the panic message survives intact.
        run_spmd(&meiko_cs2(), 1, |c| {
            let v = DistMatrix::range(c, 1.0, 1.0, 10.0);
            // v(7:3:13) walks past the end: 7, 10, 13 → element 13 of 10.
            v.extract_strided(c, 6, 3, 3)?.gather_all(c)
        });
    }

    #[test]
    fn negative_stride() {
        let res = run_spmd(&meiko_cs2(), 3, |c| {
            let v = DistMatrix::range(c, 1.0, 1.0, 10.0);
            // v(10:-3:1) → 10, 7, 4, 1.
            v.extract_strided(c, 9, -3, 4)?.gather_all(c)
        });
        assert_eq!(res[0].value.data(), &[10.0, 7.0, 4.0, 1.0]);
    }

    #[test]
    fn fills_match_dense_semantics() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let mut a = DistMatrix::zeros(c, 5, 4);
            a.fill_row(c, 1, 7.0);
            a.fill_col(c, 2, 9.0);
            let mut v = DistMatrix::range(c, 0.0, 1.0, 9.0);
            v.fill_range(c, 3, 7, -1.0);
            Ok((a.gather_all(c)?, v.gather_all(c)?))
        });
        let (a, v) = &res[0].value;
        assert_eq!(a.get(1, 0), 7.0);
        assert_eq!(a.get(1, 2), 9.0, "column fill wins (applied second)");
        assert_eq!(a.get(4, 2), 9.0);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(
            v.data(),
            &[0.0, 1.0, 2.0, -1.0, -1.0, -1.0, -1.0, 7.0, 8.0, 9.0]
        );
    }

    #[test]
    fn assign_range_roundtrips() {
        for p in [1usize, 2, 5] {
            let res = run_spmd(&meiko_cs2(), p, |c| {
                let mut v = DistMatrix::zeros(c, 1, 12);
                let w = DistMatrix::range(c, 1.0, 1.0, 4.0);
                v.assign_range(c, 5, 9, &w)?;
                v.gather_all(c)
            });
            assert_eq!(
                res[0].value.data(),
                &[0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0],
                "p={p}"
            );
        }
    }
}
