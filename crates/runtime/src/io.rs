//! Coordinated I/O (paper §3 assumption 5: "one processor coordinates
//! all I/O operations").
//!
//! The data-file format is the simplest thing a 1998 run-time would
//! use: an ASCII header `rows cols` followed by `rows · cols`
//! whitespace-separated doubles in row-major order. The same files
//! double as the *sample data files* the compiler's type/shape
//! inference reads at compile time (paper §3: "a sample data file must
//! be present, so that the compiler can determine the type of the
//! variable as well as its rank").

use crate::dense::Dense;
use crate::matrix::DistMatrix;
use otter_mpi::{Comm, CommError};
use std::fmt::Write as _;
use std::path::Path;

/// Failure of a distributed load: either an application-level file or
/// parse problem (reported by rank 0, which coordinates I/O) or a
/// communication failure of the scatter.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// File missing, unreadable, or malformed.
    App(String),
    /// The scatter itself failed.
    Comm(CommError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::App(msg) => write!(f, "{msg}"),
            LoadError::Comm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<CommError> for LoadError {
    fn from(e: CommError) -> Self {
        LoadError::Comm(e)
    }
}

impl From<String> for LoadError {
    fn from(msg: String) -> Self {
        LoadError::App(msg)
    }
}

/// Parse a matrix from the ASCII on-disk format.
pub fn parse_matrix(text: &str) -> Result<Dense, String> {
    let mut nums = text.split_whitespace().map(|t| {
        t.parse::<f64>()
            .map_err(|e| format!("bad number `{t}`: {e}"))
    });
    let rows = nums.next().ok_or("missing row count")?? as usize;
    let cols = nums.next().ok_or("missing column count")?? as usize;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(
            nums.next()
                .ok_or_else(|| format!("expected {} elements, file ends early", rows * cols))??,
        );
    }
    Ok(Dense::from_vec(rows, cols, data))
}

/// Render a matrix in the on-disk format.
pub fn format_matrix(m: &Dense) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", m.rows(), m.cols());
    for i in 0..m.rows() {
        let cells: Vec<String> = m.row(i).iter().map(|v| format!("{v:.17e}")).collect();
        let _ = writeln!(out, "{}", cells.join(" "));
    }
    out
}

/// Read a matrix file (any rank may call; used at compile time for
/// sample-data inference and by rank 0 at run time).
pub fn read_matrix_file(path: &Path) -> Result<Dense, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_matrix(&text)
}

/// Write a matrix file.
pub fn write_matrix_file(path: &Path, m: &Dense) -> Result<(), String> {
    std::fs::write(path, format_matrix(m)).map_err(|e| format!("{}: {e}", path.display()))
}

/// Distributed load: rank 0 reads the file and scatters
/// (`ML_load`). Every rank must call.
pub fn load_distributed(comm: &mut Comm, path: &Path) -> Result<DistMatrix, LoadError> {
    let t0 = comm.clock();
    let dense = if comm.rank() == 0 {
        Some(read_matrix_file(path)?)
    } else {
        None
    };
    let m = DistMatrix::scatter_from(comm, 0, dense.as_ref())?;
    comm.emit_span(otter_trace::EventKind::Phase { name: "ML_load" }, t0);
    crate::note_rt_op(comm, "ML_load", t0);
    Ok(m)
}

/// Distributed print (`ML_print_matrix`): gather onto rank 0, which
/// renders; other ranks get `None`. The caller (the generated
/// program's I/O shim) writes the string to stdout on rank 0 only.
pub fn print_distributed(
    comm: &mut Comm,
    name: &str,
    m: &DistMatrix,
) -> Result<Option<String>, CommError> {
    let Some(full) = m.gather_to(comm, 0)? else {
        return Ok(None);
    };
    let mut out = String::new();
    let _ = writeln!(out, "{name} =");
    let _ = write!(out, "{full}");
    Ok(Some(out))
}

/// Render a replicated scalar the way MATLAB echoes it.
pub fn print_scalar(name: &str, v: f64) -> String {
    format!("{name} =\n{v:>12.6}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use otter_machine::meiko_cs2;
    use otter_mpi::run_spmd;

    #[test]
    fn parse_format_round_trip() {
        let m = Dense::from_vec(2, 3, vec![1.0, -2.5, 3.0, 0.0, 1e-8, 7.125]);
        let text = format_matrix(&m);
        let back = parse_matrix(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_rejects_truncated() {
        assert!(parse_matrix("2 2\n1 2 3").is_err());
        assert!(parse_matrix("").is_err());
        assert!(parse_matrix("2 2\n1 2 3 x").is_err());
    }

    #[test]
    fn file_round_trip_and_distributed_load() {
        let dir = std::env::temp_dir().join(format!("otter_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.dat");
        let m = Dense::from_vec(5, 2, (0..10).map(f64::from).collect());
        write_matrix_file(&path, &m).unwrap();
        assert_eq!(read_matrix_file(&path).unwrap(), m);

        let p2 = path.clone();
        let res = run_spmd(&meiko_cs2(), 3, move |c| {
            let d = load_distributed(c, &p2).unwrap();
            d.gather_all(c)
        });
        for r in &res {
            assert_eq!(r.value, m);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn print_only_on_root() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            let m = DistMatrix::eye(c, 3);
            print_distributed(c, "a", &m)
        });
        assert!(res[0].value.is_some());
        let text = res[0].value.as_ref().unwrap();
        assert!(text.starts_with("a ="));
        assert_eq!(text.lines().count(), 4);
        for r in &res[1..] {
            assert!(r.value.is_none());
        }
    }

    #[test]
    fn scalar_rendering() {
        let s = print_scalar("x", 2.5);
        assert!(s.contains("x ="));
        assert!(s.contains("2.500000"));
    }
}
