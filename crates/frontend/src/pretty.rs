//! Pretty-printer: AST back to MATLAB surface syntax.
//!
//! Used for diagnostics, SSA-form dumps, and the parse→print→parse
//! round-trip property tests. Output is always comma-delimited and
//! fully parenthesized only where precedence requires it.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.script {
        write_stmt(&mut out, s, 0);
    }
    for f in &p.functions {
        out.push('\n');
        write_function(&mut out, f);
    }
    out
}

/// Render a single function definition.
pub fn write_function(out: &mut String, f: &Function) {
    out.push_str("function ");
    match f.outs.len() {
        0 => {}
        1 => {
            out.push_str(&f.outs[0]);
            out.push_str(" = ");
        }
        _ => {
            out.push('[');
            out.push_str(&f.outs.join(", "));
            out.push_str("] = ");
        }
    }
    out.push_str(&f.name);
    out.push('(');
    out.push_str(&f.params.join(", "));
    out.push_str(")\n");
    for s in &f.body {
        write_stmt(out, s, 1);
    }
}

/// Render one statement at the given indent level.
pub fn write_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "  ".repeat(indent);
    let term = if s.display { "\n" } else { ";\n" };
    match &s.kind {
        StmtKind::Expr(e) => {
            let _ = write!(out, "{pad}{}{term}", expr_to_string(e));
        }
        StmtKind::Assign { lhs, rhs } => {
            let _ = write!(
                out,
                "{pad}{} = {}{term}",
                lvalue_to_string(lhs),
                expr_to_string(rhs)
            );
        }
        StmtKind::MultiAssign { lhs, rhs } => {
            let targets: Vec<String> = lhs.iter().map(lvalue_to_string).collect();
            let _ = write!(
                out,
                "{pad}[{}] = {}{term}",
                targets.join(", "),
                expr_to_string(rhs)
            );
        }
        StmtKind::If { arms, else_body } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                let kw = if i == 0 { "if" } else { "elseif" };
                let _ = writeln!(out, "{pad}{kw} {}", expr_to_string(cond));
                for st in body {
                    write_stmt(out, st, indent + 1);
                }
            }
            if let Some(body) = else_body {
                let _ = writeln!(out, "{pad}else");
                for st in body {
                    write_stmt(out, st, indent + 1);
                }
            }
            let _ = writeln!(out, "{pad}end");
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "{pad}while {}", expr_to_string(cond));
            for st in body {
                write_stmt(out, st, indent + 1);
            }
            let _ = writeln!(out, "{pad}end");
        }
        StmtKind::For { var, iter, body } => {
            let _ = writeln!(out, "{pad}for {var} = {}", expr_to_string(iter));
            for st in body {
                write_stmt(out, st, indent + 1);
            }
            let _ = writeln!(out, "{pad}end");
        }
        StmtKind::Break => {
            let _ = write!(out, "{pad}break{term}");
        }
        StmtKind::Continue => {
            let _ = write!(out, "{pad}continue{term}");
        }
        StmtKind::Return => {
            let _ = write!(out, "{pad}return{term}");
        }
        StmtKind::Global(names) => {
            let _ = write!(out, "{pad}global {}{term}", names.join(", "));
        }
    }
}

fn lvalue_to_string(lv: &LValue) -> String {
    match &lv.indices {
        None => lv.name.clone(),
        Some(idx) => {
            let parts: Vec<String> = idx.iter().map(expr_to_string).collect();
            format!("{}({})", lv.name, parts.join(", "))
        }
    }
}

/// Operator precedence for minimal parenthesization; higher binds
/// tighter. Mirrors the parser's levels.
fn prec(e: &ExprKind) -> u8 {
    match e {
        ExprKind::Binary { op, .. } => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul
            | BinOp::Div
            | BinOp::LeftDiv
            | BinOp::ElemMul
            | BinOp::ElemDiv
            | BinOp::ElemLeftDiv => 6,
            BinOp::Pow | BinOp::ElemPow => 8,
        },
        ExprKind::Range { .. } => 4,
        ExprKind::Unary { .. } => 7,
        ExprKind::Transpose { .. } => 9,
        _ => 10,
    }
}

/// Render an expression with minimal parentheses.
pub fn expr_to_string(e: &Expr) -> String {
    render(e, 0)
}

fn render(e: &Expr, parent_prec: u8) -> String {
    let my = prec(&e.kind);
    let body = match &e.kind {
        ExprKind::Number { value, is_int } => {
            if *is_int && value.fract() == 0.0 && value.abs() < 1e15 {
                format!("{}", *value as i64)
            } else {
                // Keep a decimal point so the literal re-parses as
                // non-integer.
                let s = format!("{value}");
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
        }
        ExprKind::Str(s) => format!("'{}'", s.replace('\'', "''")),
        ExprKind::Ident(n) => n.clone(),
        ExprKind::Colon => ":".into(),
        ExprKind::EndKeyword => "end".into(),
        ExprKind::Range { start, step, stop } => match step {
            Some(st) => format!(
                "{}:{}:{}",
                render(start, my + 1),
                render(st, my + 1),
                render(stop, my + 1)
            ),
            None => format!("{}:{}", render(start, my + 1), render(stop, my + 1)),
        },
        ExprKind::Unary { op, operand } => {
            format!("{}{}", op.symbol(), render(operand, my))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            // Left-associative: the right child needs parens at equal
            // precedence.
            format!(
                "{} {} {}",
                render(lhs, my),
                op.symbol(),
                render(rhs, my + 1)
            )
        }
        ExprKind::Transpose { op, operand } => {
            let sym = match op {
                TransposeOp::Conjugate => "'",
                TransposeOp::Plain => ".'",
            };
            format!("{}{}", render(operand, my), sym)
        }
        ExprKind::Index { base, args } => {
            let parts: Vec<String> = args.iter().map(|a| render(a, 0)).collect();
            format!("{}({})", base, parts.join(", "))
        }
        ExprKind::Call { callee, args } => {
            let parts: Vec<String> = args.iter().map(|a| render(a, 0)).collect();
            format!("{}({})", callee, parts.join(", "))
        }
        ExprKind::Matrix(rows) => {
            let row_strs: Vec<String> = rows
                .iter()
                .map(|r| {
                    let cells: Vec<String> = r.iter().map(|c| render(c, 0)).collect();
                    cells.join(", ")
                })
                .collect();
            format!("[{}]", row_strs.join("; "))
        }
    };
    if my < parent_prec && !matches!(e.kind, ExprKind::Call { .. } | ExprKind::Index { .. }) {
        format!("({body})")
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn roundtrip(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = expr_to_string(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reprint of `{src}` as `{printed}` failed: {err}"));
        // Spans differ; compare structure via a second print.
        assert_eq!(printed, expr_to_string(&e2), "src={src}");
    }

    #[test]
    fn simple_roundtrips() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "-2^2",
            "a' * a",
            "x(1:2:9)",
            "[1, 2; 3, 4]",
            "b * c + d(i, j)",
            "1:n-1",
            "a ./ (b .* c)",
            "~(a == b)",
            "m(:, j)",
            "v(end-1)",
            "'it''s'",
            "2.5e-3 + x",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn statement_printing() {
        let f = parse("if a < 1\nx = 1;\nelse\nx = 2;\nend").unwrap();
        let mut out = String::new();
        write_stmt(&mut out, &f.script[0], 0);
        assert!(out.contains("if a < 1"));
        assert!(out.contains("else"));
        assert!(out.ends_with("end\n"));
    }

    #[test]
    fn function_printing() {
        let f = parse("function [q, r] = decomp(a)\nq = a;\nr = a;\n").unwrap();
        let mut out = String::new();
        write_function(&mut out, &f.functions[0]);
        assert!(out.starts_with("function [q, r] = decomp(a)\n"));
    }

    #[test]
    fn float_literals_keep_a_point() {
        let e = parse_expr("2.0").unwrap();
        let s = expr_to_string(&e);
        let e2 = parse_expr(&s).unwrap();
        let ExprKind::Number { is_int, .. } = e2.kind else {
            panic!()
        };
        assert!(!is_int, "printed as {s}");
    }

    #[test]
    fn program_roundtrip_structure() {
        let src = "x = 1;\nfor i = 1:3\nx = x * 2;\nend\n";
        let f1 = parse(src).unwrap();
        let p1 = Program {
            script: f1.script,
            functions: f1.functions,
        };
        let printed = program_to_string(&p1);
        let f2 = parse(&printed).unwrap();
        let p2 = Program {
            script: f2.script,
            functions: f2.functions,
        };
        assert_eq!(printed, program_to_string(&p2));
    }
}
