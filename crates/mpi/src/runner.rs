//! SPMD job launcher: schedules `p` *virtual ranks* over a fixed pool
//! of `W` workers, collecting either every rank's result or a
//! structured per-rank failure report.
//!
//! Each rank runs its closure on a small-stack carrier thread, but at
//! most `W` carriers execute at once (see `crate::sched`): a rank that
//! blocks in `recv` parks — it releases its worker slot and sleeps on
//! its own mailbox — so thousands of logical ranks multiplex over a
//! handful of workers. With `W >= p` no rank ever queues and behavior
//! is identical to one-thread-per-rank.

use crate::collectives::CollectiveAlgo;
use crate::comm::Comm;
use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::mailbox::Mailbox;
use crate::sched::Scheduler;
use crate::state::JobState;
use otter_log::{FlightEvent, JobId, DEFAULT_RECORDER_CAPACITY};
use otter_machine::Machine;
use otter_metrics::MetricsSnapshot;
use otter_trace::{NoopSink, TraceSink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Default deadlock-detector poll cadence: how often a blocked receive
/// wakes up to consult the wait-for registry. Short enough that a
/// deadlock diagnosis lands in tens of milliseconds; a receive whose
/// message is already buffered never waits at all.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Default confirmation window: how long a wait-for snapshot must hold
/// before a cycle counts as a confirmed deadlock. Longer than one poll
/// interval, so a peer that really did send to us (and whose packet is
/// racing in) invalidates the snapshot by consuming-side epoch bumps
/// before we conclude.
pub const DEFAULT_CONFIRM_WINDOW: Duration = Duration::from_millis(60);

/// Default hard fallback for a receive whose peer is still running but
/// never sends (e.g. spinning in modeled compute). No cycle to
/// diagnose, so this is the only case that still needs a timeout.
pub const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Stack size for a rank's carrier thread. Rank bodies are shallow
/// (compiled SPMD programs and test closures), so 1 MiB instead of the
/// platform default ~8 MiB is what makes p=4096 carriers feasible:
/// reserved address space stays at ~4 GiB and the *touched* pages are
/// far fewer.
const CARRIER_STACK_BYTES: usize = 1 << 20;

/// The worker-pool size used when [`SpmdOptions::workers`] is `None`:
/// the host's available parallelism (falling back to 4 when the host
/// will not say).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// What one rank produced: its return value, final virtual clock, and
/// communication counters.
#[derive(Debug, Clone)]
pub struct RankResult<R> {
    pub rank: usize,
    pub value: R,
    pub clock: f64,
    pub stats: crate::comm::CommStats,
    /// Frozen per-rank metric registry; `None` unless the job ran with
    /// [`SpmdOptions::metrics`] on.
    pub metrics: Option<MetricsSnapshot>,
    /// The rank's flight-recorder tail (always on; bounded by
    /// [`SpmdOptions::recorder_capacity`]), oldest first.
    pub flight: Vec<FlightEvent>,
}

/// Launch-time configuration for an SPMD job.
#[derive(Clone)]
pub struct SpmdOptions {
    /// Schedule the un-suffixed collective methods use on every rank.
    pub algo: CollectiveAlgo,
    /// Event sink shared by every rank; `None` means tracing is off
    /// (ranks get a no-op sink and skip event construction entirely).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Give every rank its own metric registry, snapshotted into
    /// [`RankResult::metrics`] when the rank finishes. Off by default:
    /// the disabled path never constructs a registry or a key.
    pub metrics: bool,
    /// Deterministic fault-injection schedule; `None` (the default)
    /// costs one branch per comm op and perturbs nothing.
    pub faults: Option<FaultPlan>,
    /// Size of the worker pool the virtual ranks are scheduled over.
    /// `None` (the default) uses [`default_workers`]; the effective
    /// pool is capped at `p` since extra workers could never run.
    /// `Some(0)` is an [`CommError::InvalidConfig`].
    pub workers: Option<usize>,
    /// How often a blocked receive re-checks the wait-for registry.
    pub poll_interval: Duration,
    /// How long a wait-for cycle snapshot must hold to be a confirmed
    /// deadlock. Tests tighten this together with `poll_interval` to
    /// diagnose fixtures in milliseconds.
    pub confirm_window: Duration,
    /// Hard fallback for a receive whose peer is alive but silent.
    pub stall_timeout: Duration,
    /// Correlation key stamped on every observability artifact this
    /// job produces (flight events, failure reports, postmortems).
    /// Purely observational: it never affects modeled results.
    /// `JobId(0)` (the default) means "not correlated".
    pub job_id: JobId,
    /// Per-rank flight-recorder ring capacity (events, not bytes).
    /// The recorder is always on; this bounds its memory.
    pub recorder_capacity: usize,
}

impl Default for SpmdOptions {
    fn default() -> Self {
        SpmdOptions {
            algo: CollectiveAlgo::default(),
            trace: None,
            metrics: false,
            faults: None,
            workers: None,
            poll_interval: DEFAULT_POLL_INTERVAL,
            confirm_window: DEFAULT_CONFIRM_WINDOW,
            stall_timeout: DEFAULT_STALL_TIMEOUT,
            job_id: JobId(0),
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
        }
    }
}

/// How one rank failed, with the partial state it had accumulated.
#[derive(Debug, Clone)]
pub struct RankFailure {
    pub rank: usize,
    pub error: CommError,
    /// Ranks that were blocked waiting on this rank when the job
    /// ended (the inverted wait-for snapshot: "who was stuck on the
    /// dead rank").
    pub blocked_peers: Vec<usize>,
    /// Virtual clock when the rank failed.
    pub clock: f64,
    /// Counters up to the failure point.
    pub stats: crate::comm::CommStats,
    /// Partial metric registry, when metrics were on.
    pub metrics: Option<MetricsSnapshot>,
    /// The rank's flight-recorder tail at the moment of failure,
    /// oldest first — the event context a postmortem bundles up.
    pub flight: Vec<FlightEvent>,
}

/// The value-erased portion of a job failure: which ranks failed and
/// why. Engines propagate this upward without knowing the rank return
/// type.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Total ranks in the job.
    pub size: usize,
    /// Every failed rank, ordered by rank id.
    pub failures: Vec<RankFailure>,
    /// Ranks that completed the program.
    pub survivor_ranks: Vec<usize>,
}

impl FailureReport {
    /// The failed rank with the lowest id whose failure is primary
    /// (not a reaction to another rank's death), falling back to the
    /// first failure. "Primary" means anything that is not
    /// peer-terminated: a crash, a panic, a typed misuse, a deadlock.
    pub fn root_cause(&self) -> &RankFailure {
        self.failures
            .iter()
            .find(|f| !matches!(f.error, CommError::PeerTerminated { .. }))
            .unwrap_or(&self.failures[0])
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "SPMD job failed: {} of {} rank(s)",
            self.failures.len(),
            self.size
        )?;
        for rf in &self.failures {
            write!(f, "  rank {}: {}", rf.rank, rf.error)?;
            if !rf.blocked_peers.is_empty() {
                write!(f, " [blocked peers:")?;
                for p in &rf.blocked_peers {
                    write!(f, " {p}")?;
                }
                write!(f, "]")?;
            }
            writeln!(f)?;
        }
        write!(f, "  survivors: {:?}", self.survivor_ranks)
    }
}

/// A failed SPMD job: the report plus everything the surviving ranks
/// produced (full results, stats, and metrics — traces live in the
/// caller's sink and are already complete up to the failure).
#[derive(Debug)]
pub struct JobFailure<R> {
    pub report: FailureReport,
    /// Results of the ranks that completed the program, ordered by
    /// rank id.
    pub survivors: Vec<RankResult<R>>,
}

impl<R> std::fmt::Display for JobFailure<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.report.fmt(f)
    }
}

impl<R: std::fmt::Debug> std::error::Error for JobFailure<R> {}

/// What a launched job yields: every rank's result, or the failure
/// report with the survivors' partial output.
pub type JobResult<R> = Result<Vec<RankResult<R>>, JobFailure<R>>;

/// Run `body` on `p` ranks over the given machine model with default
/// options (tree collectives, no tracing, no faults); results ordered
/// by rank.
///
/// The modeled parallel execution time of the job is the maximum final
/// clock over ranks — loosely synchronous SPMD programs end when their
/// slowest rank does.
///
/// Any rank failure (a returned [`CommError`] or a panic in `body`)
/// aborts the whole job with a panic carrying the formatted
/// [`FailureReport`], matching `MPI_Abort` semantics closely enough
/// for test purposes. Callers that want the report as data use
/// [`run_spmd_with`].
pub fn run_spmd<R, F>(machine: &Machine, p: usize, body: F) -> Vec<RankResult<R>>
where
    R: Send,
    F: Fn(&mut Comm) -> Result<R, CommError> + Sync,
{
    match run_spmd_with(machine, p, SpmdOptions::default(), body) {
        Ok(results) => results,
        Err(failure) => panic!("{}", failure.report),
    }
}

/// One rank's raw outcome, before job-level assembly.
enum RankOutcome<R> {
    Ok(RankResult<R>),
    Failed(RankFailure),
}

/// Run one rank to completion on its carrier thread: claim a worker
/// slot, run the body (panics are caught at this boundary and
/// converted into [`CommError::Panicked`]), publish the rank's final
/// state to the wait-for registry, wake the peers parked on it, and
/// give the slot back.
fn run_rank<R, F>(mut comm: Comm, body: &F) -> RankOutcome<R>
where
    F: Fn(&mut Comm) -> Result<R, CommError>,
{
    let rank = comm.rank();
    let job = Arc::clone(comm.job());
    comm.acquire_worker();
    let result = match catch_unwind(AssertUnwindSafe(|| body(&mut comm))) {
        Ok(r) => r,
        Err(payload) => Err(CommError::Panicked {
            rank,
            message: panic_message(payload),
        }),
    };
    job.set_done(rank, result.is_ok());
    job.note_progress();
    comm.wake_ranks_blocked_on_me();
    match &result {
        Ok(_) => comm.log(otter_log::LogLevel::Info, "rank.done", 0, 0),
        Err(e) => comm.log(
            otter_log::LogLevel::Error,
            "rank.failed",
            e.rank() as u64,
            0,
        ),
    }
    let clock = comm.clock();
    let stats = comm.stats();
    let metrics = comm.take_metrics().map(|r| r.snapshot());
    let flight = comm.take_flight();
    comm.release_worker();
    match result {
        Ok(value) => RankOutcome::Ok(RankResult {
            rank,
            value,
            clock,
            stats,
            metrics,
            flight,
        }),
        Err(error) => RankOutcome::Failed(RankFailure {
            rank,
            error,
            blocked_peers: Vec::new(), // filled in at job assembly
            clock,
            stats,
            metrics,
            flight,
        }),
    }
}

/// A launch-time rejection: no rank ever ran, so the report carries a
/// single [`CommError::InvalidConfig`] failure on rank 0 with zeroed
/// partial state and no survivors.
fn invalid_config<R>(p: usize, reason: &str) -> JobFailure<R> {
    JobFailure {
        report: FailureReport {
            size: p,
            failures: vec![RankFailure {
                rank: 0,
                error: CommError::InvalidConfig {
                    reason: reason.to_string(),
                },
                blocked_peers: Vec::new(),
                clock: 0.0,
                stats: crate::comm::CommStats::default(),
                metrics: None,
                flight: Vec::new(),
            }],
            survivor_ranks: Vec::new(),
        },
        survivors: Vec::new(),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_spmd`] with explicit [`SpmdOptions`], returning failures as
/// data instead of panicking: the [`JobFailure`] names every failed
/// rank, why it failed, and which peers were blocked on it, alongside
/// the surviving ranks' complete results.
pub fn run_spmd_with<R, F>(machine: &Machine, p: usize, opts: SpmdOptions, body: F) -> JobResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> Result<R, CommError> + Sync,
{
    if p == 0 {
        return Err(invalid_config(p, "an SPMD job needs at least one rank"));
    }
    if opts.workers == Some(0) {
        return Err(invalid_config(
            p,
            "the worker pool needs at least one worker",
        ));
    }
    // `machine.max_cpus` is a *modeling* parameter (it shapes message
    // times and node layout), not an execution limit: any p runs,
    // multiplexed over the worker pool.
    let workers = opts.workers.unwrap_or_else(default_workers).min(p);
    let machine = Arc::new(machine.clone());
    let sink: Arc<dyn TraceSink> = opts.trace.clone().unwrap_or_else(|| Arc::new(NoopSink));
    let job = Arc::new(JobState::new(p));
    let mailboxes: Arc<Vec<Mailbox>> = Arc::new((0..p).map(|_| Mailbox::new()).collect());
    let sched = Arc::new(Scheduler::new(workers, p));

    // Hand each rank its endpoint.
    let mut comms: Vec<Comm> = Vec::with_capacity(p);
    for r in 0..p {
        comms.push(Comm::new(
            r,
            p,
            Arc::clone(&machine),
            Arc::clone(&mailboxes),
            Arc::clone(&sched),
            &opts,
            Arc::clone(&sink),
            Arc::clone(&job),
        ));
    }

    let body = &body;
    let outcomes: Vec<RankOutcome<R>> = if p == 1 {
        // Single rank: run inline, no thread overhead.
        vec![run_rank(comms.pop().unwrap(), body)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let name = format!("vrank-{}", comm.rank());
                    std::thread::Builder::new()
                        .name(name)
                        .stack_size(CARRIER_STACK_BYTES)
                        .spawn_scoped(scope, move || run_rank(comm, body))
                        .expect("carrier thread spawn")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panics are caught inside run_rank"))
                .collect()
        })
    };

    let mut results: Vec<RankResult<R>> = Vec::new();
    let mut failures: Vec<RankFailure> = Vec::new();
    for o in outcomes {
        match o {
            RankOutcome::Ok(r) => results.push(r),
            RankOutcome::Failed(f) => failures.push(f),
        }
    }
    results.sort_by_key(|r| r.rank);
    if failures.is_empty() {
        return Ok(results);
    }

    // Invert the wait-for edges: each failed rank learns which peers
    // were blocked on it when the job ended.
    failures.sort_by_key(|f| f.rank);
    let waiting_edges: Vec<(usize, usize)> = failures
        .iter()
        .filter_map(|f| f.error.waiting_on().map(|on| (f.rank, on)))
        .collect();
    for f in &mut failures {
        f.blocked_peers = waiting_edges
            .iter()
            .filter(|&&(_, on)| on == f.rank)
            .map(|&(waiter, _)| waiter)
            .collect();
    }
    Err(JobFailure {
        report: FailureReport {
            size: p,
            failures,
            survivor_ranks: results.iter().map(|r| r.rank).collect(),
        },
        survivors: results,
    })
}

/// The modeled parallel runtime of a finished job: max final clock.
pub fn job_time<R>(results: &[RankResult<R>]) -> f64 {
    results.iter().map(|r| r.clock).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;
    use otter_machine::meiko_cs2;
    use otter_trace::{critical_path, timelines, MemorySink};

    #[test]
    fn ranks_are_ordered_and_complete() {
        let res = run_spmd(&meiko_cs2(), 8, |c| Ok(c.rank() * 10));
        assert_eq!(res.len(), 8);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(r.value, i * 10);
        }
    }

    #[test]
    fn single_rank_runs_inline() {
        let res = run_spmd(&meiko_cs2(), 1, |c| {
            assert_eq!(c.size(), 1);
            Ok("done")
        });
        assert_eq!(res[0].value, "done");
    }

    #[test]
    fn more_ranks_than_cpus_is_allowed() {
        // max_cpus (16 on the Meiko) is a modeling parameter now, not
        // an execution limit: ranks are virtual.
        let res = run_spmd(&meiko_cs2(), 17, |c| Ok(c.rank()));
        assert_eq!(res.len(), 17);
        assert!(res.iter().enumerate().all(|(i, r)| r.value == i));
    }

    #[test]
    fn zero_ranks_is_invalid_config() {
        let res = run_spmd_with(&meiko_cs2(), 0, SpmdOptions::default(), |_| Ok(()));
        let failure = res.unwrap_err();
        assert_eq!(failure.report.failures.len(), 1);
        let f = &failure.report.failures[0];
        assert_eq!(f.rank, 0);
        assert_eq!(f.error.code(), "invalid_config");
        assert!(
            f.error.to_string().contains("at least one rank"),
            "{}",
            f.error
        );
        assert!(failure.report.survivor_ranks.is_empty());
        assert!(failure.survivors.is_empty());
    }

    #[test]
    fn zero_workers_is_invalid_config() {
        let opts = SpmdOptions {
            workers: Some(0),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 4, opts, |_| Ok(()));
        let failure = res.unwrap_err();
        assert_eq!(failure.report.failures[0].error.code(), "invalid_config");
        assert!(
            failure.report.to_string().contains("at least one worker"),
            "{}",
            failure.report
        );
    }

    #[test]
    fn oversubscribed_pool_gives_identical_results() {
        // The virtual clock depends only on the program and the
        // machine model, never on how ranks are multiplexed: a
        // one-worker pool must reproduce the dedicated pool bit for
        // bit.
        let run = |workers: Option<usize>| {
            let opts = SpmdOptions {
                workers,
                ..SpmdOptions::default()
            };
            run_spmd_with(&meiko_cs2(), 8, opts, |c| {
                c.compute((c.rank() as f64 + 1.0) * 1e5);
                let s = c.allreduce_scalar(c.rank() as f64, ReduceOp::Sum)?;
                Ok((s.to_bits(), c.clock().to_bits()))
            })
            .unwrap()
            .iter()
            .map(|r| (r.value, r.clock.to_bits(), r.stats))
            .collect::<Vec<_>>()
        };
        let dedicated = run(Some(8));
        assert_eq!(run(Some(1)), dedicated, "W=1");
        assert_eq!(run(Some(2)), dedicated, "W=2");
    }

    #[test]
    fn tight_intervals_diagnose_deadlock_quickly() {
        let opts = SpmdOptions {
            poll_interval: std::time::Duration::from_millis(2),
            confirm_window: std::time::Duration::from_millis(8),
            ..SpmdOptions::default()
        };
        let t0 = std::time::Instant::now();
        let res = run_spmd_with(&meiko_cs2(), 2, opts, |c| {
            c.recv(1 - c.rank())?;
            Ok(())
        });
        let failure = res.unwrap_err();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "tight intervals took {:?}",
            t0.elapsed()
        );
        for f in &failure.report.failures {
            assert_eq!(f.error.code(), "deadlock", "{}", f.error);
        }
    }

    #[test]
    fn job_time_is_max_clock() {
        let res = run_spmd(&meiko_cs2(), 4, |c| {
            c.compute((c.rank() as f64 + 1.0) * 1e6);
            Ok(())
        });
        let t = job_time(&res);
        assert!((t - res[3].clock).abs() < 1e-15);
        assert!(t > res[0].clock);
    }

    #[test]
    fn traced_job_critical_path_matches_job_time() {
        let sink = Arc::new(MemorySink::new());
        let opts = SpmdOptions {
            trace: Some(sink.clone() as Arc<dyn TraceSink>),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 4, opts, |c| {
            c.compute((c.rank() as f64 + 1.0) * 1e6);
            c.allreduce_scalar(1.0, crate::ReduceOp::Sum)
        })
        .unwrap();
        let events = sink.snapshot().unwrap();
        let cp = critical_path(&events);
        let t = job_time(&res);
        assert!((cp.total - t).abs() < 1e-12, "cp={} job={t}", cp.total);
        // The chain decomposes into compute + transfer time exactly.
        assert!((cp.compute + cp.comm - cp.total).abs() < 1e-9);
        // Every rank's timeline tiles its clock.
        for tl in timelines(&events) {
            let r = &res[tl.rank];
            assert!(
                (tl.compute + tl.comm + tl.idle - r.clock).abs() < 1e-9,
                "rank {}",
                tl.rank
            );
        }
    }

    #[test]
    fn deadlock_cycle_is_diagnosed_fast_with_both_edges() {
        // Ranks 0 and 1 each wait for the other: a classic 2-cycle.
        let t0 = std::time::Instant::now();
        let res = run_spmd_with(&meiko_cs2(), 2, SpmdOptions::default(), |c| {
            let peer = 1 - c.rank();
            let v = c.recv(peer)?; // nobody ever sends
            c.send(peer, &v)?;
            Ok(())
        });
        let failure = res.unwrap_err();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "diagnosis must come from the wait-for graph, not a 60s timeout"
        );
        assert_eq!(failure.report.failures.len(), 2);
        assert!(failure.report.survivor_ranks.is_empty());
        for f in &failure.report.failures {
            let peer = 1 - f.rank;
            assert_eq!(f.error.code(), "deadlock", "{}", f.error);
            assert_eq!(f.error.waiting_on(), Some(peer));
            // Each rank's report names the peer that was stuck on it.
            assert_eq!(f.blocked_peers, vec![peer]);
            match &f.error {
                CommError::Deadlock { cycle, .. } => {
                    assert_eq!(cycle.len(), 2);
                    assert_eq!(cycle[0].waiter, 0, "cycle is canonicalized");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn crash_at_p8_names_dead_rank_and_blocked_peers() {
        // The acceptance scenario: rank 3 is killed by the fault plan
        // at its first comm op. Ranks 2 and 4 are blocked on it; ranks
        // 5..8 never talk to it and survive with their stats intact.
        let opts = SpmdOptions {
            metrics: true,
            faults: Some(FaultPlan::new().crash(3, 1)),
            ..SpmdOptions::default()
        };
        let res = run_spmd_with(&meiko_cs2(), 8, opts, |c| {
            match c.rank() {
                2 => {
                    c.send(3, &[2.0])?;
                    c.recv(3)?;
                }
                4 => {
                    c.recv(3)?;
                }
                3 => {
                    let v = c.recv(2)?;
                    c.send(2, &v)?;
                    c.send(4, &[3.0])?;
                }
                0 | 1 => {
                    // An independent pair that completes normally.
                    let peer = 1 - c.rank();
                    if c.rank() == 0 {
                        c.send(peer, &[0.5])?;
                    } else {
                        c.recv(peer)?;
                    }
                }
                _ => c.compute(1e6),
            }
            Ok(c.rank())
        });
        let failure = res.unwrap_err();
        let report = &failure.report;
        assert_eq!(report.size, 8);
        // Rank 3 died by injection; 2 and 4 report the dead peer.
        let failed: Vec<usize> = report.failures.iter().map(|f| f.rank).collect();
        assert_eq!(failed, vec![2, 3, 4]);
        let f3 = report.failures.iter().find(|f| f.rank == 3).unwrap();
        assert_eq!(f3.error.code(), "injected_crash");
        assert_eq!(f3.blocked_peers, vec![2, 4], "peers blocked on rank 3");
        assert_eq!(report.root_cause().rank, 3);
        for r in [2usize, 4] {
            let f = report.failures.iter().find(|f| f.rank == r).unwrap();
            assert_eq!(f.error.code(), "peer_terminated");
            assert_eq!(f.error.waiting_on(), Some(3));
        }
        // Survivors kept complete results, stats, and metrics.
        assert_eq!(report.survivor_ranks, vec![0, 1, 5, 6, 7]);
        assert_eq!(failure.survivors.len(), 5);
        let s0 = failure.survivors.iter().find(|r| r.rank == 0).unwrap();
        assert_eq!(s0.stats.messages_sent, 1);
        assert!(s0.metrics.is_some(), "partial metrics intact");
        let s5 = failure.survivors.iter().find(|r| r.rank == 5).unwrap();
        assert!(s5.stats.compute_time > 0.0);
        // The formatted report names everything CI greps for.
        let text = report.to_string();
        assert!(text.contains("rank 3 crashed by fault plan"), "{text}");
        assert!(text.contains("[blocked peers: 2 4]"), "{text}");
        assert!(text.contains("survivors: [0, 1, 5, 6, 7]"), "{text}");
    }

    #[test]
    fn dropped_message_becomes_a_diagnosed_deadlock() {
        // Rank 0's first message to rank 1 is dropped; rank 1 then
        // waits for a packet that never comes while rank 0 waits for
        // the reply — a 2-cycle the detector must find.
        let opts = SpmdOptions {
            faults: Some(FaultPlan::new().drop_message(0, 1, 0)),
            ..SpmdOptions::default()
        };
        let t0 = std::time::Instant::now();
        let res = run_spmd_with(&meiko_cs2(), 2, opts, |c| {
            if c.rank() == 0 {
                c.send(1, &[1.0])?;
                c.recv(1)?;
            } else {
                let v = c.recv(0)?;
                c.send(0, &v)?;
            }
            Ok(())
        });
        let failure = res.unwrap_err();
        assert!(t0.elapsed() < std::time::Duration::from_secs(10));
        for f in &failure.report.failures {
            assert_eq!(f.error.code(), "deadlock", "{}", f.error);
        }
        // The sender was charged for the dropped message.
        let f0 = &failure.report.failures[0];
        assert_eq!(f0.stats.messages_sent, 1);
    }

    #[test]
    fn delayed_message_shifts_virtual_time_only() {
        let run = |delay: Option<f64>| {
            let opts = SpmdOptions {
                faults: delay.map(|s| FaultPlan::new().delay_message(0, 1, 0, s)),
                ..SpmdOptions::default()
            };
            run_spmd_with(&meiko_cs2(), 2, opts, |c| {
                if c.rank() == 0 {
                    c.send(1, &[1.0])?;
                } else {
                    c.recv(0)?;
                }
                Ok(c.clock())
            })
            .unwrap()
        };
        let base = run(None);
        let delayed = run(Some(2.5));
        assert_eq!(base[0].value, delayed[0].value, "sender unaffected");
        let got = delayed[1].value - base[1].value;
        assert!((got - 2.5).abs() < 1e-12, "receiver delayed by 2.5s: {got}");
    }

    #[test]
    fn no_fault_plan_is_byte_identical() {
        let run = |opts: SpmdOptions| {
            run_spmd_with(&meiko_cs2(), 4, opts, |c| {
                c.compute(1e5);
                let s = c.allreduce_scalar(c.rank() as f64, ReduceOp::Sum)?;
                Ok((s, c.clock().to_bits()))
            })
            .unwrap()
            .iter()
            .map(|r| (r.value.0.to_bits(), r.value.1))
            .collect::<Vec<_>>()
        };
        // An empty plan (present but no actions) must match no plan.
        let without = run(SpmdOptions::default());
        let with_empty = run(SpmdOptions {
            faults: Some(FaultPlan::new()),
            ..SpmdOptions::default()
        });
        assert_eq!(without, with_empty);
    }

    #[test]
    fn body_panic_is_captured_not_propagated() {
        let res = run_spmd_with(&meiko_cs2(), 4, SpmdOptions::default(), |c| {
            if c.rank() == 2 {
                panic!("injected panic on rank 2");
            }
            c.allreduce_scalar(1.0, ReduceOp::Sum)
        });
        let failure = res.unwrap_err();
        let f2 = failure
            .report
            .failures
            .iter()
            .find(|f| f.rank == 2)
            .unwrap();
        assert_eq!(f2.error.code(), "panicked");
        assert!(
            f2.error.to_string().contains("injected panic"),
            "{}",
            f2.error
        );
        // Everyone else was blocked on the collective and reports the
        // dead peer rather than panicking themselves.
        for f in failure.report.failures.iter().filter(|f| f.rank != 2) {
            assert!(
                matches!(f.error.code(), "peer_terminated" | "deadlock"),
                "rank {}: {}",
                f.rank,
                f.error
            );
        }
    }

    #[test]
    fn seeded_fault_plans_reproduce_identical_reports() {
        let run = |seed: u64| {
            let opts = SpmdOptions {
                faults: Some(FaultPlan::seeded(seed, 4)),
                ..SpmdOptions::default()
            };
            run_spmd_with(&meiko_cs2(), 4, opts, |c| {
                let s = c.allreduce_scalar(1.0, ReduceOp::Sum)?;
                c.barrier()?;
                Ok(s)
            })
        };
        for seed in [0u64, 2, 4] {
            let a = run(seed);
            let b = run(seed);
            match (a, b) {
                (Err(fa), Err(fb)) => {
                    assert_eq!(fa.report.to_string(), fb.report.to_string(), "seed {seed}");
                }
                (Ok(_), Ok(_)) => {} // fault site past the program's op count
                _ => panic!("seed {seed}: runs disagreed on success"),
            }
        }
    }
}

#[cfg(test)]
mod detector_stress {
    use super::*;
    use crate::ReduceOp;
    use otter_machine::meiko_cs2;

    /// Regression stress for the chimera-cycle false positive: with
    /// thousands of ranks funneling through a small worker pool, the
    /// detector's walk reads slots at spread-out instants, and a rank
    /// that progresses mid-walk used to stitch waits from different
    /// allreduce phases into a "cycle" that never coexisted — the
    /// confirmation then re-anchored on fresh states instead of the
    /// walk's observations and blessed it. At p=3000 on a few workers
    /// this fired within a run or two. Ignored by default (takes
    /// seconds); `harness scale` and CI's scaling smoke exercise the
    /// same path at p=4096.
    #[test]
    #[ignore]
    fn tree_allreduce_loop_survives_p3000() {
        let res = run_spmd_with(&meiko_cs2(), 3000, SpmdOptions::default(), |c| {
            let mut acc = 0.0;
            for _ in 0..4 {
                acc = c.allreduce_scalar(1.0, ReduceOp::Sum)?;
            }
            Ok(acc)
        });
        match res {
            Ok(r) => assert_eq!(r[0].value, 3000.0),
            Err(f) => panic!("false deadlock: {}", f.report.root_cause().error),
        }
    }
}
