//! The statistical bench driver behind `harness bench`.
//!
//! One [`BenchSpec`] runs every selected (app, engine, ranks)
//! combination with metrics on: `warmup` untimed repetitions, then
//! `repeat` measured ones. Each combination yields a [`BenchResult`]
//! carrying two kinds of numbers:
//!
//! * **Deterministic simulation outputs** — `modeled_seconds`,
//!   `messages`, `bytes` — identical on every machine and every
//!   repetition, because the SPMD substrate runs on virtual clocks.
//!   These are what [`check`] gates regressions on: a committed
//!   baseline stays valid across hosts and CI runners.
//! * **Host wall-clock statistics** — median/min/max/IQR over the
//!   measured repetitions. These vary with the machine and its load,
//!   so [`check`] never gates them; the opt-in [`check_wall`] gate
//!   compares medians under a noise tolerance (percentage plus the
//!   baseline's own IQR) for same-host runs such as CI wall gates.
//!
//! Reports round-trip through the hand-rolled [`Json`] tree under the
//! `otter-bench/v1` schema, so `harness bench --check baseline.json`
//! can parse a checked-in baseline without any external dependency.

use crate::figures::Scale;
use otter_core::{run_engine, Engine, EngineOptions, EngineReport, OtterError};
use otter_machine::meiko_cs2;
use otter_metrics::{Json, MetricsSnapshot};
use std::time::Instant;

/// The `"schema"` tag every report carries; bump on breaking format
/// changes.
pub const BENCH_SCHEMA: &str = "otter-bench/v1";

/// What to benchmark.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Problem sizes (test scale for CI, paper scale for real runs).
    pub scale: Scale,
    /// Benchmark app id (`cg`/`ocean`/`nbody`/`tc`) or `all`.
    pub app_id: String,
    /// Rank counts for the SPMD engine — one `otter` combination per
    /// entry (sequential engines always run on one CPU, once).
    pub ranks: Vec<usize>,
    /// Worker-pool size for the SPMD scheduler; `None` uses the host's
    /// parallelism. Deterministic outputs are identical either way, so
    /// gated quantities never depend on this.
    pub workers: Option<usize>,
    /// Measured repetitions per combination.
    pub repeat: usize,
    /// Untimed warm-up repetitions per combination.
    pub warmup: usize,
}

impl Default for BenchSpec {
    fn default() -> Self {
        BenchSpec {
            scale: Scale::Test,
            app_id: "all".to_string(),
            ranks: vec![4],
            workers: None,
            repeat: 5,
            warmup: 1,
        }
    }
}

/// Order statistics of the measured wall-clock samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallStats {
    pub median: f64,
    pub min: f64,
    pub max: f64,
    /// Interquartile range (q3 − q1, nearest-rank quartiles).
    pub iqr: f64,
}

impl WallStats {
    /// Summarize a non-empty sample set.
    pub fn from_samples(samples: &[f64]) -> WallStats {
        assert!(!samples.is_empty(), "wall stats need at least one sample");
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        let n = s.len();
        let median = if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        };
        // Nearest-rank quartiles degenerate below four samples: both
        // rank formulas land on interior (or identical) elements and
        // report a zero IQR for genuinely dispersed data. Clamp small
        // samples to the conservative full range instead — one sample
        // has no dispersion at all, so it stays zero.
        let iqr = match n {
            1 => 0.0,
            2 | 3 => s[n - 1] - s[0],
            _ => s[(3 * (n - 1)) / 4] - s[(n - 1) / 4],
        };
        WallStats {
            median,
            min: s[0],
            max: s[n - 1],
            iqr,
        }
    }
}

/// One (app, engine, ranks) combination's measurements.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub app: String,
    pub engine: String,
    pub ranks: usize,
    /// Modeled execution time (virtual seconds; deterministic).
    pub modeled_seconds: f64,
    /// Total messages across ranks (deterministic).
    pub messages: u64,
    /// Total bytes across ranks (deterministic).
    pub bytes: u64,
    /// Host wall-clock statistics over the measured repetitions
    /// (informational; never gated).
    pub wall: WallStats,
    /// The job-level metric snapshot from the last measured repetition
    /// (rank registries merged; identical across repetitions except
    /// for the host-time `compile_pass_seconds` series).
    pub metrics: MetricsSnapshot,
}

/// A full bench run: configuration echo plus one result per
/// combination.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub scale: String,
    pub machine: String,
    pub repeat: usize,
    pub warmup: usize,
    pub results: Vec<BenchResult>,
}

fn make_engine(name: &str, opts: &EngineOptions) -> Box<dyn Engine> {
    otter_core::standard_engines(opts)
        .into_iter()
        .find(|e| e.name() == name)
        .unwrap_or_else(|| panic!("no engine named `{name}`"))
}

/// Run the spec on the Meiko CS-2 model. Fails if an app id matches
/// nothing or any engine errors.
pub fn run_bench(spec: &BenchSpec) -> Result<BenchReport, OtterError> {
    let machine = meiko_cs2();
    let apps: Vec<_> = spec
        .scale
        .apps()
        .into_iter()
        .filter(|a| spec.app_id == "all" || a.id == spec.app_id)
        .collect();
    if apps.is_empty() {
        return Err(OtterError::execution(format!(
            "bench: unknown app `{}` (expected cg|ocean|nbody|tc|all)",
            spec.app_id
        )));
    }
    let repeat = spec.repeat.max(1);
    let mut opts = EngineOptions::builder().metrics(true).build();
    opts.workers = spec.workers;
    let ranks = if spec.ranks.is_empty() {
        vec![4]
    } else {
        spec.ranks.clone()
    };
    let mut results = Vec::new();
    for app in &apps {
        // Sequential engines model one CPU; only the SPMD engine sees
        // the requested rank counts (one combination per count).
        let mut combos = vec![("interpreter", 1), ("matcom", 1)];
        combos.extend(ranks.iter().map(|&p| ("otter", p)));
        for (engine_name, p) in combos {
            for _ in 0..spec.warmup {
                run_engine(
                    make_engine(engine_name, &opts).as_mut(),
                    &app.script,
                    &machine,
                    p,
                )?;
            }
            let mut walls = Vec::with_capacity(repeat);
            let mut last: Option<EngineReport> = None;
            for _ in 0..repeat {
                let t0 = Instant::now();
                let report = run_engine(
                    make_engine(engine_name, &opts).as_mut(),
                    &app.script,
                    &machine,
                    p,
                )?;
                walls.push(t0.elapsed().as_secs_f64());
                last = Some(report);
            }
            let report = last.expect("repeat >= 1");
            results.push(BenchResult {
                app: app.id.to_string(),
                engine: engine_name.to_string(),
                ranks: p,
                modeled_seconds: report.modeled_seconds,
                messages: report.messages,
                bytes: report.bytes,
                wall: WallStats::from_samples(&walls),
                metrics: report.metrics.unwrap_or_default(),
            });
        }
    }
    Ok(BenchReport {
        scale: match spec.scale {
            Scale::Paper => "paper".to_string(),
            Scale::Test => "test".to_string(),
            Scale::Large => "large".to_string(),
        },
        machine: machine.name,
        repeat,
        warmup: spec.warmup,
        results,
    })
}

impl BenchReport {
    /// Serialize under the `otter-bench/v1` schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(BENCH_SCHEMA.to_string())),
            ("scale".to_string(), Json::Str(self.scale.clone())),
            ("machine".to_string(), Json::Str(self.machine.clone())),
            ("repeat".to_string(), Json::Num(self.repeat as f64)),
            ("warmup".to_string(), Json::Num(self.warmup as f64)),
            (
                "results".to_string(),
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("app".to_string(), Json::Str(r.app.clone())),
                                ("engine".to_string(), Json::Str(r.engine.clone())),
                                ("ranks".to_string(), Json::Num(r.ranks as f64)),
                                ("modeled_seconds".to_string(), Json::Num(r.modeled_seconds)),
                                ("messages".to_string(), Json::Num(r.messages as f64)),
                                ("bytes".to_string(), Json::Num(r.bytes as f64)),
                                (
                                    "wall_seconds".to_string(),
                                    Json::Obj(vec![
                                        ("median".to_string(), Json::Num(r.wall.median)),
                                        ("min".to_string(), Json::Num(r.wall.min)),
                                        ("max".to_string(), Json::Num(r.wall.max)),
                                        ("iqr".to_string(), Json::Num(r.wall.iqr)),
                                    ]),
                                ),
                                ("metrics".to_string(), r.metrics.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a report written by [`BenchReport::to_json`].
    pub fn from_json(json: &Json) -> Result<BenchReport, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("bench report missing `schema`")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported bench schema `{schema}` (expected `{BENCH_SCHEMA}`)"
            ));
        }
        let str_field = |obj: &Json, field: &str| -> Result<String, String> {
            obj.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bench report missing `{field}`"))
        };
        let num_field = |obj: &Json, field: &str| -> Result<f64, String> {
            obj.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("bench report missing `{field}`"))
        };
        let mut results = Vec::new();
        for r in json
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("bench report missing `results`")?
        {
            let wall = r
                .get("wall_seconds")
                .ok_or("result missing `wall_seconds`")?;
            let metrics = match r.get("metrics") {
                Some(m) => MetricsSnapshot::from_json(m)?,
                None => MetricsSnapshot::default(),
            };
            results.push(BenchResult {
                app: str_field(r, "app")?,
                engine: str_field(r, "engine")?,
                ranks: num_field(r, "ranks")? as usize,
                modeled_seconds: num_field(r, "modeled_seconds")?,
                messages: num_field(r, "messages")? as u64,
                bytes: num_field(r, "bytes")? as u64,
                wall: WallStats {
                    median: num_field(wall, "median")?,
                    min: num_field(wall, "min")?,
                    max: num_field(wall, "max")?,
                    iqr: num_field(wall, "iqr")?,
                },
                metrics,
            });
        }
        Ok(BenchReport {
            scale: str_field(json, "scale")?,
            machine: str_field(json, "machine")?,
            repeat: num_field(json, "repeat")? as usize,
            warmup: num_field(json, "warmup")? as usize,
            results,
        })
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench: {} scale on {}, {} repetition(s) after {} warmup(s)",
            self.scale, self.machine, self.repeat, self.warmup
        );
        let _ = writeln!(
            out,
            "{:<7} {:<12} {:>5} {:>14} {:>10} {:>12} {:>12}",
            "app", "engine", "ranks", "modeled (s)", "messages", "wall med (s)", "wall IQR (s)"
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "{:<7} {:<12} {:>5} {:>14.6} {:>10} {:>12.4} {:>12.4}",
                r.app, r.engine, r.ranks, r.modeled_seconds, r.messages, r.wall.median, r.wall.iqr
            );
        }
        out
    }
}

/// One detected regression of `current` against `baseline`.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub app: String,
    pub engine: String,
    pub ranks: usize,
    /// Which gated quantity regressed (`modeled_seconds`, `messages`,
    /// `bytes`, `wall_seconds`, or `missing`).
    pub what: String,
    pub baseline: f64,
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} x{}: {} regressed {} -> {}",
            self.app, self.engine, self.ranks, self.what, self.baseline, self.current
        )
    }
}

/// Gate `current` against `baseline`: every baseline combination must
/// exist in `current`, and its deterministic outputs must not exceed
/// the baseline by more than `tolerance_pct` percent. Wall-clock stats
/// are never gated — they are host-dependent.
pub fn check(baseline: &BenchReport, current: &BenchReport, tolerance_pct: f64) -> Vec<Regression> {
    let allowed = 1.0 + tolerance_pct / 100.0;
    let mut regressions = Vec::new();
    for b in &baseline.results {
        let Some(c) = current
            .results
            .iter()
            .find(|c| c.app == b.app && c.engine == b.engine && c.ranks == b.ranks)
        else {
            regressions.push(Regression {
                app: b.app.clone(),
                engine: b.engine.clone(),
                ranks: b.ranks,
                what: "missing".to_string(),
                baseline: 1.0,
                current: 0.0,
            });
            continue;
        };
        let gates = [
            ("modeled_seconds", b.modeled_seconds, c.modeled_seconds),
            ("messages", b.messages as f64, c.messages as f64),
            ("bytes", b.bytes as f64, c.bytes as f64),
        ];
        for (what, base, cur) in gates {
            if cur > base * allowed {
                regressions.push(Regression {
                    app: b.app.clone(),
                    engine: b.engine.clone(),
                    ranks: b.ranks,
                    what: what.to_string(),
                    baseline: base,
                    current: cur,
                });
            }
        }
    }
    regressions
}

/// Opt-in wall-clock gate: for every combination present in both
/// reports, the current `wall_seconds` median must not exceed the
/// baseline median by more than `wall_tolerance_pct` percent *plus*
/// the baseline's IQR. The additive IQR term is the noise tolerance —
/// a run whose median moved less than the baseline's own dispersion is
/// indistinguishable from load jitter and must not fail a gate.
///
/// Only meaningful when baseline and current ran on comparable hosts
/// (e.g. the same CI runner class); [`check`] deliberately excludes
/// wall time for that reason. Combinations missing from `current` are
/// flagged by [`check`], not here.
pub fn check_wall(
    baseline: &BenchReport,
    current: &BenchReport,
    wall_tolerance_pct: f64,
) -> Vec<Regression> {
    let allowed = 1.0 + wall_tolerance_pct / 100.0;
    let mut regressions = Vec::new();
    for b in &baseline.results {
        let Some(c) = current
            .results
            .iter()
            .find(|c| c.app == b.app && c.engine == b.engine && c.ranks == b.ranks)
        else {
            continue;
        };
        if c.wall.median > b.wall.median * allowed + b.wall.iqr {
            regressions.push(Regression {
                app: b.app.clone(),
                engine: b.engine.clone(),
                ranks: b.ranks,
                what: "wall_seconds".to_string(),
                baseline: b.wall.median,
                current: c.wall.median,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_stats_order_statistics() {
        let s = WallStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.iqr, 2.0, "q3=4, q1=2 under nearest-rank");
        let even = WallStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.median, 2.5);
    }

    #[test]
    fn wall_stats_small_samples_do_not_degenerate() {
        // One sample: no dispersion to report.
        let one = WallStats::from_samples(&[7.0]);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.iqr, 0.0);
        // Two and three samples: nearest-rank quartiles would both
        // land on s[0] (n=2) or report a misleading interior spread
        // (n=3); the clamp reports the conservative full range.
        let two = WallStats::from_samples(&[1.0, 5.0]);
        assert_eq!(two.median, 3.0);
        assert_eq!(two.iqr, 4.0);
        let three = WallStats::from_samples(&[1.0, 2.0, 9.0]);
        assert_eq!(three.median, 2.0);
        assert_eq!(three.iqr, 8.0);
        // Four samples: back on nearest-rank (q1 = s[0], q3 = s[2]).
        let four = WallStats::from_samples(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(four.iqr, 2.0);
    }

    fn tiny_report(modeled: f64, messages: u64) -> BenchReport {
        BenchReport {
            scale: "test".to_string(),
            machine: "m".to_string(),
            repeat: 3,
            warmup: 1,
            results: vec![BenchResult {
                app: "cg".to_string(),
                engine: "otter".to_string(),
                ranks: 4,
                modeled_seconds: modeled,
                messages,
                bytes: 1000,
                wall: WallStats {
                    median: 0.1,
                    min: 0.05,
                    max: 0.2,
                    iqr: 0.02,
                },
                metrics: MetricsSnapshot::default(),
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let report = tiny_report(1.5, 42);
        let text = report.to_json().to_string();
        let back = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.results.len(), 1);
        assert_eq!(back.results[0].modeled_seconds, 1.5);
        assert_eq!(back.results[0].messages, 42);
        assert_eq!(back.results[0].wall, report.results[0].wall);
        assert_eq!(back.scale, "test");
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_past_it() {
        let base = tiny_report(1.0, 100);
        assert!(check(&base, &tiny_report(1.05, 100), 10.0).is_empty());
        let slow = check(&base, &tiny_report(1.5, 100), 10.0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].what, "modeled_seconds");
        let chatty = check(&base, &tiny_report(1.0, 200), 10.0);
        assert_eq!(chatty.len(), 1);
        assert_eq!(chatty[0].what, "messages");
    }

    #[test]
    fn check_flags_missing_combinations() {
        let base = tiny_report(1.0, 100);
        let mut cur = tiny_report(1.0, 100);
        cur.results[0].ranks = 8; // no longer matches (cg, otter, 4)
        let r = check(&base, &cur, 10.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].what, "missing");
    }

    #[test]
    fn faster_is_never_a_regression() {
        let base = tiny_report(1.0, 100);
        assert!(check(&base, &tiny_report(0.2, 10), 0.0).is_empty());
    }

    fn with_wall(median: f64, iqr: f64) -> BenchReport {
        let mut r = tiny_report(1.0, 100);
        r.results[0].wall.median = median;
        r.results[0].wall.iqr = iqr;
        r
    }

    #[test]
    fn wall_gate_tolerates_noise_but_catches_regressions() {
        let base = with_wall(0.100, 0.010);
        // Within pct tolerance + baseline IQR: jitter, not regression.
        assert!(check_wall(&base, &with_wall(0.115, 0.0), 10.0).is_empty());
        // Faster is never a regression.
        assert!(check_wall(&base, &with_wall(0.020, 0.0), 0.0).is_empty());
        // Past tolerance + IQR: flagged, against the wall median.
        let slow = check_wall(&base, &with_wall(0.200, 0.0), 10.0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].what, "wall_seconds");
        assert_eq!(slow[0].baseline, 0.100);
        assert_eq!(slow[0].current, 0.200);
    }

    #[test]
    fn wall_gate_skips_missing_combinations() {
        // `check` owns missing-combination reporting; the wall gate
        // must not double-flag.
        let base = with_wall(0.1, 0.0);
        let mut cur = with_wall(0.1, 0.0);
        cur.results[0].ranks = 8;
        assert!(check_wall(&base, &cur, 10.0).is_empty());
    }
}
