//! Postmortem bundles: everything known about a failed SPMD job,
//! serialized to one self-contained JSON document.
//!
//! When a job dies, the in-process [`SpmdJobFailure`] is rich — typed
//! per-rank errors, the wait-for snapshot, every rank's flight-recorder
//! tail, merged metrics — but it dies with the process. A bundle
//! ([`build_postmortem`]) freezes all of it under the
//! `otter-postmortem/v1` schema, keyed by the job's [`JobId`] and the
//! artifact's content hashes, so `harness postmortem <file>` can
//! pretty-print the failure and re-run the deadlock-cycle diagnosis
//! offline — with no live job, no source, and no server.
//!
//! The bundle is deliberately plain JSON built on `otter_metrics::Json`
//! (the workspace's only JSON substrate): everything in it is also
//! reachable by generic tooling.

use crate::artifact::CompiledArtifact;
use crate::engines::SpmdJobFailure;
use otter_log::{FlightEvent, JobId, LogLevel};
use otter_metrics::Json;
use otter_mpi::{CommError, WaitEdge};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema identifier stamped into every bundle.
pub const POSTMORTEM_SCHEMA: &str = "otter-postmortem/v1";

fn hex(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn edge_json(e: &WaitEdge) -> Json {
    Json::Obj(vec![
        ("waiter".into(), Json::Num(e.waiter as f64)),
        ("waiting_on".into(), Json::Num(e.waiting_on as f64)),
    ])
}

fn event_json(e: &FlightEvent) -> Json {
    Json::Obj(vec![
        ("seq".into(), Json::Num(e.seq as f64)),
        ("clock".into(), Json::Num(e.clock)),
        ("level".into(), Json::Str(e.level.as_str().into())),
        ("code".into(), Json::Str(e.code.into())),
        ("a".into(), Json::Num(e.a as f64)),
        ("b".into(), Json::Num(e.b as f64)),
    ])
}

/// Build the `otter-postmortem/v1` bundle for a failed run of
/// `artifact`. Pure serialization: no I/O, no clock reads — the same
/// failure always produces the same bundle.
pub fn build_postmortem(artifact: &CompiledArtifact, failure: &SpmdJobFailure) -> Json {
    let report = &failure.report;
    let root = report.root_cause();
    let failures: Vec<Json> = report
        .failures
        .iter()
        .map(|f| {
            let mut obj = vec![
                ("rank".into(), Json::Num(f.rank as f64)),
                ("code".into(), Json::Str(f.error.code().into())),
                ("message".into(), Json::Str(f.error.to_string())),
                (
                    "waiting_on".into(),
                    f.error
                        .waiting_on()
                        .map_or(Json::Null, |w| Json::Num(w as f64)),
                ),
                (
                    "blocked_peers".into(),
                    Json::Arr(
                        f.blocked_peers
                            .iter()
                            .map(|&p| Json::Num(p as f64))
                            .collect(),
                    ),
                ),
                ("clock".into(), Json::Num(f.clock)),
                (
                    "stats".into(),
                    Json::Obj(vec![
                        ("messages".into(), Json::Num(f.stats.messages_sent as f64)),
                        ("bytes".into(), Json::Num(f.stats.bytes_sent as f64)),
                        ("compute_seconds".into(), Json::Num(f.stats.compute_time)),
                        ("send_seconds".into(), Json::Num(f.stats.send_time)),
                        ("wait_seconds".into(), Json::Num(f.stats.wait_time)),
                    ]),
                ),
            ];
            if let CommError::Deadlock { cycle, .. } = &f.error {
                obj.push((
                    "cycle".into(),
                    Json::Arr(cycle.iter().map(edge_json).collect()),
                ));
            }
            Json::Obj(obj)
        })
        .collect();
    // The final wait-for snapshot: one edge per failed rank that died
    // blocked. `harness postmortem` re-runs the cycle search over
    // exactly these edges.
    let wait_for: Vec<Json> = report
        .failures
        .iter()
        .filter_map(|f| {
            f.error.waiting_on().map(|on| {
                edge_json(&WaitEdge {
                    waiter: f.rank,
                    waiting_on: on,
                })
            })
        })
        .collect();
    let flight: Vec<Json> = failure
        .flight
        .iter()
        .map(|(rank, events)| {
            Json::Obj(vec![
                ("rank".into(), Json::Num(*rank as f64)),
                (
                    "events".into(),
                    Json::Arr(events.iter().map(event_json).collect()),
                ),
            ])
        })
        .collect();
    let survivors: Vec<Json> = failure
        .survivors
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("rank".into(), Json::Num(s.rank as f64)),
                ("messages".into(), Json::Num(s.messages as f64)),
                ("bytes".into(), Json::Num(s.bytes as f64)),
                ("clock".into(), Json::Num(s.clock)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(POSTMORTEM_SCHEMA.into())),
        ("job_id".into(), Json::Str(failure.job_id.to_string())),
        ("source_hash".into(), hex(artifact.source_hash())),
        (
            "options_fingerprint".into(),
            hex(artifact.options_fingerprint()),
        ),
        ("size".into(), Json::Num(report.size as f64)),
        (
            "failure".into(),
            Json::Obj(vec![
                ("summary".into(), Json::Str(report.to_string())),
                (
                    "root_cause".into(),
                    Json::Obj(vec![
                        ("rank".into(), Json::Num(root.rank as f64)),
                        ("code".into(), Json::Str(root.error.code().into())),
                        ("message".into(), Json::Str(root.error.to_string())),
                    ]),
                ),
                ("failures".into(), Json::Arr(failures)),
                (
                    "survivor_ranks".into(),
                    Json::Arr(
                        report
                            .survivor_ranks
                            .iter()
                            .map(|&r| Json::Num(r as f64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("wait_for".into(), Json::Arr(wait_for)),
        ("flight".into(), Json::Arr(flight)),
        (
            "metrics".into(),
            failure.metrics.as_ref().map_or(Json::Null, |m| m.to_json()),
        ),
        ("survivors".into(), Json::Arr(survivors)),
    ])
}

/// Write a bundle to `dir` (created if missing) as
/// `postmortem-<job_id>.json`; returns the path.
pub fn write_postmortem(dir: &Path, bundle: &Json) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let job = bundle
        .get("job_id")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    let path = dir.join(format!("postmortem-{job}.json"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{bundle}")?;
    Ok(path)
}

/// One rank's flight tail, decoded from a bundle.
#[derive(Debug, Clone)]
pub struct PostmortemFlight {
    pub rank: usize,
    pub events: Vec<DecodedEvent>,
}

/// A flight event read back from a bundle. The `code` is owned (the
/// `&'static str` identity is gone after serialization).
#[derive(Debug, Clone)]
pub struct DecodedEvent {
    pub seq: u64,
    pub clock: f64,
    pub level: LogLevel,
    pub code: String,
    pub a: u64,
    pub b: u64,
}

/// The decoded, typed view of a bundle that `harness postmortem` (and
/// the tests) work from.
#[derive(Debug, Clone)]
pub struct PostmortemSummary {
    pub job_id: JobId,
    pub source_hash: String,
    pub options_fingerprint: String,
    pub size: usize,
    pub summary: String,
    pub root_cause_rank: usize,
    pub root_cause_code: String,
    pub root_cause_message: String,
    /// `(rank, code, message, blocked_peers)` per failed rank.
    pub failures: Vec<(usize, String, String, Vec<usize>)>,
    pub survivor_ranks: Vec<usize>,
    /// The final wait-for snapshot.
    pub wait_for: Vec<WaitEdge>,
    pub flight: Vec<PostmortemFlight>,
    pub has_metrics: bool,
}

impl PostmortemSummary {
    /// The wait-for cycle re-diagnosed offline from the serialized
    /// snapshot — independent of what the live detector concluded.
    pub fn diagnose_cycle(&self) -> Option<Vec<WaitEdge>> {
        otter_mpi::find_wait_cycle(&self.wait_for)
    }
}

fn num_field(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("postmortem: missing numeric field `{key}`"))
}

fn str_field(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("postmortem: missing string field `{key}`"))
}

fn ranks_arr(j: &Json, key: &str) -> Vec<usize> {
    j.get(key)
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_num)
                .map(|n| n as usize)
                .collect()
        })
        .unwrap_or_default()
}

/// Parse and validate a serialized bundle. Rejects unknown schemas so
/// a v2 writer cannot be silently misread by a v1 reader.
pub fn parse_postmortem(text: &str) -> Result<PostmortemSummary, String> {
    let j = Json::parse(text)?;
    let schema = str_field(&j, "schema")?;
    if schema != POSTMORTEM_SCHEMA {
        return Err(format!(
            "postmortem: schema `{schema}` is not `{POSTMORTEM_SCHEMA}`"
        ));
    }
    let job_id = JobId::parse(&str_field(&j, "job_id")?)
        .ok_or_else(|| "postmortem: bad job_id".to_string())?;
    let failure = j
        .get("failure")
        .ok_or_else(|| "postmortem: missing `failure`".to_string())?;
    let root = failure
        .get("root_cause")
        .ok_or_else(|| "postmortem: missing `root_cause`".to_string())?;
    let failures = failure
        .get("failures")
        .and_then(Json::as_arr)
        .ok_or_else(|| "postmortem: missing `failures`".to_string())?
        .iter()
        .map(|f| {
            Ok((
                num_field(f, "rank")? as usize,
                str_field(f, "code")?,
                str_field(f, "message")?,
                ranks_arr(f, "blocked_peers"),
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let wait_for = j
        .get("wait_for")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|e| {
            Ok(WaitEdge {
                waiter: num_field(e, "waiter")? as usize,
                waiting_on: num_field(e, "waiting_on")? as usize,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let flight = j
        .get("flight")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|r| {
            let events = r
                .get("events")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|e| {
                    Ok(DecodedEvent {
                        seq: num_field(e, "seq")? as u64,
                        clock: num_field(e, "clock")?,
                        level: LogLevel::parse(&str_field(e, "level")?)
                            .ok_or_else(|| "postmortem: bad event level".to_string())?,
                        code: str_field(e, "code")?,
                        a: num_field(e, "a")? as u64,
                        b: num_field(e, "b")? as u64,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(PostmortemFlight {
                rank: num_field(r, "rank")? as usize,
                events,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(PostmortemSummary {
        job_id,
        source_hash: str_field(&j, "source_hash")?,
        options_fingerprint: str_field(&j, "options_fingerprint")?,
        size: num_field(&j, "size")? as usize,
        summary: str_field(failure, "summary")?,
        root_cause_rank: num_field(root, "rank")? as usize,
        root_cause_code: str_field(root, "code")?,
        root_cause_message: str_field(root, "message")?,
        failures,
        survivor_ranks: ranks_arr(failure, "survivor_ranks"),
        wait_for,
        flight,
        has_metrics: !matches!(j.get("metrics"), None | Some(Json::Null)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{compile, try_run, RunRequest};
    use crate::engines::EngineOptions;
    use otter_machine::meiko_cs2;
    use otter_mpi::FaultPlan;

    fn crashed_failure(p: usize) -> (CompiledArtifact, SpmdJobFailure) {
        let src = otter_apps_src();
        let opts = EngineOptions::builder()
            .metrics(true)
            .faults(FaultPlan::new().crash(1, 2))
            .build();
        let artifact = compile(&src, &opts).unwrap();
        let failure = try_run(&artifact, &RunRequest::on(meiko_cs2(), p))
            .unwrap()
            .unwrap_err();
        (artifact, failure)
    }

    /// A small message-heavy script: a ring of sends via gather-style
    /// matrix ops (every statement is SPMD-compiled).
    fn otter_apps_src() -> String {
        "a = ones(32, 32);\nb = a * a;\ns = sum(b(:, 1));".to_string()
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let (artifact, failure) = crashed_failure(4);
        let bundle = build_postmortem(&artifact, &failure);
        let text = bundle.to_string();
        let summary = parse_postmortem(&text).expect("bundle parses");
        assert_eq!(summary.job_id, failure.job_id);
        assert_eq!(summary.size, 4);
        assert_eq!(summary.root_cause_rank, 1);
        assert_eq!(summary.root_cause_code, "injected_crash");
        assert!(summary.has_metrics);
        assert_eq!(
            summary.source_hash,
            format!("{:016x}", artifact.source_hash())
        );
        // Every rank contributed a flight tail, and the dead rank's
        // tail ends with its crash.
        assert_eq!(summary.flight.len(), 4);
        let dead = summary.flight.iter().find(|f| f.rank == 1).unwrap();
        let last_codes: Vec<&str> = dead.events.iter().map(|e| e.code.as_str()).collect();
        assert!(
            last_codes.contains(&"fault.crash"),
            "dead rank's tail must contain the crash event: {last_codes:?}"
        );
        assert_eq!(dead.events.last().unwrap().code, "rank.failed");
    }

    #[test]
    fn bundle_carries_one_job_id_everywhere() {
        let (artifact, failure) = crashed_failure(4);
        let bundle = build_postmortem(&artifact, &failure);
        let id = failure.job_id.to_string();
        assert_eq!(
            bundle.get("job_id").and_then(Json::as_str),
            Some(id.as_str())
        );
        // The id in the bundle is the id the engine stamped on the
        // failure — one key, end to end.
        assert_ne!(failure.job_id.0, 0, "engine must mint a real id");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = parse_postmortem(r#"{"schema":"otter-postmortem/v2"}"#).unwrap_err();
        assert!(err.contains("otter-postmortem/v1"), "{err}");
        assert!(parse_postmortem("not json").is_err());
    }

    #[test]
    fn write_creates_file_named_by_job_id() {
        let (artifact, failure) = crashed_failure(2);
        let bundle = build_postmortem(&artifact, &failure);
        let dir = std::env::temp_dir().join(format!("otter-pm-test-{}", std::process::id()));
        let path = write_postmortem(&dir, &bundle).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains(&failure.job_id.to_string()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(parse_postmortem(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
