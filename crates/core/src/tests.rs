//! End-to-end pipeline tests: compile → SPMD-execute → compare against
//! the interpreter oracle at several processor counts.

use crate::*;
use otter_frontend::MapProvider;
use otter_machine::{enterprise_smp, meiko_cs2, sparc20_cluster, workstation, Machine};
use otter_rt::Dense;

/// Run an already-compiled program on `p` CPUs of `machine`.
fn run_compiled(
    compiled: &Compiled,
    machine: &Machine,
    p: usize,
) -> Result<EngineReport, OtterError> {
    let artifact =
        CompiledArtifact::from_parts(compiled.clone(), Vec::new(), "", &EngineOptions::default());
    run(&artifact, &RunRequest::on(machine.clone(), p))
}

/// Compile a script and execute on `p` CPUs; panic on any failure.
fn otter(src: &str, p: usize) -> EngineReport {
    let compiled = compile_str(src).unwrap_or_else(|e| panic!("compile: {e}\n{src}"));
    run_compiled(&compiled, &meiko_cs2(), p).unwrap_or_else(|e| panic!("exec(p={p}): {e}\n{src}"))
}

/// The interpreter baseline with options.
fn run_interpreter(
    src: &str,
    machine: &Machine,
    opts: &EngineOptions,
) -> Result<EngineReport, OtterError> {
    run_engine(&mut InterpreterEngine::new(opts.clone()), src, machine, 1)
}

/// The Otter engine end-to-end (compile + run) with options.
fn run_otter(
    src: &str,
    machine: &Machine,
    p: usize,
    opts: &EngineOptions,
) -> Result<EngineReport, OtterError> {
    run_engine(&mut OtterEngine::new(opts.clone()), src, machine, p)
}

/// Oracle comparison: compiled result equals interpreter result for
/// every listed variable, at several processor counts.
fn check_matches_interpreter(src: &str, vars: &[&str]) {
    let base = run_interpreter(src, &workstation(), &EngineOptions::default())
        .unwrap_or_else(|e| panic!("interp: {e}\n{src}"));
    for p in [1usize, 2, 3, 4, 8] {
        let run = otter(src, p);
        for v in vars {
            let a = base
                .workspace
                .get(*v)
                .unwrap_or_else(|| panic!("interp lacks {v}"));
            let b = run
                .workspace
                .get(*v)
                .unwrap_or_else(|| panic!("otter lacks {v}"));
            match (a.to_matrix(), b.to_matrix()) {
                (Some(ma), Some(mb)) => {
                    assert_eq!(
                        (ma.rows(), ma.cols()),
                        (mb.rows(), mb.cols()),
                        "{v} shape, p={p}"
                    );
                    for (x, y) in ma.data().iter().zip(mb.data()) {
                        assert!(
                            (x - y).abs() <= 1e-9 * (1.0 + x.abs()),
                            "{v}: {x} vs {y} (p={p})"
                        );
                    }
                }
                _ => panic!("{v} not numeric"),
            }
        }
    }
}

#[test]
fn scalar_pipeline() {
    let run = otter("x = 2 + 3 * 4;\ny = x ^ 2;", 2);
    assert_eq!(run.scalar("x"), Some(14.0));
    assert_eq!(run.scalar("y"), Some(196.0));
}

#[test]
fn paper_example_compiles_and_runs() {
    // a = b * c + d(i,j) — the §3 running example, end to end.
    let src = "n = 6;\nb = ones(n, n);\nc = ones(n, n);\nd = eye(n);\ni = 1;\nj = 1;\na = b * c + d(i, j);\ns = sum(sum(a));";
    check_matches_interpreter(src, &["a", "s"]);
}

#[test]
fn paper_owner_store_example() {
    let src = "n = 5;\na = ones(n, n);\nb = ones(n, n);\nb(2, 3) = 4;\ni = 2;\nj = 3;\na(i, j) = a(i, j) / b(j, i);\ns = sum(sum(a));";
    check_matches_interpreter(src, &["a", "s"]);
}

#[test]
fn elementwise_fusion_matches() {
    let src = "n = 7;\nx = ones(n, 1);\ny = 2 * x + x .* x - x / 4;\ns = sum(y);";
    check_matches_interpreter(src, &["y", "s"]);
}

#[test]
fn matvec_and_dot() {
    let src = "n = 8;\nA = eye(n);\nv = ones(n, 1);\nw = A * v;\nd = v' * w;";
    check_matches_interpreter(src, &["w", "d"]);
}

#[test]
fn transpose_roundtrip() {
    let src = "a = [1, 2, 3; 4, 5, 6];\nb = a';\nc = b';\ns = sum(sum(c - a));";
    check_matches_interpreter(src, &["b", "s"]);
}

#[test]
fn control_flow_loops() {
    let src = "s = 0;\nfor i = 1:50\nif mod(i, 3) == 0\ns = s + i;\nend\nend\nk = 0;\nwhile k < 10\nk = k + 2;\nend";
    check_matches_interpreter(src, &["s", "k"]);
}

#[test]
fn ranges_and_reductions() {
    let src = "v = 1:100;\ns = sum(v);\nm = mean(v);\nx = max(v);\nn2 = norm(v);";
    check_matches_interpreter(src, &["s", "m", "x", "n2"]);
}

#[test]
fn row_and_column_slices() {
    let src = "a = [1, 2, 3; 4, 5, 6; 7, 8, 9];\nr = a(2, :);\nc = a(:, 3);\na(1, :) = r;\na(:, 2) = c;\ns = sum(sum(a));";
    check_matches_interpreter(src, &["r", "c", "a", "s"]);
}

#[test]
fn vector_range_extraction() {
    let src = "v = 10:10:100;\nw = v(3:7);\ns = sum(w);";
    check_matches_interpreter(src, &["w", "s"]);
}

#[test]
fn circshift_compiled() {
    let src = "v = 1:9;\nw = circshift(v, 2);\nu = circshift(v, -4);\ns = sum(w .* u);";
    check_matches_interpreter(src, &["w", "u", "s"]);
}

#[test]
fn trapz_compiled() {
    let src = "x = 0:10;\ny = x .* x;\na = trapz(y);\nb = trapz2(x, y);";
    check_matches_interpreter(src, &["a", "b"]);
}

#[test]
fn user_functions_compiled() {
    let m = MapProvider::new()
        .with("scale2", "function y = scale2(v, s)\ny = v .* s;\n")
        .with(
            "norm_diff",
            "function d = norm_diff(a, b)\nd = norm(a - b);\n",
        );
    let src = "v = ones(6, 1);\nw = scale2(v, 3);\nd = norm_diff(w, v);";
    let opts = EngineOptions {
        m_files: Some(m.clone()),
        ..Default::default()
    };
    let base = run_interpreter(src, &workstation(), &opts).unwrap();
    let run = run_otter(src, &meiko_cs2(), 3, &opts).unwrap();
    assert_eq!(base.scalar("d"), run.scalar("d"));
    assert!((run.scalar("d").unwrap() - (2.0f64 * 2.0 * 6.0).sqrt()).abs() < 1e-12);
}

#[test]
fn outer_product_compiled() {
    let src = "u = [1; 2; 3];\nv = [4, 5];\nm = u * v;\ns = sum(sum(m));";
    check_matches_interpreter(src, &["m", "s"]);
}

#[test]
fn matrix_sum_columns() {
    let src = "a = [1, 2; 3, 4; 5, 6];\ncs = sum(a);\ncm = mean(a);";
    check_matches_interpreter(src, &["cs", "cm"]);
}

#[test]
fn ssa_rank_change_through_pipeline() {
    let src = "x = 2;\ny = x + 1;\nx = [1, 2, 3];\nz = x(2) + y;";
    check_matches_interpreter(src, &["z"]);
}

#[test]
fn end_keyword_in_compiled_code() {
    let src = "v = 1:10;\na = v(end);\nb = v(end - 3);\nw = v(2:end);\ns = sum(w);";
    check_matches_interpreter(src, &["a", "b", "s"]);
}

#[test]
fn display_output_on_root_only() {
    let compiled = compile_str("x = 41 + 1\n").unwrap();
    let run = run_compiled(&compiled, &meiko_cs2(), 4).unwrap();
    assert!(run.output.contains("x ="), "{}", run.output);
    assert!(run.output.contains("42"), "{}", run.output);
}

#[test]
fn c_source_contains_runtime_calls() {
    let compiled = compile_str(
        "n = 4;\nb = ones(n, n);\nc = ones(n, n);\nd = eye(n);\ni = 2;\nj = 2;\na = b * c + d(i, j);",
    )
    .unwrap();
    let c = &compiled.c_source;
    assert!(c.contains("ML_matrix_multiply"), "{c}");
    assert!(c.contains("ML_broadcast"), "{c}");
    assert!(c.contains("realbase["), "{c}");
    assert!(c.contains("int main(int argc, char **argv)"), "{c}");
}

#[test]
fn peephole_reduces_instruction_count() {
    let src = "n = 32;\nv = ones(n, 1);\nw = ones(n, 1);\nd = sum(v .* w);";
    let with = compile_str(src).unwrap();
    let without = compile_program(
        src,
        &otter_frontend::EmptyProvider,
        &CompileOptions::default().without_pass("peephole"),
    )
    .unwrap();
    assert!(
        with.peephole_stats.dots_fused >= 1,
        "{:?}",
        with.peephole_stats
    );
    assert!(with.ir.instr_count() < without.ir.instr_count());
    // Same answer either way.
    let a = run_compiled(&with, &meiko_cs2(), 4).unwrap();
    let b = run_compiled(&without, &meiko_cs2(), 4).unwrap();
    assert_eq!(a.scalar("d"), b.scalar("d"));
    assert_eq!(a.scalar("d"), Some(32.0));
}

#[test]
fn modeled_speedup_on_compute_bound_code() {
    // A big matmul should speed up with more CPUs on the Meiko.
    let src = "n = 64;\na = ones(n, n);\nb = ones(n, n);\nc = a * b;\ns = sum(sum(c));";
    let compiled = compile_str(src).unwrap();
    let t1 = run_compiled(&compiled, &meiko_cs2(), 1)
        .unwrap()
        .modeled_seconds;
    let t8 = run_compiled(&compiled, &meiko_cs2(), 8)
        .unwrap()
        .modeled_seconds;
    assert!(t8 < t1 / 3.0, "t1={t1} t8={t8}");
}

#[test]
fn interpreter_slower_than_compiled_modeled() {
    let src = "n = 50;\ns = 0;\nfor i = 1:n\ns = s + i * i;\nend";
    let opts = EngineOptions::default();
    let interp = run_interpreter(src, &workstation(), &opts).unwrap();
    let matcom = run_engine(&mut MatcomEngine::new(opts.clone()), src, &workstation(), 1).unwrap();
    let compiled = compile_str(src).unwrap();
    let otter = run_compiled(&compiled, &workstation(), 1).unwrap();
    assert!(interp.modeled_seconds > matcom.modeled_seconds);
    assert!(matcom.modeled_seconds > otter.modeled_seconds * 0.1);
    assert_eq!(interp.scalar("s"), otter.scalar("s"));
}

#[test]
fn cluster_flattens_on_fine_grain_code() {
    // O(n) work with reductions every iteration: the Ethernet cluster
    // should benefit far less than the Meiko.
    let src = "n = 2000;\nv = ones(n, 1);\ns = 0;\nfor it = 1:5\ns = s + sum(v);\nend";
    let compiled = compile_str(src).unwrap();
    let meiko_1 = run_compiled(&compiled, &meiko_cs2(), 1)
        .unwrap()
        .modeled_seconds;
    let meiko_8 = run_compiled(&compiled, &meiko_cs2(), 8)
        .unwrap()
        .modeled_seconds;
    let cl_1 = run_compiled(&compiled, &sparc20_cluster(), 1)
        .unwrap()
        .modeled_seconds;
    let cl_8 = run_compiled(&compiled, &sparc20_cluster(), 8)
        .unwrap()
        .modeled_seconds;
    let meiko_speedup = meiko_1 / meiko_8;
    let cluster_speedup = cl_1 / cl_8;
    assert!(
        meiko_speedup > cluster_speedup,
        "meiko {meiko_speedup} vs cluster {cluster_speedup}"
    );
}

#[test]
fn smp_limits_enforced() {
    let compiled = compile_str("x = 1;").unwrap();
    assert!(run_compiled(&compiled, &enterprise_smp(), 8).is_ok());
}

#[test]
fn if_elseif_chain_compiled() {
    for (x, expect) in [(-3.0, -1.0), (0.0, 0.0), (9.0, 1.0)] {
        let src = format!("x = {x};\nif x < 0\ny = -1;\nelseif x == 0\ny = 0;\nelse\ny = 1;\nend");
        let run = otter(&src, 2);
        assert_eq!(run.scalar("y"), Some(expect), "x={x}");
    }
}

#[test]
fn load_through_pipeline() {
    let dir = std::env::temp_dir().join(format!("otter_core_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let m = Dense::from_vec(4, 3, (0..12).map(f64::from).collect());
    otter_rt::io::write_matrix_file(&dir.join("input.dat"), &m).unwrap();
    let src = "d = load('input.dat');\ns = sum(sum(d));";
    let opts = EngineOptions {
        data_dir: Some(dir.clone()),
        ..Default::default()
    };
    let run = run_otter(src, &meiko_cs2(), 3, &opts).unwrap();
    assert_eq!(run.scalar("s"), Some(66.0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn matlab_column_reduction_conventions() {
    // max/min/prod/any/all follow sum's vector-vs-matrix conventions
    // in both engines.
    let src = "\
a = [1, 5; 3, 2; 4, 9];
cmax = max(a);
cmin = min(a);
cprod = prod(a);
cany = any(a - 1);
call_ = all(a - 1);
v = [2, 0, 7];
vmax = max(v);
vprod = prod(v);
vany = any(v);
vall = all(v);
s1 = sum(cmax) + sum(cmin) + sum(cprod);
s2 = sum(cany) + sum(call_);
";
    check_matches_interpreter(src, &["vmax", "vprod", "vany", "vall", "s1", "s2"]);
    let run = otter(src, 3);
    assert_eq!(run.matrix("cmax").unwrap().data(), &[4.0, 9.0]);
    assert_eq!(run.matrix("cmin").unwrap().data(), &[1.0, 2.0]);
    assert_eq!(run.matrix("cprod").unwrap().data(), &[12.0, 90.0]);
    assert_eq!(run.scalar("vmax"), Some(7.0));
    assert_eq!(run.scalar("vprod"), Some(0.0));
    assert_eq!(run.scalar("vany"), Some(1.0));
    assert_eq!(run.scalar("vall"), Some(0.0));
}

#[test]
fn any_all_on_predicates() {
    let src = "\
v = 1:10;
bigv = any(v > 8);
allpos = all(v > 0);
nonebig = any(v > 100);
";
    check_matches_interpreter(src, &["bigv", "allpos", "nonebig"]);
    let run = otter(src, 4);
    assert_eq!(run.scalar("bigv"), Some(1.0));
    assert_eq!(run.scalar("allpos"), Some(1.0));
    assert_eq!(run.scalar("nonebig"), Some(0.0));
}

#[test]
fn strided_indexing_compiled() {
    let src = "\
v = 1:20;
odds = v(1:2:end);
rev = v(end:-3:1);
s1 = sum(odds);
s2 = sum(rev);
";
    check_matches_interpreter(src, &["odds", "rev", "s1", "s2"]);
}

#[test]
fn scalar_slice_fills_compiled() {
    let src = "\
a = ones(5, 4);
a(2, :) = 0;
a(:, 3) = 7;
v = 1:10;
v(3:6) = -1;
w = 1:10;
w(4:7) = [40, 50, 60, 70];
s = sum(sum(a)) + sum(v) + sum(w);
";
    check_matches_interpreter(src, &["a", "v", "w", "s"]);
}

#[test]
fn linear_indexing_on_matrices_is_column_major() {
    let src = "\
a = [1, 4; 2, 5; 3, 6];
x = a(2);
y = a(5);
a(6) = 99;
s = sum(sum(a));
";
    check_matches_interpreter(src, &["x", "y", "s"]);
    let run = otter(src, 3);
    assert_eq!(run.scalar("x"), Some(2.0), "column-major linear index");
    assert_eq!(run.scalar("y"), Some(5.0));
}

#[test]
fn nested_function_calls_compiled() {
    let m = MapProvider::new()
        .with("double_it", "function y = double_it(x)\ny = x * 2;\n")
        .with(
            "quadruple",
            "function y = quadruple(x)\ny = double_it(double_it(x));\n",
        );
    let src = "v = ones(5, 1);\nw = quadruple(v);\ns = sum(w);";
    let opts = EngineOptions {
        m_files: Some(m),
        ..Default::default()
    };
    let run = run_otter(src, &meiko_cs2(), 3, &opts).unwrap();
    assert_eq!(run.scalar("s"), Some(20.0));
}

#[test]
fn function_with_control_flow_compiled() {
    let m = MapProvider::new().with(
        "clampv",
        "function y = clampv(v, lo, hi)\ny = min(max(v, lo), hi);\n",
    );
    let src = "v = -3:3;\nw = clampv(v, -1, 2);\ns = sum(w);";
    let opts = EngineOptions {
        m_files: Some(m.clone()),
        ..Default::default()
    };
    let base = run_interpreter(src, &workstation(), &opts).unwrap();
    let run = run_otter(src, &meiko_cs2(), 4, &opts).unwrap();
    assert_eq!(base.scalar("s"), run.scalar("s"));
    assert_eq!(run.scalar("s"), Some(2.0)); // -1 + -1 + -1 + 0 + 1 + 2 + 2
}

#[test]
fn deeply_nested_control_flow() {
    let src = "\
total = 0;
for i = 1:4
  for j = 1:4
    if mod(i + j, 2) == 0
      for k = 1:3
        if k == 2
          continue;
        end
        total = total + i * 100 + j * 10 + k;
      end
    else
      while total < 0
        total = total + 1;
      end
    end
  end
end
";
    check_matches_interpreter(src, &["total"]);
}

#[test]
fn function_called_with_two_shapes() {
    // The signature must widen to cover both call sites (a bug the
    // property tests caught: re-inference previously used only the
    // second call's shapes).
    let m = MapProvider::new().with("total", "function s = total(v)\ns = sum(v);\n");
    let src = "a = total(ones(6, 1));\nb = total(ones(9, 1));\nc = a + b;";
    let opts = EngineOptions {
        m_files: Some(m),
        ..Default::default()
    };
    let run = run_otter(src, &meiko_cs2(), 3, &opts).unwrap();
    assert_eq!(run.scalar("c"), Some(15.0));
}

#[test]
fn while_with_reduction_condition_through_pipeline() {
    // Regression for the DCE-vs-while-condition liveness bug: the
    // pre-block reduction feeding the loop test must survive pass 6.
    let src = "\
n = 64;
r = ones(n, 1);
it = 0;
while norm(r) > 0.04 * n
  r = r / 2;
  it = it + 1;
end
final = norm(r);
";
    check_matches_interpreter(src, &["it", "final"]);
    let run = otter(src, 4);
    assert!(run.scalar("it").unwrap() >= 1.0);
}

#[test]
fn per_rank_memory_shrinks_with_p() {
    // Paper §7: "a parallel computer may have far more primary memory
    // than an individual workstation" — each rank holds ~1/p of every
    // matrix.
    let src =
        "n = 128;\nu = (1:n) / n;\nA = u' * u + n * eye(n);\nb = A * ones(n, 1);\ns = norm(b);";
    let compiled = compile_str(src).unwrap();
    let p1 = run_compiled(&compiled, &meiko_cs2(), 1)
        .unwrap()
        .peak_rank_bytes;
    let p8 = run_compiled(&compiled, &meiko_cs2(), 8)
        .unwrap()
        .peak_rank_bytes;
    let ratio = p1 as f64 / p8 as f64;
    assert!(
        (6.0..10.0).contains(&ratio),
        "peak per-rank memory must scale ~1/p: p1={p1} p8={p8} ratio={ratio}"
    );
}

#[test]
fn temporaries_are_freed() {
    // Sequential temporary-heavy code must not accumulate temps: peak
    // stays near one live matrix, not the sum of all intermediates.
    let n = 64usize;
    let src = format!(
        "n = {n};\na = ones(n, n);\nfor it = 1:10\na = a + ones(n, n) * 0.1;\nend\ns = sum(sum(a));"
    );
    let compiled = compile_str(&src).unwrap();
    assert!(
        compiled.ir_text().contains("free "),
        "frees must be inserted:\n{}",
        compiled.ir_text()
    );
    let run = run_compiled(&compiled, &meiko_cs2(), 1).unwrap();
    let one_matrix = n * n * 8;
    assert!(
        run.peak_rank_bytes < 4 * one_matrix,
        "peak {} should be a few matrices, not 11+ ({})",
        run.peak_rank_bytes,
        11 * one_matrix
    );
}

#[test]
fn engine_reports_are_consistent() {
    // All three engines agree numerically and report sane counters on
    // the same script.
    let src = "n = 16;\na = ones(n, n);\nb = a * a;\ns = sum(sum(b));";
    let mut reports = Vec::new();
    for mut e in standard_engines(&EngineOptions::default()) {
        let r = run_engine(e.as_mut(), src, &meiko_cs2(), 4).unwrap();
        assert_eq!(r.scalar("s"), Some((16 * 16 * 16) as f64), "{}", r.engine);
        assert!(r.total_ops() > 0, "{}: op_counts empty", r.engine);
        assert!(r.modeled_seconds > 0.0, "{}", r.engine);
        assert!(!r.per_rank.is_empty(), "{}", r.engine);
        reports.push(r);
    }
    let otter = reports.iter().find(|r| r.engine == "otter").unwrap();
    assert!(otter.messages > 0, "matmul on 4 ranks must communicate");
    assert!(otter.bytes > 0);
    assert_eq!(otter.per_rank.len(), 4);
    let per_rank_total: u64 = otter.per_rank.iter().map(|r| r.messages).sum();
    assert_eq!(per_rank_total, otter.messages, "per-rank sums to total");
    for r in &reports {
        if r.engine != "otter" {
            assert_eq!(r.messages, 0, "{} is sequential", r.engine);
            assert_eq!(r.per_rank.len(), 1);
        }
    }
}

#[test]
fn otter_counts_per_ir_opcode() {
    let src = "n = 8;\na = ones(n, n);\nb = a * a;\ns = sum(sum(b));";
    let compiled = compile_str(src).unwrap();
    let run = run_compiled(&compiled, &meiko_cs2(), 2).unwrap();
    assert!(
        run.op_counts.get("matmul").copied().unwrap_or(0) >= 1,
        "{:?}",
        run.op_counts
    );
    assert!(
        run.op_counts.get("init-matrix").copied().unwrap_or(0) >= 1,
        "{:?}",
        run.op_counts
    );
}

#[test]
fn peak_temp_bytes_reported() {
    let src = "n = 32;\na = ones(n, n);\nb = a + a;\ns = sum(sum(b));";
    let compiled = compile_str(src).unwrap();
    let run = run_compiled(&compiled, &meiko_cs2(), 1).unwrap();
    // At least one full n×n matrix was live at peak.
    assert!(
        run.peak_temp_bytes >= 32 * 32 * 8,
        "peak_temp={}",
        run.peak_temp_bytes
    );
    assert!(run.peak_temp_bytes >= run.peak_rank_bytes / 2);
}

#[test]
fn traced_engines_emit_statement_and_phase_events() {
    use otter_trace::{EventKind, MemorySink, TraceSink};
    use std::sync::Arc;
    let src = "n = 16;\na = ones(n, n);\nb = a * a;\ns = sum(sum(b));";

    // Sequential engines (interpreter + matcom) span every MATLAB
    // statement on rank 0.
    for style in ["interpreter", "matcom"] {
        let sink = Arc::new(MemorySink::new());
        let opts = EngineOptions::builder().trace(Arc::clone(&sink)).build();
        let mut engine: Box<dyn Engine> = if style == "interpreter" {
            Box::new(InterpreterEngine::new(opts))
        } else {
            Box::new(MatcomEngine::new(opts))
        };
        run_engine(engine.as_mut(), src, &meiko_cs2(), 1).unwrap();
        let events = sink.snapshot().unwrap();
        assert!(!events.is_empty(), "{style}: no events");
        assert!(
            events
                .iter()
                .all(|e| e.rank == 0 && matches!(e.kind, EventKind::Statement { .. })),
            "{style}: sequential traces are rank-0 statement spans"
        );
        // Four top-level statements, executed once each.
        assert_eq!(events.len(), 4, "{style}");
    }

    // The SPMD engine layers IR-statement spans, runtime phases, and
    // collective/primitive events.
    let sink = Arc::new(MemorySink::new());
    let opts = EngineOptions::builder().trace(Arc::clone(&sink)).build();
    run_engine(&mut OtterEngine::new(opts), src, &meiko_cs2(), 4).unwrap();
    let events = sink.snapshot().unwrap();
    let has = |pred: &dyn Fn(&otter_trace::TraceEvent) -> bool| events.iter().any(pred);
    assert!(has(&|e| matches!(e.kind, EventKind::Statement { .. })));
    assert!(has(
        &|e| matches!(e.kind, EventKind::Phase { name } if name == "ML_matrix_multiply")
    ));
    assert!(has(&|e| matches!(e.kind, EventKind::Collective { .. })));
    assert!(has(&|e| matches!(e.kind, EventKind::Send { .. })));
}

#[test]
fn disabled_tracing_changes_nothing() {
    use otter_trace::{MemorySink, TraceSink};
    use std::sync::Arc;
    // A traced run and an untraced run of the same program model the
    // exact same time and counters: tracing is observation only.
    let src = "n = 16;\na = ones(n, n);\nb = a * a;\ns = sum(sum(b));";
    let plain = run_engine(
        &mut OtterEngine::new(EngineOptions::default()),
        src,
        &meiko_cs2(),
        4,
    )
    .unwrap();
    let sink = Arc::new(MemorySink::new());
    let opts = EngineOptions::builder().trace(Arc::clone(&sink)).build();
    let traced = run_engine(&mut OtterEngine::new(opts), src, &meiko_cs2(), 4).unwrap();
    assert_eq!(plain.modeled_seconds, traced.modeled_seconds);
    assert_eq!(plain.messages, traced.messages);
    assert_eq!(plain.bytes, traced.bytes);
    assert!(plain.critical_path.is_none());
    assert!(traced.critical_path.is_some());
    assert!(sink.snapshot().unwrap().len() > 100);
}
