//! Built-in functions of the interpreter.
//!
//! The paper is explicit that Otter implements "a small number of
//! MATLAB functions" — the ones its four benchmark scripts need. The
//! interpreter implements the same set (plus `disp`/`load` plumbing) so
//! it can serve as the oracle for every compiled script.

use crate::error::{InterpError, Result};
use crate::interp::Interp;
use crate::value::Value;
use otter_frontend::Span;
use otter_machine::OpClass;
use otter_rt::Dense;

impl Interp {
    /// Try to dispatch `name` as a builtin. `Ok(None)` means "not a
    /// builtin" (the caller then looks for a user M-file function).
    pub(crate) fn call_builtin(
        &mut self,
        name: &str,
        argv: &[Value],
        _nout: usize,
        span: Span,
    ) -> Result<Option<Vec<Value>>> {
        let one = |v: Value| Ok(Some(vec![v]));
        match name {
            // ---- constructors ----
            "zeros" | "ones" | "rand" => {
                let (r, c) = self.dims_from_args(argv, span)?;
                let m = match name {
                    "zeros" => Dense::zeros(r, c),
                    "ones" => Dense::ones(r, c),
                    _ => {
                        let data = (0..r * c).map(|_| self.rng.gen_range(0.0..1.0)).collect();
                        Dense::from_vec(r, c, data)
                    }
                };
                self.meter.op(OpClass::Add, m.len());
                one(Value::Matrix(m).normalized())
            }
            "eye" => {
                let n = self.arg_scalar(argv, 0, name, span)? as usize;
                self.meter.op(OpClass::Add, n * n);
                one(Value::Matrix(Dense::eye(n)))
            }
            "linspace" => {
                let a = self.arg_scalar(argv, 0, name, span)?;
                let b = self.arg_scalar(argv, 1, name, span)?;
                let n = if argv.len() > 2 {
                    self.arg_scalar(argv, 2, name, span)? as usize
                } else {
                    100
                };
                if n < 2 {
                    return one(Value::Matrix(Dense::row_vector(&[b])));
                }
                let step = (b - a) / (n - 1) as f64;
                let data: Vec<f64> = (0..n).map(|i| a + step * i as f64).collect();
                self.meter.op(OpClass::Add, n);
                one(Value::Matrix(Dense::row_vector(&data)))
            }

            // ---- shape queries ----
            "size" => {
                let v = self.arg(argv, 0, name, span)?;
                let (r, c) = v.size();
                self.meter.op(OpClass::Add, 1);
                if argv.len() == 2 {
                    let d = self.arg_scalar(argv, 1, name, span)?;
                    let out = if d == 1.0 { r } else { c };
                    return one(Value::Scalar(out as f64));
                }
                Ok(Some(vec![Value::Scalar(r as f64), Value::Scalar(c as f64)]))
            }
            "length" => {
                let v = self.arg(argv, 0, name, span)?;
                let (r, c) = v.size();
                self.meter.op(OpClass::Add, 1);
                one(Value::Scalar(r.max(c) as f64))
            }
            "numel" => {
                let v = self.arg(argv, 0, name, span)?;
                self.meter.op(OpClass::Add, 1);
                one(Value::Scalar(v.numel() as f64))
            }

            // ---- element-wise math ----
            "abs" => self.map_builtin(argv, name, span, OpClass::Add, f64::abs),
            "sqrt" => self.map_builtin(argv, name, span, OpClass::Div, f64::sqrt),
            "sin" => self.map_builtin(argv, name, span, OpClass::Transcendental, f64::sin),
            "cos" => self.map_builtin(argv, name, span, OpClass::Transcendental, f64::cos),
            "tan" => self.map_builtin(argv, name, span, OpClass::Transcendental, f64::tan),
            "exp" => self.map_builtin(argv, name, span, OpClass::Transcendental, f64::exp),
            "log" => self.map_builtin(argv, name, span, OpClass::Transcendental, f64::ln),
            "log2" => self.map_builtin(argv, name, span, OpClass::Transcendental, f64::log2),
            "floor" => self.map_builtin(argv, name, span, OpClass::Add, f64::floor),
            "ceil" => self.map_builtin(argv, name, span, OpClass::Add, f64::ceil),
            "round" => self.map_builtin(argv, name, span, OpClass::Add, f64::round),
            "sign" => self.map_builtin(argv, name, span, OpClass::Add, f64::signum),
            "mod" => {
                let a = self.arg(argv, 0, name, span)?.clone();
                let b = self.arg(argv, 1, name, span)?.clone();
                let r = self.apply_binary_fn(a, b, OpClass::Div, |x, y| x.rem_euclid(y), span)?;
                one(r)
            }
            "rem" => {
                let a = self.arg(argv, 0, name, span)?.clone();
                let b = self.arg(argv, 1, name, span)?.clone();
                let r = self.apply_binary_fn(a, b, OpClass::Div, |x, y| x % y, span)?;
                one(r)
            }

            // ---- reductions ----
            "sum" => {
                let m = self.arg_matrix(argv, 0, name, span)?;
                self.meter.op(OpClass::Add, m.len());
                one(Value::Matrix(m.sum()).normalized())
            }
            "mean" => {
                let m = self.arg_matrix(argv, 0, name, span)?;
                self.meter.op(OpClass::Add, m.len());
                one(Value::Matrix(m.mean()).normalized())
            }
            "max" | "min" => {
                if argv.len() == 2 {
                    let a = self.arg(argv, 0, name, span)?.clone();
                    let b = self.arg(argv, 1, name, span)?.clone();
                    let f = if name == "max" { f64::max } else { f64::min };
                    let r = self.apply_binary_fn(a, b, OpClass::Add, f, span)?;
                    return one(r);
                }
                let m = self.arg_matrix(argv, 0, name, span)?;
                if m.is_empty() {
                    return Err(InterpError::new(format!("{name} of empty matrix"), span));
                }
                self.meter.op(OpClass::Add, m.len());
                // MATLAB convention: vectors reduce to a scalar,
                // matrices to per-column extrema.
                let v = if name == "max" { m.max() } else { m.min() };
                one(Value::Matrix(v).normalized())
            }
            "prod" => {
                let m = self.arg_matrix(argv, 0, name, span)?;
                self.meter.op(OpClass::Mul, m.len());
                one(Value::Matrix(m.prod()).normalized())
            }
            "any" => {
                let m = self.arg_matrix(argv, 0, name, span)?;
                self.meter.op(OpClass::Add, m.len());
                one(Value::Matrix(m.any()).normalized())
            }
            "all" => {
                let m = self.arg_matrix(argv, 0, name, span)?;
                self.meter.op(OpClass::Add, m.len());
                one(Value::Matrix(m.all()).normalized())
            }
            "norm" => {
                let m = self.arg_matrix(argv, 0, name, span)?;
                self.meter.op(OpClass::Mul, m.len());
                one(Value::Scalar(m.norm2()))
            }
            "dot" => {
                let a = self.arg_matrix(argv, 0, name, span)?;
                let b = self.arg_matrix(argv, 1, name, span)?;
                if a.len() != b.len() {
                    return Err(InterpError::new("dot length mismatch", span));
                }
                self.meter.op(OpClass::Mul, a.len());
                one(Value::Scalar(a.dot(&b)))
            }
            "trapz" => {
                let a = self.arg_matrix(argv, 0, name, span)?;
                self.meter.op(OpClass::Mul, a.len());
                if argv.len() == 2 {
                    let y = self.arg_matrix(argv, 1, name, span)?;
                    one(Value::Scalar(Dense::trapz_xy(&a, &y)))
                } else {
                    one(Value::Scalar(a.trapz()))
                }
            }
            // The ocean script's 2-argument trapezoid rule.
            "trapz2" => {
                let x = self.arg_matrix(argv, 0, name, span)?;
                let y = self.arg_matrix(argv, 1, name, span)?;
                self.meter.op(OpClass::Mul, x.len());
                one(Value::Scalar(Dense::trapz_xy(&x, &y)))
            }

            // ---- structural ----
            "circshift" => {
                let v = self.arg_matrix(argv, 0, name, span)?;
                let k = self.arg_scalar(argv, 1, name, span)? as i64;
                if !v.is_vector() {
                    return Err(InterpError::new("circshift supports vectors only", span));
                }
                self.meter.op(OpClass::Add, v.len());
                one(Value::Matrix(v.circshift(k)))
            }
            "repmat" => {
                let m = self.arg_matrix(argv, 0, name, span)?;
                let rr = self.arg_scalar(argv, 1, name, span)? as usize;
                let cc = self.arg_scalar(argv, 2, name, span)? as usize;
                let mut row = m.clone();
                for _ in 1..cc {
                    row = row.hcat(&m);
                }
                let mut out = row.clone();
                for _ in 1..rr {
                    out = out.vcat(&row);
                }
                self.meter.op(OpClass::Add, out.len());
                one(Value::Matrix(out))
            }

            // ---- I/O ----
            "disp" => {
                let v = self.arg(argv, 0, name, span)?.clone();
                use std::fmt::Write;
                let _ = writeln!(self.output, "{v}");
                Ok(Some(vec![]))
            }
            "load" => {
                let Value::Str(fname) = self.arg(argv, 0, name, span)? else {
                    return Err(InterpError::new("load expects a file-name string", span));
                };
                let path = match &self.data_dir {
                    Some(d) => d.join(fname),
                    None => std::path::PathBuf::from(fname),
                };
                let m = otter_rt::io::read_matrix_file(&path)
                    .map_err(|e| InterpError::new(format!("load: {e}"), span))?;
                self.meter.op(OpClass::Add, m.len());
                one(Value::Matrix(m).normalized())
            }

            _ => Ok(None),
        }
    }

    // ---- argument helpers ----

    fn arg<'a>(&self, argv: &'a [Value], i: usize, name: &str, span: Span) -> Result<&'a Value> {
        argv.get(i).ok_or_else(|| {
            InterpError::new(
                format!("`{name}` needs at least {} argument(s)", i + 1),
                span,
            )
        })
    }

    fn arg_scalar(&self, argv: &[Value], i: usize, name: &str, span: Span) -> Result<f64> {
        let v = self.arg(argv, i, name, span)?;
        v.as_scalar().ok_or_else(|| {
            InterpError::new(
                format!("`{name}` argument {} must be a scalar", i + 1),
                span,
            )
        })
    }

    fn arg_matrix(&self, argv: &[Value], i: usize, name: &str, span: Span) -> Result<Dense> {
        let v = self.arg(argv, i, name, span)?;
        v.to_matrix().ok_or_else(|| {
            InterpError::new(format!("`{name}` argument {} must be numeric", i + 1), span)
        })
    }

    fn dims_from_args(&self, argv: &[Value], span: Span) -> Result<(usize, usize)> {
        match argv.len() {
            0 => Ok((1, 1)),
            1 => {
                let n = self.arg_scalar(argv, 0, "zeros", span)? as usize;
                Ok((n, n))
            }
            _ => {
                let r = self.arg_scalar(argv, 0, "zeros", span)? as usize;
                let c = self.arg_scalar(argv, 1, "zeros", span)? as usize;
                Ok((r, c))
            }
        }
    }

    fn map_builtin(
        &mut self,
        argv: &[Value],
        name: &str,
        span: Span,
        class: OpClass,
        f: impl Fn(f64) -> f64,
    ) -> Result<Option<Vec<Value>>> {
        let v = self.arg(argv, 0, name, span)?;
        let out = match v {
            Value::Scalar(x) => {
                self.meter.op(class, 1);
                Value::Scalar(f(*x))
            }
            Value::Matrix(m) => {
                self.meter.op(class, m.len());
                Value::Matrix(m.map(f))
            }
            Value::Str(_) => return Err(InterpError::new(format!("`{name}` of a string"), span)),
        };
        Ok(Some(vec![out]))
    }

    /// Element-wise two-argument builtin with scalar broadcast.
    fn apply_binary_fn(
        &mut self,
        a: Value,
        b: Value,
        class: OpClass,
        f: impl Fn(f64, f64) -> f64,
        span: Span,
    ) -> Result<Value> {
        match (a, b) {
            (Value::Scalar(x), Value::Scalar(y)) => {
                self.meter.op(class, 1);
                Ok(Value::Scalar(f(x, y)))
            }
            (Value::Scalar(x), Value::Matrix(m)) => {
                self.meter.op(class, m.len());
                Ok(Value::Matrix(m.map(|y| f(x, y))))
            }
            (Value::Matrix(m), Value::Scalar(y)) => {
                self.meter.op(class, m.len());
                Ok(Value::Matrix(m.map(|x| f(x, y))))
            }
            (Value::Matrix(ma), Value::Matrix(mb)) => {
                if ma.rows() != mb.rows() || ma.cols() != mb.cols() {
                    return Err(InterpError::new("shape mismatch", span));
                }
                self.meter.op(class, ma.len());
                Ok(Value::Matrix(ma.zip(&mb, f)))
            }
            _ => Err(InterpError::new("numeric arguments required", span)),
        }
    }
}
