//! # otter-frontend
//!
//! Front end of the Otter parallel MATLAB compiler reproduction:
//! scanner, recursive-descent parser, AST, pretty-printer, and M-file
//! source management.
//!
//! This is pass 1 of the paper's multi-pass pipeline ("Preliminary
//! Results from a Parallel MATLAB Compiler", Quinn et al., IPPS 1998,
//! §3): build a parse tree for the initial script and augment it into
//! an abstract syntax tree. The paper's documented restriction is
//! preserved: matrix-literal elements must be comma-delimited.
//!
//! ```
//! use otter_frontend::parser::parse;
//!
//! let file = parse("a = b * c + d(i,j);").unwrap();
//! assert_eq!(file.script.len(), 1);
//! ```

pub mod ast;
pub mod diag;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod source;
pub mod span;
pub mod token;

pub use ast::{
    BinOp, Block, Expr, ExprKind, Function, LValue, Program, SourceFile, Stmt, StmtKind,
    TransposeOp, UnOp,
};
pub use diag::{Diagnostic, Severity};
pub use error::{FrontendError, FrontendErrorKind};
pub use parser::{parse, parse_expr};
pub use source::{DirProvider, EmptyProvider, MapProvider, SourceProvider};
pub use span::Span;
