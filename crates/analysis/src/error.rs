//! Analysis diagnostics.

use otter_frontend::Span;
use std::fmt;

/// An error raised by resolution, SSA construction, or inference.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisError {
    pub message: String,
    pub span: Span,
}

impl AnalysisError {
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        AnalysisError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_dummy() {
            write!(f, "analysis error: {}", self.message)
        } else {
            write!(f, "analysis error at {}: {}", self.span, self.message)
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<AnalysisError> for otter_frontend::Diagnostic {
    fn from(e: AnalysisError) -> Self {
        otter_frontend::Diagnostic::new("analysis", e.message).with_span(e.span)
    }
}

pub type Result<T> = std::result::Result<T, AnalysisError>;
