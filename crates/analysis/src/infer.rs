//! Pass 3b — type, rank, and shape inference (paper §3).
//!
//! "Once the program is in static single assignment form, a static
//! inference mechanism extracts information about variables from
//! input files, constants, operators, and functions."
//!
//! Abstract interpretation over the SSA-renamed AST: the abstract
//! value is [`VarTy`] (base type × rank × shape × known-constant).
//! Loops run to a fixpoint; `if` joins branch environments. Constant
//! propagation of integer scalars is what turns `n = 2048;
//! b = zeros(n, 1)` into a static shape. Sample data files (paper:
//! "a sample data file must be present") supply the type and shape of
//! `load`ed variables.
//!
//! Like the paper's compiler, functions are *not* inlined; each M-file
//! function gets one inferred signature, fixed by its first call site
//! and required to be consistent with every later one.

use crate::builtins::constant_value;
use crate::error::{AnalysisError, Result};
use crate::types::{BaseTy, Dim, RankTy, Shape, VarTy};
use otter_frontend::ast::*;
use otter_frontend::Span;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Inference options.
#[derive(Debug, Clone, Default)]
pub struct InferOptions {
    /// Directory sample data files are read from (for `load`).
    pub data_dir: Option<PathBuf>,
}

/// Types of every variable in one scope.
pub type ScopeTypes = BTreeMap<String, VarTy>;

/// An inferred function signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSig {
    pub params: Vec<VarTy>,
    pub outs: Vec<VarTy>,
    /// All local variable types (for codegen declarations).
    pub vars: ScopeTypes,
}

/// Complete inference result for a program.
#[derive(Debug, Clone, Default)]
pub struct Inference {
    pub script_vars: ScopeTypes,
    pub functions: BTreeMap<String, FuncSig>,
}

impl Inference {
    /// Type of a script variable.
    pub fn script_var(&self, name: &str) -> Option<&VarTy> {
        self.script_vars.get(name)
    }
}

struct Ctx<'p> {
    program: &'p Program,
    opts: InferOptions,
    sigs: BTreeMap<String, FuncSig>,
    in_progress: Vec<String>,
}

/// Infer types for a resolved, SSA-renamed program.
pub fn infer(program: &Program, opts: InferOptions) -> Result<Inference> {
    let mut ctx = Ctx {
        program,
        opts,
        sigs: BTreeMap::new(),
        in_progress: Vec::new(),
    };
    let mut env: ScopeTypes = BTreeMap::new();
    infer_block(&program.script, &mut env, &mut ctx)?;
    Ok(Inference {
        script_vars: env,
        functions: ctx.sigs,
    })
}

const MAX_FIXPOINT_ITERS: usize = 64;

fn infer_block(block: &Block, env: &mut ScopeTypes, ctx: &mut Ctx) -> Result<()> {
    for stmt in block {
        infer_stmt(stmt, env, ctx)?;
    }
    Ok(())
}

fn bind(env: &mut ScopeTypes, name: &str, ty: VarTy, span: Span) -> Result<()> {
    let cur = env.get(name).copied().unwrap_or(VarTy::BOTTOM);
    let joined = cur.join(ty).map_err(|_| {
        AnalysisError::new(
            format!(
                "variable `{name}` changes rank across control flow ({cur} vs {ty}); \
                 give the two uses different names"
            ),
            span,
        )
    })?;
    env.insert(name.to_string(), joined);
    Ok(())
}

fn infer_stmt(stmt: &Stmt, env: &mut ScopeTypes, ctx: &mut Ctx) -> Result<()> {
    match &stmt.kind {
        StmtKind::Expr(e) => {
            let ty = infer_expr(e, env, ctx)?;
            if let Some(ty) = ty {
                bind(env, "ans", ty, stmt.span)?;
            }
            Ok(())
        }
        StmtKind::Assign { lhs, rhs } => {
            let ty = require_value(infer_expr(rhs, env, ctx)?, rhs.span)?;
            match &lhs.indices {
                None => bind(env, &lhs.name, ty, stmt.span),
                Some(indices) => {
                    let Some(base) = env.get(&lhs.name).copied() else {
                        return Err(AnalysisError::new(
                            format!(
                                "indexed assignment to `{}` before it is allocated; \
                                 preallocate with zeros()/ones() (Otter restriction)",
                                lhs.name
                            ),
                            stmt.span,
                        ));
                    };
                    if base.rank != RankTy::Matrix {
                        return Err(AnalysisError::new(
                            format!("cannot index-assign into scalar `{}`", lhs.name),
                            stmt.span,
                        ));
                    }
                    // Classify the index forms to type-check the value.
                    let idx_tys = indices
                        .iter()
                        .map(|ix| infer_index_arg(ix, env, ctx))
                        .collect::<Result<Vec<_>>>()?;
                    check_indexed_store(&idx_tys, &ty, stmt.span)?;
                    let mut updated = base;
                    updated.base = updated.base.join(ty.base);
                    updated.konst = None;
                    env.insert(lhs.name.clone(), updated);
                    Ok(())
                }
            }
        }
        StmtKind::MultiAssign { lhs, rhs } => {
            let ExprKind::Call { callee, args } = &rhs.kind else {
                return Err(AnalysisError::new(
                    "multi-assignment requires a function call on the right",
                    rhs.span,
                ));
            };
            let outs = infer_call_multi(callee, args, lhs.len(), rhs.span, env, ctx)?;
            if outs.len() < lhs.len() {
                return Err(AnalysisError::new(
                    format!(
                        "`{callee}` returns {} values, {} requested",
                        outs.len(),
                        lhs.len()
                    ),
                    rhs.span,
                ));
            }
            for (lv, ty) in lhs.iter().zip(outs) {
                if lv.indices.is_some() {
                    return Err(AnalysisError::new(
                        "indexed targets in multi-assignment are unsupported",
                        lv.span,
                    ));
                }
                bind(env, &lv.name, ty, stmt.span)?;
            }
            Ok(())
        }
        StmtKind::If { arms, else_body } => {
            let mut results: Vec<ScopeTypes> = Vec::new();
            for (cond, body) in arms {
                let cty = require_value(infer_expr(cond, env, ctx)?, cond.span)?;
                require_scalar_cond(&cty, cond.span)?;
                let mut branch_env = env.clone();
                infer_block(body, &mut branch_env, ctx)?;
                results.push(branch_env);
            }
            match else_body {
                Some(body) => {
                    let mut branch_env = env.clone();
                    infer_block(body, &mut branch_env, ctx)?;
                    results.push(branch_env);
                }
                None => results.push(env.clone()),
            }
            // Join all branch environments.
            let mut joined = results.remove(0);
            for r in results {
                join_envs(&mut joined, &r, stmt.span)?;
            }
            *env = joined;
            Ok(())
        }
        StmtKind::While { cond, body } => {
            for _ in 0..MAX_FIXPOINT_ITERS {
                let before = env.clone();
                let cty = require_value(infer_expr(cond, env, ctx)?, cond.span)?;
                require_scalar_cond(&cty, cond.span)?;
                let mut body_env = env.clone();
                infer_block(body, &mut body_env, ctx)?;
                join_envs(env, &body_env, stmt.span)?;
                if *env == before {
                    return Ok(());
                }
            }
            Err(AnalysisError::new(
                "type inference did not converge in while loop",
                stmt.span,
            ))
        }
        StmtKind::For { var, iter, body } => {
            let ity = require_value(infer_expr(iter, env, ctx)?, iter.span)?;
            let base = if ity.base == BaseTy::Bottom {
                BaseTy::Integer
            } else {
                ity.base
            };
            bind(env, var, VarTy::scalar(base), stmt.span)?;
            for _ in 0..MAX_FIXPOINT_ITERS {
                let before = env.clone();
                let mut body_env = env.clone();
                infer_block(body, &mut body_env, ctx)?;
                join_envs(env, &body_env, stmt.span)?;
                if *env == before {
                    return Ok(());
                }
            }
            Err(AnalysisError::new(
                "type inference did not converge in for loop",
                stmt.span,
            ))
        }
        StmtKind::Global(names) => {
            for n in names {
                env.entry(n.clone()).or_insert(VarTy::scalar(BaseTy::Real));
            }
            Ok(())
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Return => Ok(()),
    }
}

fn join_envs(dst: &mut ScopeTypes, src: &ScopeTypes, span: Span) -> Result<()> {
    for (name, ty) in src {
        let cur = dst.get(name).copied().unwrap_or(VarTy::BOTTOM);
        let joined = cur.join(*ty).map_err(|_| {
            AnalysisError::new(
                format!("variable `{name}` changes rank across control flow ({cur} vs {ty})"),
                span,
            )
        })?;
        dst.insert(name.clone(), joined);
    }
    Ok(())
}

fn require_value(v: Option<VarTy>, span: Span) -> Result<VarTy> {
    v.ok_or_else(|| AnalysisError::new("expression produces no value here", span))
}

fn require_scalar_cond(ty: &VarTy, span: Span) -> Result<()> {
    if ty.rank != RankTy::Scalar {
        return Err(AnalysisError::new(
            "conditions must be scalars in compiled code (matrix truthiness is \
             interpreter-only)",
            span,
        ));
    }
    Ok(())
}

/// How one index argument selects.
#[derive(Debug, Clone, Copy, PartialEq)]
enum IndexSel {
    /// A single (scalar) position.
    One,
    /// The whole dimension (`:`).
    All,
    /// A contiguous range with this many elements when known.
    Slice(Dim),
}

fn infer_index_arg(ix: &Expr, env: &mut ScopeTypes, ctx: &mut Ctx) -> Result<IndexSel> {
    match &ix.kind {
        ExprKind::Colon => Ok(IndexSel::All),
        ExprKind::Range { .. } => {
            // Strided or unit ranges both select a slice; the length
            // comes from the range's inferred shape when static.
            let ty = require_value(infer_expr(ix, env, ctx)?, ix.span)?;
            let len = if ty.shape.rows == Dim::Known(1) {
                ty.shape.cols
            } else {
                ty.shape.rows
            };
            Ok(IndexSel::Slice(len))
        }
        _ => {
            let ty = require_value(infer_expr(ix, env, ctx)?, ix.span)?;
            match ty.rank {
                RankTy::Scalar => Ok(IndexSel::One),
                RankTy::Matrix => {
                    let len = if ty.shape.rows == Dim::Known(1) {
                        ty.shape.cols
                    } else {
                        ty.shape.rows
                    };
                    Ok(IndexSel::Slice(len))
                }
                RankTy::Bottom => Err(AnalysisError::new("index used before definition", ix.span)),
            }
        }
    }
}

fn check_indexed_store(idx: &[IndexSel], val: &VarTy, span: Span) -> Result<()> {
    let all_scalar = idx.iter().all(|s| *s == IndexSel::One);
    if all_scalar {
        if val.rank != RankTy::Scalar {
            return Err(AnalysisError::new(
                "storing a matrix into a single element",
                span,
            ));
        }
        return Ok(());
    }
    // Row/column/range stores take vector values or scalar fills.
    if val.rank == RankTy::Scalar {
        return Ok(());
    }
    if val.rank != RankTy::Matrix || !val.shape.is_vector() {
        return Err(AnalysisError::new(
            "slice assignment needs a vector or scalar value",
            span,
        ));
    }
    Ok(())
}

/// Infer an expression; `None` means "no value" (void builtin call).
fn infer_expr(e: &Expr, env: &mut ScopeTypes, ctx: &mut Ctx) -> Result<Option<VarTy>> {
    let ty = match &e.kind {
        ExprKind::Number { value, is_int } => {
            if *is_int {
                VarTy::int_const(*value)
            } else {
                VarTy {
                    konst: Some(*value),
                    ..VarTy::scalar(BaseTy::Real)
                }
            }
        }
        ExprKind::Str(_) => VarTy::string(),
        ExprKind::Ident(name) => {
            if let Some(ty) = env.get(name) {
                if ty.rank == RankTy::Bottom {
                    return Err(AnalysisError::new(
                        format!("variable `{name}` used before it is assigned"),
                        e.span,
                    ));
                }
                *ty
            } else if let Some(v) = constant_value(name) {
                VarTy {
                    konst: Some(v),
                    ..VarTy::scalar(BaseTy::Real)
                }
            } else {
                return Err(AnalysisError::new(
                    format!("variable `{name}` used before it is assigned"),
                    e.span,
                ));
            }
        }
        ExprKind::Range { start, step, stop } => {
            let s = require_value(infer_expr(start, env, ctx)?, start.span)?;
            let st = match step {
                Some(x) => Some(require_value(infer_expr(x, env, ctx)?, x.span)?),
                None => None,
            };
            let p = require_value(infer_expr(stop, env, ctx)?, stop.span)?;
            for t in [Some(&s), st.as_ref(), Some(&p)].into_iter().flatten() {
                if t.rank != RankTy::Scalar {
                    return Err(AnalysisError::new("range bounds must be scalars", e.span));
                }
            }
            let base = s
                .base
                .join(st.map(|t| t.base).unwrap_or(BaseTy::Integer))
                .join(p.base);
            // Static length when all parts are constants; `1:n` with a
            // unit step and a dimension-valued stop keeps the symbol.
            let len = match (s.konst, st.map(|t| t.konst).unwrap_or(Some(1.0)), p.konst) {
                (Some(a), Some(d), Some(b)) if d != 0.0 => {
                    let n = if (d > 0.0 && a > b) || (d < 0.0 && a < b) {
                        0
                    } else {
                        ((b - a) / d).floor() as usize + 1
                    };
                    Dim::Known(n)
                }
                (Some(a), Some(d), None) if a == 1.0 && d == 1.0 => p
                    .as_dim()
                    .filter(|n| n.is_symbolic())
                    .unwrap_or(Dim::Unknown),
                _ => Dim::Unknown,
            };
            VarTy::matrix(
                base,
                Shape {
                    rows: Dim::Known(1),
                    cols: len,
                },
            )
        }
        ExprKind::Colon => return Err(AnalysisError::new("`:` outside an index", e.span)),
        // `end` only parses inside index parentheses; its value is the
        // dimension extent, an integer scalar (statically folded by
        // lowering when the shape is known).
        ExprKind::EndKeyword => VarTy::scalar(BaseTy::Integer),
        ExprKind::Unary { op, operand } => {
            let t = require_value(infer_expr(operand, env, ctx)?, operand.span)?;
            match op {
                UnOp::Neg => VarTy {
                    konst: t.konst.map(|v| -v),
                    ..t
                },
                UnOp::Plus => t,
                UnOp::Not => VarTy {
                    base: BaseTy::Integer,
                    konst: t.konst.map(|v| f64::from(v == 0.0)),
                    ..t
                },
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let a = require_value(infer_expr(lhs, env, ctx)?, lhs.span)?;
            let b = require_value(infer_expr(rhs, env, ctx)?, rhs.span)?;
            infer_binary(*op, a, b, e.span)?
        }
        ExprKind::Transpose { operand, .. } => {
            let t = require_value(infer_expr(operand, env, ctx)?, operand.span)?;
            match t.rank {
                RankTy::Scalar => t,
                RankTy::Matrix => VarTy {
                    shape: t.shape.transposed(),
                    ..t
                },
                RankTy::Bottom => unreachable!("checked at use"),
            }
        }
        ExprKind::Index { base, args } => {
            let Some(bty) = env.get(base).copied() else {
                return Err(AnalysisError::new(
                    format!("variable `{base}` used before it is assigned"),
                    e.span,
                ));
            };
            if bty.rank != RankTy::Matrix {
                return Err(AnalysisError::new(
                    format!("cannot index scalar `{base}`"),
                    e.span,
                ));
            }
            let sels = args
                .iter()
                .map(|ix| infer_index_arg(ix, env, ctx))
                .collect::<Result<Vec<_>>>()?;
            infer_index_result(&bty, &sels, e.span)?
        }
        ExprKind::Call { callee, args } => {
            let outs = infer_call_multi(callee, args, 1, e.span, env, ctx)?;
            return Ok(outs.into_iter().next());
        }
        ExprKind::Matrix(rows) => {
            if rows.is_empty() {
                VarTy::matrix(BaseTy::Integer, Shape::known(0, 0))
            } else {
                let mut base = BaseTy::Bottom;
                let cols = rows[0].len();
                for row in rows {
                    if row.len() != cols {
                        return Err(AnalysisError::new(
                            "matrix literal rows have different lengths",
                            e.span,
                        ));
                    }
                    for cell in row {
                        let t = require_value(infer_expr(cell, env, ctx)?, cell.span)?;
                        if t.rank != RankTy::Scalar {
                            return Err(AnalysisError::new(
                                "matrix literals of matrix blocks are not supported by \
                                 the compiler; use explicit assignment",
                                cell.span,
                            ));
                        }
                        base = base.join(t.base);
                    }
                }
                VarTy::matrix(base, Shape::known(rows.len(), cols))
            }
        }
    };
    Ok(Some(ty))
}

/// Public wrapper: result type of a binary operator on two inferred
/// operand types (used by `otter-codegen` so lowering and inference
/// cannot disagree).
pub fn binary_result_type(op: BinOp, a: VarTy, b: VarTy, span: Span) -> Result<VarTy> {
    infer_binary(op, a, b, span)
}

fn infer_binary(op: BinOp, a: VarTy, b: VarTy, span: Span) -> Result<VarTy> {
    use BinOp::*;
    if a.base == BaseTy::Literal || b.base == BaseTy::Literal {
        return Err(AnalysisError::new("arithmetic on strings", span));
    }
    let num_base = |a: VarTy, b: VarTy| a.base.join(b.base);
    match op {
        Mul => match (a.rank, b.rank) {
            (RankTy::Scalar, RankTy::Scalar) => Ok(scalar_fold(op, a, b)),
            (RankTy::Scalar, RankTy::Matrix) => Ok(VarTy::matrix(num_base(a, b), b.shape)),
            (RankTy::Matrix, RankTy::Scalar) => Ok(VarTy::matrix(num_base(a, b), a.shape)),
            (RankTy::Matrix, RankTy::Matrix) => {
                if let (Dim::Known(x), Dim::Known(y)) = (a.shape.cols, b.shape.rows) {
                    if x != y {
                        return Err(AnalysisError::new(
                            format!("inner dimensions disagree: {} * {}", a.shape, b.shape),
                            span,
                        ));
                    }
                }
                let shape = Shape {
                    rows: a.shape.rows,
                    cols: b.shape.cols,
                };
                // A 1×1 product is a scalar in practice; keep matrix
                // rank only when some dimension may exceed one.
                if shape == Shape::known(1, 1) {
                    Ok(VarTy::scalar(num_base(a, b)))
                } else {
                    Ok(VarTy::matrix(num_base(a, b), shape))
                }
            }
            _ => Err(AnalysisError::new("operand used before definition", span)),
        },
        Div => match (a.rank, b.rank) {
            (RankTy::Scalar, RankTy::Scalar) => Ok(scalar_fold(op, a, b)),
            (RankTy::Matrix, RankTy::Scalar) => {
                Ok(VarTy::matrix(BaseTy::Real.join(num_base(a, b)), a.shape))
            }
            _ => Err(AnalysisError::new(
                "matrix right-division is not supported by the compiler",
                span,
            )),
        },
        LeftDiv => match (a.rank, b.rank) {
            (RankTy::Scalar, RankTy::Scalar) => Ok(scalar_fold(op, a, b)),
            _ => Err(AnalysisError::new(
                "matrix left-division (solve) is not supported by the compiler; \
                 use an iterative method as the conjugate-gradient benchmark does",
                span,
            )),
        },
        Pow => match (a.rank, b.rank) {
            (RankTy::Scalar, RankTy::Scalar) => Ok(scalar_fold(op, a, b)),
            (RankTy::Matrix, RankTy::Scalar) => {
                if let (Dim::Known(r), Dim::Known(c)) = (a.shape.rows, a.shape.cols) {
                    if r != c {
                        return Err(AnalysisError::new(
                            "matrix power needs a square matrix",
                            span,
                        ));
                    }
                }
                Ok(VarTy::matrix(num_base(a, b), a.shape))
            }
            _ => Err(AnalysisError::new("unsupported power operands", span)),
        },
        // Everything else is element-wise.
        _ => {
            let base = if op.is_predicate() {
                BaseTy::Integer
            } else if matches!(op, ElemDiv | ElemLeftDiv | ElemPow) {
                BaseTy::Real.join(num_base(a, b))
            } else {
                num_base(a, b)
            };
            match (a.rank, b.rank) {
                (RankTy::Scalar, RankTy::Scalar) => Ok(scalar_fold(op, a, b)),
                (RankTy::Scalar, RankTy::Matrix) => Ok(VarTy::matrix(base, b.shape)),
                (RankTy::Matrix, RankTy::Scalar) => Ok(VarTy::matrix(base, a.shape)),
                (RankTy::Matrix, RankTy::Matrix) => {
                    // Shapes must agree where known.
                    let (ar, ac) = (a.shape.rows, a.shape.cols);
                    let (br, bc) = (b.shape.rows, b.shape.cols);
                    if let (Dim::Known(x), Dim::Known(y)) = (ar, br) {
                        if x != y {
                            return Err(AnalysisError::new(
                                format!("shape mismatch: {} {} {}", a.shape, op.symbol(), b.shape),
                                span,
                            ));
                        }
                    }
                    if let (Dim::Known(x), Dim::Known(y)) = (ac, bc) {
                        if x != y {
                            return Err(AnalysisError::new(
                                format!("shape mismatch: {} {} {}", a.shape, op.symbol(), b.shape),
                                span,
                            ));
                        }
                    }
                    let shape = Shape {
                        rows: if ar == Dim::Unknown { br } else { ar },
                        cols: if ac == Dim::Unknown { bc } else { ac },
                    };
                    Ok(VarTy::matrix(base, shape))
                }
                _ => Err(AnalysisError::new("operand used before definition", span)),
            }
        }
    }
}

/// Scalar-scalar operator with constant folding.
fn scalar_fold(op: BinOp, a: VarTy, b: VarTy) -> VarTy {
    use BinOp::*;
    let konst = match (a.konst, b.konst) {
        (Some(x), Some(y)) => {
            let v = match op {
                Add => x + y,
                Sub => x - y,
                Mul | ElemMul => x * y,
                Div | ElemDiv => x / y,
                LeftDiv | ElemLeftDiv => y / x,
                Pow | ElemPow => x.powf(y),
                Eq => f64::from(x == y),
                Ne => f64::from(x != y),
                Lt => f64::from(x < y),
                Le => f64::from(x <= y),
                Gt => f64::from(x > y),
                Ge => f64::from(x >= y),
                And => f64::from(x != 0.0 && y != 0.0),
                Or => f64::from(x != 0.0 || y != 0.0),
            };
            Some(v)
        }
        _ => None,
    };
    let base = if op.is_predicate() {
        BaseTy::Integer
    } else if matches!(op, Div | ElemDiv | LeftDiv | ElemLeftDiv | Pow | ElemPow) {
        // Integer-valued constant results stay integer (2^10 is a
        // size); otherwise division promotes to real.
        match konst {
            Some(v)
                if v.fract() == 0.0 && a.base == BaseTy::Integer && b.base == BaseTy::Integer =>
            {
                BaseTy::Integer
            }
            _ => BaseTy::Real,
        }
    } else {
        a.base.join(b.base)
    };
    // Symbolic dimension facts flow through + and * so derived sizes
    // (`m = n + 1`, `half = n * k`) stay symbolic when a constant is
    // not available.
    let dim_of = if konst.is_some() {
        None
    } else {
        match (op, a.as_dim(), b.as_dim()) {
            (Add, Some(x), Some(y)) => Some(Dim::add(x, y)).filter(|d| d.is_symbolic()),
            (Mul | ElemMul, Some(x), Some(y)) => Some(Dim::mul(x, y)).filter(|d| d.is_symbolic()),
            _ => None,
        }
    };
    VarTy {
        base,
        rank: RankTy::Scalar,
        shape: Shape::SCALAR,
        konst,
        dim_of,
    }
}

fn infer_index_result(bty: &VarTy, sels: &[IndexSel], span: Span) -> Result<VarTy> {
    let base = bty.base;
    match sels {
        [IndexSel::One] => Ok(VarTy::scalar(base)),
        [IndexSel::All] => {
            // v(:) — flatten to a column.
            let n = bty.shape.numel();
            Ok(VarTy::matrix(
                base,
                Shape {
                    rows: n,
                    cols: Dim::Known(1),
                },
            ))
        }
        [IndexSel::Slice(n)] => {
            // Orientation follows the base for vectors; defaults to row.
            let shape = if bty.shape.cols == Dim::Known(1) {
                Shape {
                    rows: *n,
                    cols: Dim::Known(1),
                }
            } else {
                Shape {
                    rows: Dim::Known(1),
                    cols: *n,
                }
            };
            Ok(VarTy::matrix(base, shape))
        }
        [IndexSel::One, IndexSel::One] => Ok(VarTy::scalar(base)),
        [IndexSel::One, IndexSel::All] => Ok(VarTy::matrix(
            base,
            Shape {
                rows: Dim::Known(1),
                cols: bty.shape.cols,
            },
        )),
        [IndexSel::All, IndexSel::One] => Ok(VarTy::matrix(
            base,
            Shape {
                rows: bty.shape.rows,
                cols: Dim::Known(1),
            },
        )),
        [IndexSel::One, IndexSel::Slice(n)] => Ok(VarTy::matrix(
            base,
            Shape {
                rows: Dim::Known(1),
                cols: *n,
            },
        )),
        [IndexSel::Slice(n), IndexSel::One] => Ok(VarTy::matrix(
            base,
            Shape {
                rows: *n,
                cols: Dim::Known(1),
            },
        )),
        _ => Err(AnalysisError::new(
            "this indexing form is not supported by the compiler \
             (supported: scalar, range, `:` slices)",
            span,
        )),
    }
}

/// Infer a call; returns the output types (empty for void).
fn infer_call_multi(
    callee: &str,
    args: &[Expr],
    nout: usize,
    span: Span,
    env: &mut ScopeTypes,
    ctx: &mut Ctx,
) -> Result<Vec<VarTy>> {
    let mut arg_tys = Vec::with_capacity(args.len());
    for a in args {
        arg_tys.push(require_value(infer_expr(a, env, ctx)?, a.span)?);
    }
    if let Some(out) = infer_builtin(callee, &arg_tys, args, nout, span, ctx)? {
        return Ok(out);
    }
    // User M-file function.
    let Some(func) = ctx.program.function(callee) else {
        return Err(AnalysisError::new(
            format!("unknown function `{callee}`"),
            span,
        ));
    };
    if ctx.in_progress.iter().any(|n| n == callee) {
        return Err(AnalysisError::new(
            format!("recursive function `{callee}` is not supported by the compiler"),
            span,
        ));
    }
    if arg_tys.len() != func.params.len() {
        return Err(AnalysisError::new(
            format!(
                "`{callee}` takes {} arguments, {} given",
                func.params.len(),
                arg_tys.len()
            ),
            span,
        ));
    }
    // Monomorphic signature: first call wins; later calls must join.
    if let Some(sig) = ctx.sigs.get(callee) {
        let compatible = sig
            .params
            .iter()
            .zip(&arg_tys)
            .all(|(p, a)| p.rank == a.rank);
        if compatible {
            // Widen recorded params by join (shapes may generalize).
            let mut sig = sig.clone();
            for (p, a) in sig.params.iter_mut().zip(&arg_tys) {
                *p = p.join(*a).expect("ranks checked equal");
            }
            let changed = ctx.sigs.get(callee) != Some(&sig);
            if !changed {
                return Ok(sig.outs.clone());
            }
            // Re-infer with the *widened* parameter types so the
            // recorded signature covers every call site seen so far.
            arg_tys = sig.params.clone();
            ctx.sigs.remove(callee);
        } else {
            return Err(AnalysisError::new(
                format!(
                    "`{callee}` is called with conflicting argument ranks; the compiler \
                     requires one signature per function (no inlining, as in the paper)"
                ),
                span,
            ));
        }
    }
    // Infer the function body.
    let func = func.clone();
    ctx.in_progress.push(callee.to_string());
    let mut fenv: ScopeTypes = BTreeMap::new();
    for (p, t) in func.params.iter().zip(&arg_tys) {
        let mut t = *t;
        // Mint parameter symbols for dimensions the call site could
        // not pin down, so facts inside the body render in terms of
        // the formal (`f.x:rows`) instead of `?`. The recorded
        // signature keeps the raw joined argument types — widening
        // convergence depends on that.
        if t.is_matrix() {
            if t.shape.rows == Dim::Unknown {
                t.shape.rows = Dim::sym(&format!("{callee}.{p}:rows"), None);
            }
            if t.shape.cols == Dim::Unknown {
                t.shape.cols = Dim::sym(&format!("{callee}.{p}:cols"), None);
            }
        }
        fenv.insert(p.clone(), t);
    }
    let result = infer_block(&func.body, &mut fenv, ctx);
    ctx.in_progress.pop();
    result?;
    let mut outs = Vec::new();
    for o in &func.outs {
        let ty = fenv.get(o).copied().ok_or_else(|| {
            AnalysisError::new(
                format!("output `{o}` of `{callee}` is never assigned"),
                span,
            )
        })?;
        outs.push(ty);
    }
    let sig = FuncSig {
        params: arg_tys,
        outs: outs.clone(),
        vars: fenv,
    };
    ctx.sigs.insert(callee.to_string(), sig);
    Ok(outs)
}

/// Builtin signatures. Returns `Ok(None)` when `callee` is not a
/// builtin.
fn infer_builtin(
    callee: &str,
    arg_tys: &[VarTy],
    args: &[Expr],
    nout: usize,
    span: Span,
    ctx: &mut Ctx,
) -> Result<Option<Vec<VarTy>>> {
    let one = |t: VarTy| Ok(Some(vec![t]));
    let need = |n: usize| -> Result<()> {
        if arg_tys.len() < n {
            return Err(AnalysisError::new(
                format!("`{callee}` needs at least {n} argument(s)"),
                span,
            ));
        }
        Ok(())
    };
    let dim_arg = |i: usize| -> Dim {
        arg_tys
            .get(i)
            .and_then(|t| t.as_dim())
            .unwrap_or(Dim::Unknown)
    };
    match callee {
        "zeros" | "ones" | "rand" => {
            let base = if callee == "rand" {
                BaseTy::Real
            } else {
                BaseTy::Integer
            };
            let shape = match arg_tys.len() {
                0 => Shape::SCALAR,
                1 => Shape {
                    rows: dim_arg(0),
                    cols: dim_arg(0),
                },
                _ => Shape {
                    rows: dim_arg(0),
                    cols: dim_arg(1),
                },
            };
            if shape == Shape::SCALAR && arg_tys.is_empty() {
                return one(VarTy::scalar(base));
            }
            one(VarTy::matrix(base, shape))
        }
        "eye" => {
            need(1)?;
            one(VarTy::matrix(
                BaseTy::Integer,
                Shape {
                    rows: dim_arg(0),
                    cols: dim_arg(0),
                },
            ))
        }
        "linspace" => {
            need(2)?;
            let n = if arg_tys.len() > 2 {
                dim_arg(2)
            } else {
                Dim::Known(100)
            };
            one(VarTy::matrix(
                BaseTy::Real,
                Shape {
                    rows: Dim::Known(1),
                    cols: n,
                },
            ))
        }
        "size" => {
            need(1)?;
            if nout >= 2 {
                return Ok(Some(vec![
                    VarTy::scalar(BaseTy::Integer),
                    VarTy::scalar(BaseTy::Integer),
                ]));
            }
            if arg_tys.len() == 2 {
                let t = arg_tys[0];
                let d = arg_tys[1].konst;
                let dim = match d {
                    Some(1.0) => t.shape.rows,
                    Some(2.0) => t.shape.cols,
                    _ => Dim::Unknown,
                };
                return one(VarTy::dim_scalar(dim));
            }
            one(VarTy::matrix(BaseTy::Integer, Shape::known(1, 2)))
        }
        "length" => {
            need(1)?;
            let t = arg_tys[0];
            let dim = match (t.rank, t.shape.rows, t.shape.cols) {
                (RankTy::Scalar, _, _) => Dim::Known(1),
                (_, Dim::Known(r), Dim::Known(c)) => Dim::Known(r.max(c)),
                (_, Dim::Known(1), c) => c,
                (_, r, Dim::Known(1)) => r,
                _ => Dim::Unknown,
            };
            one(VarTy::dim_scalar(dim))
        }
        "numel" => {
            need(1)?;
            let t = arg_tys[0];
            let dim = match t.rank {
                RankTy::Scalar => Dim::Known(1),
                _ => t.shape.numel(),
            };
            one(VarTy::dim_scalar(dim))
        }
        "abs" | "floor" | "ceil" | "round" | "sign" => {
            need(1)?;
            let t = arg_tys[0];
            // Apply the function to the constant (previously the
            // operand's constant leaked through unapplied).
            let konst = t.konst.map(|v| match callee {
                "abs" => v.abs(),
                "floor" => v.floor(),
                "ceil" => v.ceil(),
                "round" => v.round(),
                _ if v == 0.0 => 0.0,
                _ => v.signum(),
            });
            one(VarTy { konst, ..t })
        }
        "sqrt" | "sin" | "cos" | "tan" | "exp" | "log" | "log2" => {
            need(1)?;
            let t = arg_tys[0];
            one(VarTy {
                base: BaseTy::Real,
                konst: None,
                ..t
            })
        }
        "mod" | "rem" => {
            need(2)?;
            let (a, b) = (arg_tys[0], arg_tys[1]);
            // Element-wise with broadcast.
            let base = a.base.join(b.base);
            match (a.rank, b.rank) {
                (RankTy::Scalar, RankTy::Scalar) => one(VarTy::scalar(base)),
                (RankTy::Matrix, _) => one(VarTy::matrix(base, a.shape)),
                (_, RankTy::Matrix) => one(VarTy::matrix(base, b.shape)),
                _ => Err(AnalysisError::new("operand used before definition", span)),
            }
        }
        "sum" | "mean" | "prod" | "any" | "all" => {
            need(1)?;
            let t = arg_tys[0];
            let base = match callee {
                "mean" => BaseTy::Real,
                "any" | "all" => BaseTy::Integer,
                _ => t.base,
            };
            match t.rank {
                RankTy::Scalar => one(VarTy::scalar(base)),
                RankTy::Matrix => {
                    if t.shape.is_vector() {
                        one(VarTy::scalar(base))
                    } else if t.shape.rows.concrete().is_none() && t.shape.cols.concrete().is_none()
                    {
                        Err(AnalysisError::new(
                            format!(
                                "`{callee}` cannot be compiled: the operand's shape is \
                                 unknown, so vector vs matrix semantics are ambiguous"
                            ),
                            span,
                        ))
                    } else {
                        one(VarTy::matrix(
                            base,
                            Shape {
                                rows: Dim::Known(1),
                                cols: t.shape.cols,
                            },
                        ))
                    }
                }
                RankTy::Bottom => Err(AnalysisError::new("operand used before definition", span)),
            }
        }
        "max" | "min" => {
            if arg_tys.len() == 2 {
                let (a, b) = (arg_tys[0], arg_tys[1]);
                let base = a.base.join(b.base);
                return match (a.rank, b.rank) {
                    (RankTy::Scalar, RankTy::Scalar) => one(VarTy::scalar(base)),
                    (RankTy::Matrix, _) => one(VarTy::matrix(base, a.shape)),
                    (_, RankTy::Matrix) => one(VarTy::matrix(base, b.shape)),
                    _ => Err(AnalysisError::new("operand used before definition", span)),
                };
            }
            need(1)?;
            // 1-arg form follows the sum conventions: scalar for
            // vectors, per-column row vector for matrices.
            let t = arg_tys[0];
            match t.rank {
                RankTy::Scalar => one(VarTy::scalar(t.base)),
                RankTy::Matrix if t.shape.is_vector() => one(VarTy::scalar(t.base)),
                RankTy::Matrix => one(VarTy::matrix(
                    t.base,
                    Shape {
                        rows: Dim::Known(1),
                        cols: t.shape.cols,
                    },
                )),
                RankTy::Bottom => Err(AnalysisError::new("operand used before definition", span)),
            }
        }
        "norm" | "dot" | "trapz" | "trapz2" => {
            need(1)?;
            one(VarTy::scalar(BaseTy::Real))
        }
        "circshift" => {
            need(2)?;
            one(arg_tys[0])
        }
        "disp" => {
            need(1)?;
            Ok(Some(vec![]))
        }
        "load" => {
            need(1)?;
            // The paper requires a sample data file so the compiler
            // can fix the type and rank at compile time.
            let ExprKind::Str(fname) = &args[0].kind else {
                return Err(AnalysisError::new(
                    "load requires a literal file name so the compiler can read the \
                     sample data file",
                    span,
                ));
            };
            let path = match &ctx.opts.data_dir {
                Some(d) => d.join(fname),
                None => PathBuf::from(fname),
            };
            let sample = otter_rt::io::read_matrix_file(&path).map_err(|e| {
                AnalysisError::new(
                    format!(
                        "cannot read sample data file for type inference \
                         (paper §3 requires one): {e}"
                    ),
                    span,
                )
            })?;
            let base = if sample.data().iter().all(|v| v.fract() == 0.0) {
                BaseTy::Integer
            } else {
                BaseTy::Real
            };
            if sample.is_scalar() {
                one(VarTy::scalar(base))
            } else {
                // Non-trivial dimensions become named symbols carrying
                // the sample value, so downstream facts render as
                // `wave.dat:rows` while static decisions that need a
                // number still get one via `Dim::concrete()`. Unit
                // dims stay `Known(1)`: vector-ness must be a hard
                // compile-time fact, exactly as in the paper.
                let sym_dim = |n: usize, which: &str| -> Dim {
                    if n >= 2 {
                        Dim::sym(&format!("{fname}:{which}"), Some(n))
                    } else {
                        Dim::Known(n)
                    }
                };
                one(VarTy::matrix(
                    base,
                    Shape {
                        rows: sym_dim(sample.rows(), "rows"),
                        cols: sym_dim(sample.cols(), "cols"),
                    },
                ))
            }
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve;
    use crate::ssa::ssa_rename;
    use otter_frontend::{EmptyProvider, MapProvider, SourceProvider};

    fn infer_src_with(src: &str, provider: &dyn SourceProvider) -> Result<Inference> {
        let resolved = resolve(src, provider)?;
        let mut program = resolved.program;
        let info = ssa_rename(&program.script, &[]);
        program.script = info.block;
        infer(&program, InferOptions::default())
    }

    fn infer_src(src: &str) -> Inference {
        infer_src_with(src, &EmptyProvider).unwrap()
    }

    fn ty(inf: &Inference, name: &str) -> VarTy {
        *inf.script_var(name)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    #[test]
    fn literals_and_constants() {
        let i = infer_src("a = 2;\nb = 2.5;\nc = pi;");
        assert_eq!(ty(&i, "a").base, BaseTy::Integer);
        assert_eq!(ty(&i, "a").konst, Some(2.0));
        assert_eq!(ty(&i, "b").base, BaseTy::Real);
        assert!((ty(&i, "c").konst.unwrap() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn constant_propagation_gives_static_shapes() {
        let i = infer_src("n = 2048;\nb = zeros(n, 1);\na = rand(n, n);");
        assert_eq!(ty(&i, "b").shape, Shape::known(2048, 1));
        assert_eq!(ty(&i, "a").shape, Shape::known(2048, 2048));
        assert_eq!(ty(&i, "a").base, BaseTy::Real);
        assert_eq!(ty(&i, "b").base, BaseTy::Integer);
    }

    #[test]
    fn const_folding_through_arithmetic() {
        let i = infer_src("n = 2^10;\nhalf = n / 2;\nm = zeros(half, n);");
        assert_eq!(ty(&i, "n").konst, Some(1024.0));
        assert_eq!(
            ty(&i, "n").base,
            BaseTy::Integer,
            "integral power stays integer"
        );
        assert_eq!(ty(&i, "m").shape, Shape::known(512, 1024));
    }

    #[test]
    fn matmul_shapes() {
        let i = infer_src("a = rand(3, 4);\nb = rand(4, 5);\nc = a * b;");
        assert_eq!(ty(&i, "c").shape, Shape::known(3, 5));
        assert_eq!(ty(&i, "c").base, BaseTy::Real);
    }

    #[test]
    fn matmul_dimension_mismatch_is_error() {
        let err = infer_src_with(
            "a = rand(3, 4);\nb = rand(5, 6);\nc = a * b;",
            &EmptyProvider,
        )
        .unwrap_err();
        assert!(err.to_string().contains("inner dimensions"), "{err}");
    }

    #[test]
    fn vector_times_vector_gives_scalar_or_outer() {
        let i = infer_src("v = rand(1, 5);\nw = rand(5, 1);\nd = v * w;\no = w * v;");
        assert!(ty(&i, "d").is_scalar(), "dot product is 1x1 → scalar");
        assert_eq!(ty(&i, "o").shape, Shape::known(5, 5));
    }

    #[test]
    fn transpose_swaps_shape() {
        let i = infer_src("a = rand(3, 7);\nb = a';");
        assert_eq!(ty(&i, "b").shape, Shape::known(7, 3));
    }

    #[test]
    fn range_lengths() {
        let i = infer_src("v = 1:10;\nw = 0:0.5:2;\nn = 5;\nu = 1:n;");
        assert_eq!(ty(&i, "v").shape, Shape::known(1, 10));
        assert_eq!(ty(&i, "v").base, BaseTy::Integer);
        assert_eq!(ty(&i, "w").shape, Shape::known(1, 5));
        assert_eq!(ty(&i, "w").base, BaseTy::Real);
        assert_eq!(ty(&i, "u").shape, Shape::known(1, 5));
    }

    #[test]
    fn indexing_results() {
        let i = infer_src(
            "a = rand(4, 6);\ns = a(2, 3);\nr = a(2, :);\nc = a(:, 3);\nv = rand(1, 9);\nw = v(2:4);",
        );
        assert!(ty(&i, "s").is_scalar());
        assert_eq!(ty(&i, "r").shape, Shape::known(1, 6));
        assert_eq!(ty(&i, "c").shape, Shape::known(4, 1));
        assert_eq!(ty(&i, "w").shape, Shape::known(1, 3));
    }

    #[test]
    fn predicates_are_integer() {
        let i = infer_src("a = rand(3, 3);\nm = a > 0.5;\ns = 1 < 2;");
        assert_eq!(ty(&i, "m").base, BaseTy::Integer);
        assert_eq!(ty(&i, "m").rank, RankTy::Matrix);
        assert_eq!(ty(&i, "s").konst, Some(1.0));
    }

    #[test]
    fn loop_fixpoint_converges() {
        let i = infer_src("s = 0;\nfor i = 1:10\ns = s + i * 0.5;\nend");
        assert_eq!(
            ty(&i, "s").base,
            BaseTy::Real,
            "loop joins integer 0 with real updates"
        );
        assert_eq!(ty(&i, "s").konst, None);
    }

    #[test]
    fn while_loop_with_reduction_condition() {
        let i = infer_src(
            "r = rand(100, 1);\nerr = norm(r);\nwhile err > 0.5\nr = r / 2;\nerr = norm(r);\nend",
        );
        assert_eq!(ty(&i, "err").base, BaseTy::Real);
        assert_eq!(ty(&i, "r").shape, Shape::known(100, 1));
    }

    #[test]
    fn rank_change_across_control_flow_is_error() {
        let err = infer_src_with(
            "if c > 0\nx = 1;\nelse\nx = [1, 2];\nend\ny = x;\nc = 1;",
            &EmptyProvider,
        );
        // Note: c used before assigned also possible; accept either
        // rank-conflict or use-before-def for robustness, but it must
        // fail.
        assert!(err.is_err());
    }

    #[test]
    fn straight_line_rank_change_compiles_via_ssa() {
        let i = infer_src("x = 2;\ny = x + 1;\nx = [1, 2, 3];\nz = x(2);");
        // After SSA renaming, the matrix web is x__1.
        assert!(ty(&i, "x").is_scalar());
        assert!(ty(&i, "x__1").is_matrix());
        assert!(ty(&i, "z").is_scalar());
    }

    #[test]
    fn user_function_signature_inferred() {
        let provider = MapProvider::new().with("scale", "function y = scale(v, s)\ny = v .* s;\n");
        let inf = infer_src_with("v = rand(8, 1);\nw = scale(v, 2);", &provider).unwrap();
        let sig = inf.functions.get("scale").unwrap();
        assert!(sig.params[0].is_matrix());
        assert!(sig.params[1].is_scalar());
        assert_eq!(sig.outs[0].shape, Shape::known(8, 1));
        assert_eq!(ty(&inf, "w").shape, Shape::known(8, 1));
    }

    #[test]
    fn conflicting_function_ranks_rejected() {
        let provider = MapProvider::new().with("idf", "function y = idf(x)\ny = x;\n");
        let err = infer_src_with("a = idf(2);\nb = idf(rand(3, 3));", &provider).unwrap_err();
        assert!(
            err.to_string().contains("conflicting argument ranks"),
            "{err}"
        );
    }

    #[test]
    fn recursion_rejected_by_compiler() {
        let provider = MapProvider::new().with(
            "recur",
            "function y = recur(n)\nif n <= 1\ny = 1;\nelse\ny = n * recur(n - 1);\nend\n",
        );
        let err = infer_src_with("f = recur(5);", &provider).unwrap_err();
        assert!(err.to_string().contains("recursive"), "{err}");
    }

    #[test]
    fn use_before_assignment_is_error() {
        let err = infer_src_with("y = x + 1;\nx = 2;", &EmptyProvider).unwrap_err();
        assert!(err.to_string().contains("before it is assigned"), "{err}");
    }

    #[test]
    fn indexed_assign_requires_preallocation() {
        let err = infer_src_with("a(3) = 1;", &EmptyProvider).unwrap_err();
        assert!(err.to_string().contains("preallocate"), "{err}");
    }

    #[test]
    fn size_and_length_constants() {
        let i = infer_src("a = zeros(6, 8);\nn = length(a);\nm = numel(a);\nr = size(a, 1);");
        assert_eq!(ty(&i, "n").konst, Some(8.0));
        assert_eq!(ty(&i, "m").konst, Some(48.0));
        assert_eq!(ty(&i, "r").konst, Some(6.0));
    }

    #[test]
    fn sum_conventions() {
        let i = infer_src("v = rand(1, 9);\na = sum(v);\nm = rand(3, 4);\nb = sum(m);");
        assert!(ty(&i, "a").is_scalar());
        assert_eq!(ty(&i, "b").shape, Shape::known(1, 4));
    }

    #[test]
    fn load_reads_sample_file() {
        let dir = std::env::temp_dir().join(format!("otter_infer_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = otter_rt::Dense::from_vec(4, 2, vec![1.0, 2.0, 3.5, 4.0, 5.0, 6.0, 7.0, 8.0]);
        otter_rt::io::write_matrix_file(&dir.join("wave.dat"), &m).unwrap();

        let resolved = resolve("d = load('wave.dat');", &EmptyProvider).unwrap();
        let inf = infer(
            &resolved.program,
            InferOptions {
                data_dir: Some(dir.clone()),
            },
        )
        .unwrap();
        let t = inf.script_var("d").unwrap();
        // Dimensions become named symbols carrying the sample extent.
        assert!(t.shape.rows.is_symbolic(), "{:?}", t.shape);
        assert!(t.shape.cols.is_symbolic(), "{:?}", t.shape);
        assert_eq!(t.shape.concrete(), Some((4, 2)));
        assert_eq!(t.shape.to_string(), "wave.dat:rowsxwave.dat:cols");
        assert_eq!(t.base, BaseTy::Real);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_without_sample_file_is_error() {
        let err = infer_src_with("d = load('missing.dat');", &EmptyProvider).unwrap_err();
        assert!(err.to_string().contains("sample data file"), "{err}");
    }

    #[test]
    fn elementwise_shape_mismatch_is_error() {
        let err = infer_src_with(
            "a = rand(2, 2);\nb = rand(3, 3);\nc = a + b;",
            &EmptyProvider,
        )
        .unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn matrix_condition_rejected() {
        let err = infer_src_with("a = rand(3, 3);\nif a\nx = 1;\nend", &EmptyProvider).unwrap_err();
        assert!(err.to_string().contains("scalar"), "{err}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::resolve::resolve;
    use crate::ssa::ssa_rename;
    use otter_frontend::MapProvider;

    fn infer_with(src: &str, provider: &MapProvider) -> Inference {
        let resolved = resolve(src, provider).unwrap();
        let mut program = resolved.program;
        let info = ssa_rename(&program.script, &[]);
        program.script = info.block;
        for f in &mut program.functions {
            let fi = ssa_rename(&f.body, &f.params);
            f.body = fi.block;
        }
        infer(&program, InferOptions::default()).unwrap_or_else(|e| panic!("{e}\n{src}"))
    }

    #[test]
    fn constants_propagate_through_function_calls() {
        let provider = MapProvider::new().with(
            "make_grid",
            "function g = make_grid(n, m)\ng = zeros(n, m);\n",
        );
        let inf = infer_with("a = make_grid(12, 5);\nr = size(a, 1);", &provider);
        let a = inf.script_var("a").unwrap();
        assert_eq!(a.shape, Shape::known(12, 5), "shape flows through the call");
        assert_eq!(inf.script_var("r").unwrap().konst, Some(12.0));
    }

    #[test]
    fn function_shapes_relate_outputs_to_inputs() {
        let provider = MapProvider::new().with(
            "smooth",
            "function y = smooth(v)\ny = (v + circshift(v, 1) + circshift(v, -1)) / 3;\n",
        );
        let inf = infer_with("x = ones(64, 1);\ny = smooth(x);", &provider);
        assert_eq!(inf.script_var("y").unwrap().shape, Shape::known(64, 1));
    }

    #[test]
    fn widened_second_call_generalizes_shape() {
        // Two calls with different (compatible-rank) shapes: the
        // signature widens and both results degrade to the join.
        let provider = MapProvider::new().with("idm", "function y = idm(x)\ny = x;\n");
        let inf = infer_with("a = idm(ones(3, 3));\nb = idm(ones(5, 5));", &provider);
        let sig = inf.functions.get("idm").unwrap();
        assert!(sig.params[0].is_matrix());
        // Shapes joined: both dims unknown.
        assert_eq!(sig.params[0].shape.rows, Dim::Unknown);
    }

    #[test]
    fn new_builtin_result_types() {
        let inf = infer_with(
            "a = ones(4, 6);\ncm = max(a);\nvp = prod(1:5);\nba = any(a(:, 1));",
            &MapProvider::new(),
        );
        assert_eq!(inf.script_var("cm").unwrap().shape, Shape::known(1, 6));
        assert!(inf.script_var("vp").unwrap().is_scalar());
        let ba = inf.script_var("ba").unwrap();
        assert!(ba.is_scalar());
        assert_eq!(ba.base, BaseTy::Integer);
    }

    #[test]
    fn strided_range_slice_length() {
        let inf = infer_with("v = 1:20;\nw = v(1:2:20);", &MapProvider::new());
        // 1:2:20 → 10 elements, statically known.
        assert_eq!(inf.script_var("w").unwrap().shape, Shape::known(1, 10));
    }
}
