//! Shared helpers for the integration tests: thin wrappers over the
//! [`otter_core::Engine`] trait.

#![allow(dead_code)]

use otter_core::{
    run, run_engine, CompiledArtifact, EngineOptions, EngineReport, InterpreterEngine, OtterEngine,
    OtterError, RunRequest,
};
use otter_machine::Machine;

/// Run a compiled artifact on `p` CPUs of `machine`.
pub fn run_compiled(
    artifact: &CompiledArtifact,
    machine: &Machine,
    p: usize,
) -> Result<EngineReport, OtterError> {
    run(artifact, &RunRequest::on(machine.clone(), p))
}

/// The interpreter baseline on one CPU of `machine`.
pub fn run_interpreter(src: &str, machine: &Machine) -> Result<EngineReport, OtterError> {
    run_engine(
        &mut InterpreterEngine::new(EngineOptions::default()),
        src,
        machine,
        1,
    )
}

/// The Otter engine end-to-end: compile then run on `p` CPUs.
pub fn run_otter(src: &str, machine: &Machine, p: usize) -> Result<EngineReport, OtterError> {
    run_engine(
        &mut OtterEngine::new(EngineOptions::default()),
        src,
        machine,
        p,
    )
}
