//! Randomised (but fully deterministic) tests for the front end:
//! expression generation, print→parse round-trips, and robustness of
//! the scanner on arbitrary input. Inputs come from a seeded
//! [`DetRng`], so every run explores the same cases and failures
//! reproduce by seed.

use otter_det::DetRng;
use otter_frontend::ast::*;
use otter_frontend::pretty::expr_to_string;
use otter_frontend::{lexer, parse_expr};

/// Generate a random well-formed expression over a small vocabulary.
fn gen_expr(rng: &mut DetRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_index(4) == 0 {
        // Leaf.
        return match rng.gen_index(3) {
            0 => Expr::int(1 + rng.gen_index(999) as i64),
            1 => Expr::var(["a", "b", "c", "xs"][rng.gen_index(4)]),
            _ => {
                let a = 1 + rng.gen_index(99) as u32;
                let b = 1 + rng.gen_index(99) as u32;
                Expr::synth(ExprKind::Number {
                    value: a as f64 / b as f64,
                    is_int: false,
                })
            }
        };
    }
    match rng.gen_index(5) {
        0 => {
            let op = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::ElemMul,
                BinOp::ElemDiv,
                BinOp::Pow,
                BinOp::Lt,
                BinOp::And,
            ][rng.gen_index(9)];
            let lhs = Box::new(gen_expr(rng, depth - 1));
            let rhs = Box::new(gen_expr(rng, depth - 1));
            Expr::synth(ExprKind::Binary { op, lhs, rhs })
        }
        1 => Expr::synth(ExprKind::Unary {
            op: UnOp::Neg,
            operand: Box::new(gen_expr(rng, depth - 1)),
        }),
        2 => Expr::synth(ExprKind::Transpose {
            op: TransposeOp::Conjugate,
            operand: Box::new(gen_expr(rng, depth - 1)),
        }),
        3 => {
            let n = 1 + rng.gen_index(3);
            let args = (0..n).map(|_| gen_expr(rng, depth - 1)).collect();
            Expr::synth(ExprKind::Call {
                callee: "f".into(),
                args,
            })
        }
        _ => Expr::synth(ExprKind::Range {
            start: Box::new(gen_expr(rng, depth - 1)),
            step: None,
            stop: Box::new(gen_expr(rng, depth - 1)),
        }),
    }
}

/// Random string over a charset, up to `max_len`.
fn gen_string(rng: &mut DetRng, charset: &[u8], max_len: usize) -> String {
    let len = rng.gen_index(max_len + 1);
    (0..len)
        .map(|_| charset[rng.gen_index(charset.len())] as char)
        .collect()
}

const PRINTABLE: &[u8] =
    b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~\n\t";

/// print → parse → print is a fixed point: whatever the printer
/// produces, re-parsing yields the same surface form.
#[test]
fn print_parse_print_is_stable() {
    let mut rng = DetRng::seed_from_u64(0xF0F0_0001);
    for case in 0..256 {
        let e = gen_expr(&mut rng, 5);
        let printed = expr_to_string(&e);
        let reparsed = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("case {case}: printer produced unparseable `{printed}`: {err}")
        });
        let printed2 = expr_to_string(&reparsed);
        assert_eq!(printed, printed2, "case {case}");
    }
}

/// The scanner never panics, whatever bytes arrive.
#[test]
fn lexer_total_on_arbitrary_ascii() {
    let mut rng = DetRng::seed_from_u64(0xF0F0_0002);
    for _ in 0..512 {
        let s = gen_string(&mut rng, PRINTABLE, 200);
        let _ = lexer::tokenize(&s); // Ok or Err, never panic
    }
}

/// Token spans are monotonically non-decreasing and in-bounds.
#[test]
fn token_spans_are_ordered() {
    let charset = b"abcdefghijklmnopqrstuvwxyz0123456789+*();,=[] .':\n-";
    let mut rng = DetRng::seed_from_u64(0xF0F0_0003);
    for _ in 0..512 {
        let s = gen_string(&mut rng, charset, 120);
        if let Ok(tokens) = lexer::tokenize(&s) {
            let mut last_start = 0u32;
            for t in &tokens {
                assert!(t.span.start >= last_start, "span order in {s:?}");
                assert!(t.span.end as usize <= s.len() || t.span.is_empty());
                last_start = t.span.start;
            }
        }
    }
}

/// Parsing arbitrary input never panics either.
#[test]
fn parser_total_on_arbitrary_ascii() {
    let mut rng = DetRng::seed_from_u64(0xF0F0_0004);
    for _ in 0..512 {
        let s = gen_string(&mut rng, PRINTABLE, 200);
        let _ = otter_frontend::parse(&s);
    }
}
