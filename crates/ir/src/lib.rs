//! # otter-ir
//!
//! The mid-level SPMD intermediate representation the Otter compiler
//! lowers analyzed MATLAB into, and from which both back ends work:
//!
//! * the **C emitter** (`otter-codegen::c_emit`) prints it as the
//!   SPMD C + `ML_*` run-time-library calls the paper shows in §3;
//! * the **executor** (`otter-core::exec`) runs it directly against
//!   `otter-rt`'s distributed matrices over `otter-mpi`.
//!
//! The IR reflects the paper's pass-4 invariant: every
//! communication-bearing operation (matrix multiply, element
//! broadcast, reductions, shifts, slicing) has been hoisted to
//! statement level as a run-time-library call ([`Instr`]), while
//! element-wise work remains as expression trees ([`EwExpr`]) that
//! compile to communication-free per-element loops. Scalar expressions
//! ([`SExpr`]) are replicated computations, identical on every rank.

pub mod display;
pub mod flow;
pub mod instr;
pub mod sites;

pub use flow::{sexpr_reads, CommProfile};
pub use instr::*;
pub use sites::{is_leaf, leaf_sites, SiteRef};
