//! Minimal JSON tree, writer, and parser.
//!
//! The workspace is dependency-free (the registry is unreachable), so
//! the JSON needed by metric snapshots and the bench baseline files is
//! hand-rolled: a small value enum that prints syntactically valid
//! JSON and a recursive-descent parser for reading it back. Objects
//! keep insertion order (lookup is linear — fine at the dozens-of-keys
//! scale of bench reports). Numbers are `f64`, which holds every
//! counter this system produces exactly (they stay far below 2⁵³).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest round-trip float formatting is
                    // valid JSON as long as the value is finite.
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    write!(f, "null")
                }
            }
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape_into(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are out of scope for the
                            // metric names this parser reads.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "1e-7", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            (
                "b \"quoted\"\n".into(),
                Json::Obj(vec![("x".into(), Json::Bool(true))]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn lookup_helpers() {
        let v = Json::parse(r#"{"app":"cg","stats":{"median":0.5},"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("app").and_then(Json::as_str), Some("cg"));
        assert_eq!(
            v.get("stats")
                .and_then(|s| s.get("median"))
                .and_then(Json::as_num),
            Some(0.5)
        );
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(2));
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse(r#""café — ünïcode\t""#).unwrap();
        assert_eq!(v.as_str(), Some("café — ünïcode\t"));
    }
}
