//! Job admission onto the fixed worker pool.
//!
//! The virtual-rank scheduler multiplexes any number of logical ranks
//! over `W` workers, but each concurrent *job* still spins up its own
//! pool. A long-lived service (`otterd`) therefore needs a gate in
//! front of [`crate::run_spmd_with`]: a counting semaphore over a
//! worker budget, so ten simultaneous compile-and-run requests share
//! the host instead of each claiming full parallelism. Admission is
//! FIFO-fair by condvar wakeup order; a job asking for more workers
//! than the budget is clamped rather than deadlocked, so a single
//! oversized request still runs (alone).

use std::sync::{Arc, Condvar, Mutex};

/// A counting semaphore over a fixed worker budget. Cloning shares the
/// budget (both halves gate the same pool).
#[derive(Debug, Clone)]
pub struct JobGate {
    inner: Arc<GateInner>,
}

#[derive(Debug)]
struct GateInner {
    total: usize,
    free: Mutex<usize>,
    cond: Condvar,
}

/// An admitted job's worker allocation; workers return to the gate on
/// drop, so a panicking job cannot leak budget.
#[derive(Debug)]
pub struct JobPermit {
    gate: Arc<GateInner>,
    granted: usize,
}

impl JobGate {
    /// A gate over `total` workers (clamped up to at least 1).
    pub fn new(total: usize) -> Self {
        JobGate {
            inner: Arc::new(GateInner {
                total: total.max(1),
                free: Mutex::new(total.max(1)),
                cond: Condvar::new(),
            }),
        }
    }

    /// The fixed worker budget.
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Workers not currently allocated to a job.
    pub fn available(&self) -> usize {
        *self.inner.free.lock().unwrap()
    }

    /// Block until `want` workers are free, then take them. Requests
    /// larger than the whole budget are clamped to it — the job runs
    /// with every worker rather than waiting forever; requests of 0
    /// are raised to 1 (a job always needs one worker).
    pub fn admit(&self, want: usize) -> JobPermit {
        let want = want.clamp(1, self.inner.total);
        let mut free = self.inner.free.lock().unwrap();
        while *free < want {
            free = self.inner.cond.wait(free).unwrap();
        }
        *free -= want;
        JobPermit {
            gate: Arc::clone(&self.inner),
            granted: want,
        }
    }

    /// [`JobGate::admit`] without blocking: `None` when fewer than
    /// `want` (clamped) workers are free right now.
    pub fn try_admit(&self, want: usize) -> Option<JobPermit> {
        let want = want.clamp(1, self.inner.total);
        let mut free = self.inner.free.lock().unwrap();
        if *free < want {
            return None;
        }
        *free -= want;
        Some(JobPermit {
            gate: Arc::clone(&self.inner),
            granted: want,
        })
    }
}

impl JobPermit {
    /// How many workers this job was granted (its clamped request).
    pub fn workers(&self) -> usize {
        self.granted
    }
}

impl Drop for JobPermit {
    fn drop(&mut self) {
        let mut free = self.gate.free.lock().unwrap();
        *free += self.granted;
        // More than one waiter may now fit; wake them all and let the
        // admit loops re-check.
        self.gate.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn grants_and_returns_workers() {
        let gate = JobGate::new(4);
        assert_eq!(gate.total(), 4);
        let a = gate.admit(3);
        assert_eq!(a.workers(), 3);
        assert_eq!(gate.available(), 1);
        drop(a);
        assert_eq!(gate.available(), 4);
    }

    #[test]
    fn oversized_requests_are_clamped() {
        let gate = JobGate::new(2);
        let p = gate.admit(100);
        assert_eq!(p.workers(), 2);
        assert_eq!(gate.available(), 0);
        assert!(gate.try_admit(1).is_none());
    }

    #[test]
    fn zero_requests_need_one_worker() {
        let gate = JobGate::new(2);
        let p = gate.admit(0);
        assert_eq!(p.workers(), 1);
        assert_eq!(gate.available(), 1);
    }

    #[test]
    fn blocked_jobs_run_after_release() {
        let gate = JobGate::new(2);
        let first = gate.admit(2);
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let gate = gate.clone();
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    let permit = gate.admit(1);
                    let in_flight = 2 - gate.available();
                    peak.fetch_max(in_flight, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    drop(permit);
                })
            })
            .collect();
        // Nothing can start until the first job gives its pool back.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(gate.available(), 0);
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gate.available(), 2);
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }
}
