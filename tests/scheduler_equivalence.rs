//! Scheduler equivalence: the virtual-rank scheduler multiplexes `p`
//! logical ranks over `W` workers, and nothing the simulation *reports*
//! may depend on `W`. Virtual clocks advance only through the machine
//! model, so every deterministic output — rank results, counters,
//! trace totals, failure reports — must be identical whether ranks get
//! dedicated workers (`W = p`, the seed's thread-per-rank behavior) or
//! fight over a tiny pool (`W = 1`, `W = 2`). The oversubscription
//! fixtures push p = 256 over two workers, including an injected crash
//! and a deadlock, to prove the failure machinery is also
//! pool-size-blind.

mod common;

use otter_core::{compile, run, EngineOptions, EngineReport, RunRequest};
use otter_machine::meiko_cs2;
use otter_mpi::{run_spmd_with, FaultPlan, SpmdOptions, WaitEdge};
use std::time::Duration;

/// Everything deterministic in an [`EngineReport`], flattened to a
/// string so mismatches show exactly which field diverged. Bits, not
/// values: the contract is byte-identity, not tolerance.
fn fingerprint(r: &EngineReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "modeled={:016x} messages={} bytes={} peak_rank={} peak_temp={}",
        r.modeled_seconds.to_bits(),
        r.messages,
        r.bytes,
        r.peak_rank_bytes,
        r.peak_temp_bytes
    );
    let _ = writeln!(out, "output={:?}", r.output);
    let _ = writeln!(out, "ops={:?}", r.op_counts);
    for c in &r.per_rank {
        let _ = writeln!(
            out,
            "rank={} clock={:016x} msgs={} bytes={} peak={} compute={:016x} comm={:016x} idle={:016x}",
            c.rank,
            c.clock.to_bits(),
            c.messages,
            c.bytes,
            c.peak_bytes,
            c.compute_seconds.to_bits(),
            c.comm_seconds.to_bits(),
            c.idle_seconds.to_bits()
        );
    }
    out
}

fn run_with_workers(script: &str, p: usize, workers: Option<usize>) -> EngineReport {
    let opts = EngineOptions::builder().metrics(true).build();
    let artifact = compile(script, &opts).expect("app compiles");
    let mut req = RunRequest::on(meiko_cs2(), p);
    req.workers = workers;
    run(&artifact, &req).expect("job completes")
}

/// The headline property: every benchmark app, at every tested rank
/// count, produces bit-identical reports on a starved pool. Metrics
/// with deterministic meaning (communication totals, imbalance) agree
/// too.
#[test]
fn pooled_runs_match_dedicated_worker_runs() {
    for app in otter_apps::test_apps() {
        for p in [1usize, 2, 4, 8] {
            let dedicated = run_with_workers(&app.script, p, Some(p));
            let baseline = fingerprint(&dedicated);
            let base_metrics = dedicated.metrics.as_ref().expect("metrics on");
            for w in [1usize, 2] {
                let pooled = run_with_workers(&app.script, p, Some(w));
                assert_eq!(
                    fingerprint(&pooled),
                    baseline,
                    "{} p={p} W={w}: report must be byte-identical",
                    app.id
                );
                let m = pooled.metrics.as_ref().expect("metrics on");
                for counter in ["comm_messages_total", "comm_bytes_total"] {
                    assert_eq!(
                        m.counter_sum(counter),
                        base_metrics.counter_sum(counter),
                        "{} p={p} W={w}: {counter}",
                        app.id
                    );
                }
                assert_eq!(
                    m.gauge("load_imbalance_ratio", &[]),
                    base_metrics.gauge("load_imbalance_ratio", &[]),
                    "{} p={p} W={w}: imbalance",
                    app.id
                );
            }
        }
    }
}

/// Trace-derived quantities (per-rank timeline totals and the critical
/// path) are functions of virtual time only, so a one-worker pool must
/// reproduce them exactly.
#[test]
fn trace_totals_are_worker_invariant() {
    use otter_trace::{critical_path, timelines, MemorySink, TraceSink as _};
    use std::sync::Arc;

    let app = otter_apps::test_apps()
        .into_iter()
        .find(|a| a.id == "cg")
        .expect("cg app");
    let run_traced = |workers: usize| {
        let sink = Arc::new(MemorySink::new());
        let opts = EngineOptions::builder().trace(Arc::clone(&sink)).build();
        let artifact = compile(&app.script, &opts).expect("compiles");
        run(
            &artifact,
            &RunRequest::on(meiko_cs2(), 8).with_workers(workers),
        )
        .expect("job completes");
        let events = sink.snapshot().unwrap_or_default();
        let cp = critical_path(&events);
        let mut tls = timelines(&events);
        tls.sort_by_key(|t| t.rank);
        let tl_text: Vec<String> = tls
            .iter()
            .map(|t| {
                format!(
                    "rank={} compute={:016x} comm={:016x} idle={:016x}",
                    t.rank,
                    t.compute.to_bits(),
                    t.comm.to_bits(),
                    t.idle.to_bits()
                )
            })
            .collect();
        (
            events.len(),
            cp.total.to_bits(),
            cp.compute.to_bits(),
            cp.comm.to_bits(),
            cp.hops,
            tl_text,
        )
    };
    assert_eq!(
        run_traced(1),
        run_traced(8),
        "W=1 must trace identically to W=8"
    );
}

/// Failure reports — which ranks failed, why, who was blocked on whom,
/// the formatted text CI greps — must not depend on the pool size
/// either. An injected crash with a blocked sender/receiver pair is
/// the richest report shape.
#[test]
fn failure_reports_are_worker_invariant() {
    let run = |workers: usize| {
        let opts = SpmdOptions {
            workers: Some(workers),
            faults: Some(FaultPlan::new().crash(3, 1)),
            ..SpmdOptions::default()
        };
        let failure = run_spmd_with(&meiko_cs2(), 8, opts, |c| {
            match c.rank() {
                2 => {
                    c.send(3, &[2.0])?;
                    c.recv(3)?;
                }
                4 => {
                    c.recv(3)?;
                }
                3 => {
                    let v = c.recv(2)?;
                    c.send(2, &v)?;
                    c.send(4, &[3.0])?;
                }
                _ => c.compute(1e6),
            }
            Ok(c.rank())
        })
        .expect_err("the crash must surface");
        let survivors: Vec<(usize, u64)> = failure
            .survivors
            .iter()
            .map(|s| (s.rank, s.clock.to_bits()))
            .collect();
        (failure.report.to_string(), survivors)
    };
    let dedicated = run(8);
    assert_eq!(run(1), dedicated, "W=1");
    assert_eq!(run(2), dedicated, "W=2");
}

/// Heavy oversubscription on a real app: 256 virtual ranks of CG over
/// two workers reproduce a 32-worker run bit for bit.
#[test]
fn oversubscribed_cg_at_p256_on_two_workers() {
    let app = otter_apps::test_apps()
        .into_iter()
        .find(|a| a.id == "cg")
        .expect("cg app");
    let two = run_with_workers(&app.script, 256, Some(2));
    let many = run_with_workers(&app.script, 256, Some(32));
    assert_eq!(fingerprint(&two), fingerprint(&many));
    assert!(two.messages > 0, "256 ranks must communicate");
}

/// A crash mid-ring at p = 256 on two workers: the cascade is long
/// (every rank downstream of the victim dies waiting) and entirely
/// deterministic in membership. Tight detector intervals keep the
/// 150+-step cascade fast.
#[test]
fn injected_crash_at_p256_on_two_workers() {
    let p = 256usize;
    let victim = 100usize;
    let opts = SpmdOptions {
        workers: Some(2),
        // The victim's ops: recv is op 1, send is op 2 — it dies at
        // its send, after consuming its predecessor's message.
        faults: Some(FaultPlan::new().crash(victim, 2)),
        poll_interval: Duration::from_millis(2),
        confirm_window: Duration::from_millis(8),
        ..SpmdOptions::default()
    };
    let failure = run_spmd_with(&meiko_cs2(), p, opts, |c| {
        // A ring: rank 0 seeds it, everyone else forwards.
        if c.rank() == 0 {
            c.send(1, &[1.0])?;
            c.recv(p - 1)?;
        } else {
            let v = c.recv(c.rank() - 1)?;
            c.send((c.rank() + 1) % p, &v)?;
        }
        Ok(c.rank())
    })
    .expect_err("the crash must break the ring");

    // Ranks 1..=99 received and forwarded before the victim died; the
    // victim and everyone downstream of it (101..=255 and the seeding
    // rank 0, which waits on 255) fail.
    let expected_failed: Vec<usize> = std::iter::once(0).chain(victim..p).collect();
    let failed: Vec<usize> = failure.report.failures.iter().map(|f| f.rank).collect();
    assert_eq!(failed, expected_failed);
    let expected_survivors: Vec<usize> = (1..victim).collect();
    assert_eq!(failure.report.survivor_ranks, expected_survivors);
    let root = failure.report.root_cause();
    assert_eq!(root.rank, victim);
    assert_eq!(root.error.code(), "injected_crash");
    for f in failure.report.failures.iter().filter(|f| f.rank != victim) {
        assert_eq!(
            f.error.code(),
            "peer_terminated",
            "rank {}: {}",
            f.rank,
            f.error
        );
    }
}

/// A two-rank deadlock buried in 256 ranks on a two-worker pool: the
/// detector must find the exact canonical cycle while 254 parked and
/// finished ranks stay out of the verdict.
#[test]
fn deadlock_fixture_at_p256_on_two_workers() {
    let t0 = std::time::Instant::now();
    let opts = SpmdOptions {
        workers: Some(2),
        poll_interval: Duration::from_millis(2),
        confirm_window: Duration::from_millis(8),
        ..SpmdOptions::default()
    };
    let failure = run_spmd_with(&meiko_cs2(), 256, opts, |c| {
        match c.rank() {
            7 => {
                c.recv(9)?;
            }
            9 => {
                c.recv(7)?;
            }
            _ => c.compute(1e5),
        }
        Ok(())
    })
    .expect_err("the cycle must be diagnosed");
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "diagnosis took {:?}",
        t0.elapsed()
    );
    let cycle = vec![
        WaitEdge {
            waiter: 7,
            waiting_on: 9,
        },
        WaitEdge {
            waiter: 9,
            waiting_on: 7,
        },
    ];
    assert_eq!(failure.report.failures.len(), 2);
    for (f, (rank, on)) in failure.report.failures.iter().zip([(7, 9), (9, 7)]) {
        assert_eq!(
            f.error,
            otter_mpi::CommError::Deadlock {
                rank,
                waiting_on: on,
                cycle: cycle.clone(),
            }
        );
    }
    assert_eq!(failure.report.survivor_ranks.len(), 254);
}
