//! Preset machine models for the paper's test beds.
//!
//! Parameter sources (all 1997-era public specifications, rounded):
//!
//! | machine | CPU | sustained Mflop/s | α (latency) | β (bandwidth) |
//! |---|---|---|---|---|
//! | Meiko CS-2 | 90 MHz SuperSPARC + Elan | 25 | 15 µs | 40 MB/s switched |
//! | SPARC-20 cluster | 75 MHz SuperSPARC-II ×4 per node | 20 | intra 25 µs / 60 MB/s; inter 900 µs / 1.1 MB/s, 10 Mb Ethernet shared |
//! | Enterprise SMP | 167 MHz UltraSPARC | 60 | 8 µs | 150 MB/s per CPU, 500 MB/s bus |
//! | workstation | one 167 MHz UltraSPARC of the Enterprise | 60 | — | — |
//!
//! The absolute values matter less than the ratios: the Meiko has the
//! best *balance* of compute to communication; the Ethernet cluster
//! has catastrophic inter-node α and a shared-segment ceiling; the SMP
//! has fast links but only 8 CPUs and a finite bus. These are exactly
//! the properties §6 of the paper uses to explain its curves.

use crate::machine::{CpuModel, LinkModel, Machine, Topology};

/// 16-CPU Meiko CS-2 distributed-memory multicomputer.
pub fn meiko_cs2() -> Machine {
    Machine {
        name: "Meiko CS-2".into(),
        cpu: CpuModel::new("SuperSPARC 90 MHz", 25e6),
        topology: Topology::Distributed(LinkModel::new(15e-6, 40e6)),
        max_cpus: 16,
    }
}

/// Four Sun SPARCserver 20s (4 CPUs each) on one 10 Mb/s Ethernet
/// segment.
pub fn sparc20_cluster() -> Machine {
    Machine {
        name: "SPARC 20 SMP cluster".into(),
        cpu: CpuModel::new("SuperSPARC-II 75 MHz", 20e6),
        topology: Topology::ClusterOfSmps {
            node_size: 4,
            intra: LinkModel::new(25e-6, 60e6),
            // TCP/IP over shared 10 Mb Ethernet, 1998: ~0.9 ms
            // round-trip-half latency, ~1.1 MB/s, one segment shared by
            // every concurrent inter-node transfer.
            inter: LinkModel::new(900e-6, 1.1e6).with_aggregate(1.1e6),
        },
        max_cpus: 16,
    }
}

/// 8-CPU Sun Enterprise shared-memory multiprocessor.
///
/// The per-message latency is *software*: 1998 vendor MPI over shared
/// memory copied through a locked buffer pool (~40 µs/message), far
/// above the Meiko's Elan hardware DMA — and every transfer crosses
/// one Gigaplane bus (aggregate ceiling). This is what makes the
/// Meiko "the best balance between processor speed, message latency,
/// and aggregate message-passing bandwidth" (paper §6) even though the
/// Enterprise's CPUs are faster.
pub fn enterprise_smp() -> Machine {
    Machine {
        name: "Enterprise SMP".into(),
        cpu: CpuModel::new("UltraSPARC 167 MHz", 60e6),
        topology: Topology::SharedMemory(LinkModel::new(40e-6, 120e6).with_aggregate(300e6)),
        max_cpus: 8,
    }
}

/// Single UltraSPARC workstation CPU — the platform of the paper's §5
/// sequential comparison ("a single UltraSPARC CPU").
pub fn workstation() -> Machine {
    Machine {
        name: "UltraSPARC workstation".into(),
        cpu: CpuModel::new("UltraSPARC 167 MHz", 60e6),
        topology: Topology::SharedMemory(LinkModel::new(8e-6, 150e6)),
        max_cpus: 1,
    }
}

/// All three parallel test beds, in the order the figures plot them.
pub fn all_parallel() -> Vec<Machine> {
    vec![meiko_cs2(), sparc20_cluster(), enterprise_smp()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_counts_match_paper() {
        assert_eq!(meiko_cs2().max_cpus, 16);
        assert_eq!(sparc20_cluster().max_cpus, 16);
        assert_eq!(enterprise_smp().max_cpus, 8);
        assert_eq!(workstation().max_cpus, 1);
    }

    #[test]
    fn cluster_is_most_unbalanced() {
        // Paper §6: cluster communication/computation ratio is worst.
        // Compare time to ship 1 MB between "distant" CPUs against the
        // time to compute 1 Mflop.
        for (m, from, to) in [
            (meiko_cs2(), 0usize, 8usize),
            (sparc20_cluster(), 0, 8),
            (enterprise_smp(), 0, 4),
        ] {
            let comm = m.message_time(from, to, 1 << 20, 1);
            let comp = 1e6 * m.cpu.flop_time();
            let ratio = comm / comp;
            if m.name.contains("cluster") {
                assert!(ratio > 10.0, "{}: ratio={ratio}", m.name);
            } else {
                assert!(ratio < 2.0, "{}: ratio={ratio}", m.name);
            }
        }
    }

    #[test]
    fn meiko_balance_beats_cluster_inter_node() {
        let meiko = meiko_cs2();
        let cluster = sparc20_cluster();
        let bytes = 64 * 1024;
        let t_meiko = meiko.message_time(0, 8, bytes, 1);
        let t_cluster = cluster.message_time(0, 8, bytes, 1);
        assert!(t_cluster > 20.0 * t_meiko);
    }

    #[test]
    fn smp_fastest_cpu() {
        assert!(enterprise_smp().cpu.flops > meiko_cs2().cpu.flops);
        assert!(meiko_cs2().cpu.flops > sparc20_cluster().cpu.flops);
    }

    #[test]
    fn cluster_intra_node_is_cheap() {
        let m = sparc20_cluster();
        let intra = m.message_time(0, 3, 8192, 1);
        let inter = m.message_time(0, 4, 8192, 1);
        assert!(inter / intra > 50.0, "intra={intra} inter={inter}");
    }
}
