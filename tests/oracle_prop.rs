//! Property-based oracle testing: generate random (but well-typed)
//! MATLAB programs in the compiler's subset, run them through both the
//! interpreter and the compiled SPMD pipeline, and require identical
//! results at several processor counts.
//!
//! This is the single strongest check in the repository: it exercises
//! the scanner, parser, resolution, SSA, inference, lowering, the
//! peephole pass, the executor, the distributed run-time library, and
//! the message-passing substrate all at once, against an independent
//! implementation. Programs are generated from a seeded [`DetRng`]
//! stream, so every run (and every CI failure) is reproducible.

mod common;

use common::{run_compiled, run_interpreter};
use otter_core::{compile, EngineOptions};
use otter_det::DetRng;
use otter_machine::{meiko_cs2, workstation};

/// Vector dimension used by all generated programs (fixed so every
/// matrix/vector is aligned by construction).
const N: usize = 7;

/// One generated statement, encoded as selector bytes.
#[derive(Debug, Clone)]
struct GenStmt {
    kind: u8,
    a: u8,
    b: u8,
    c: u8,
}

fn gen_stmt(rng: &mut DetRng) -> GenStmt {
    let w = rng.next_u64();
    GenStmt {
        kind: w as u8,
        a: (w >> 8) as u8,
        b: (w >> 16) as u8,
        c: (w >> 24) as u8,
    }
}

const SCALARS: [&str; 3] = ["s0", "s1", "s2"];
const VECTORS: [&str; 3] = ["v0", "v1", "v2"];
const MATRICES: [&str; 2] = ["m0", "m1"];

/// Render a generated program: deterministic preamble defining every
/// variable, then the random statement list, then digest outputs.
fn render(stmts: &[GenStmt]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "n = {N};\n\
         u = 1:n;\n\
         s0 = 0.5;\n\
         s1 = 2;\n\
         s2 = -1.25;\n\
         v0 = u' / n;\n\
         v1 = cos(u)';\n\
         v2 = ones(n, 1);\n\
         m0 = u' * u / n + eye(n);\n\
         m1 = ones(n, n) / 3;\n"
    ));
    for s in stmts {
        out.push_str(&render_stmt(s));
    }
    // Digest: fold everything into scalars the test compares.
    out.push_str(
        "d0 = s0 + s1 + s2;\n\
         d1 = sum(v0) + sum(v1) + sum(v2);\n\
         d2 = sum(sum(m0)) + sum(sum(m1));\n\
         d3 = norm(v0) + norm(v1);\n",
    );
    out
}

fn render_stmt(s: &GenStmt) -> String {
    let sc = |x: u8| SCALARS[(x as usize) % SCALARS.len()];
    let vc = |x: u8| VECTORS[(x as usize) % VECTORS.len()];
    let mc = |x: u8| MATRICES[(x as usize) % MATRICES.len()];
    let idx = |x: u8| (x as usize % N) + 1; // 1-based in-range index
    match s.kind % 14 {
        // Scalar updates. Division is always by a positive quantity.
        0 => format!("{} = {} + {} * 0.5;\n", sc(s.a), sc(s.b), sc(s.c)),
        1 => format!("{} = {} / (abs({}) + 1);\n", sc(s.a), sc(s.b), sc(s.c)),
        2 => format!("{} = sum({});\n", sc(s.a), vc(s.b)),
        3 => format!("{} = {}({});\n", sc(s.a), vc(s.b), idx(s.c)),
        4 => format!("{} = {}({}, {});\n", sc(s.a), mc(s.b), idx(s.c), idx(s.a)),
        5 => format!("{} = norm({});\n", sc(s.a), vc(s.b)),
        6 => format!("{} = {}' * {};\n", sc(s.a), vc(s.b), vc(s.c)),
        // Vector updates.
        7 => format!("{} = {} + {} * {};\n", vc(s.a), vc(s.b), sc(s.c), vc(s.a)),
        8 => format!("{} = {} .* {};\n", vc(s.a), vc(s.b), vc(s.c)),
        9 => format!("{} = {} * {};\n", vc(s.a), mc(s.b), vc(s.c)),
        10 => format!(
            "{} = circshift({}, {});\n",
            vc(s.a),
            vc(s.b),
            (s.c % 5) as i32 - 2
        ),
        // Matrix updates.
        11 => format!("{} = {} + {} / 2;\n", mc(s.a), mc(s.b), mc(s.c)),
        12 => format!("{} = {}';\n", mc(s.a), mc(s.b)),
        13 => format!("{} = {} .* {};\n", mc(s.a), mc(s.b), mc(s.c)),
        _ => unreachable!(),
    }
}

fn check_program(src: &str) {
    let base = match run_interpreter(src, &workstation()) {
        Ok(r) => r,
        Err(e) => panic!("interpreter rejected generated program: {e}\n{src}"),
    };
    let compiled = match compile(src, &EngineOptions::default()) {
        Ok(c) => c,
        Err(e) => panic!("compiler rejected generated program: {e}\n{src}"),
    };
    for p in [1usize, 3, 4] {
        let run = run_compiled(&compiled, &meiko_cs2(), p)
            .unwrap_or_else(|e| panic!("execution failed (p={p}): {e}\n{src}"));
        for d in ["d0", "d1", "d2", "d3"] {
            let a = base.scalar(d).unwrap();
            let b = run.scalar(d).unwrap();
            let tol = 1e-9 * (1.0 + a.abs());
            assert!(
                (a - b).abs() <= tol || (a.is_nan() && b.is_nan()),
                "digest {d} differs at p={p}: interpreter={a} otter={b}\n{src}"
            );
        }
    }
}

#[test]
fn random_programs_match_interpreter() {
    // 24 cases, 1–11 statements each (each case compiles + runs the
    // SPMD engine at three rank counts; keep CI sane).
    let mut rng = DetRng::seed_from_u64(0x0AC1_E001);
    for case in 0..24 {
        let len = 1 + rng.gen_index(11);
        let stmts: Vec<GenStmt> = (0..len).map(|_| gen_stmt(&mut rng)).collect();
        let src = render(&stmts);
        eprintln!("case {case}: {len} statements");
        check_program(&src);
    }
}

#[test]
fn fixed_regression_mix() {
    // A deterministic mix covering every statement kind at least once.
    let stmts: Vec<GenStmt> = (0..14)
        .map(|k| GenStmt {
            kind: k,
            a: k.wrapping_mul(7),
            b: k.wrapping_add(3),
            c: k ^ 0x5a,
        })
        .collect();
    let src = render(&stmts);
    check_program(&src);
}
