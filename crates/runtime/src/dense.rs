//! Dense row-major matrices — the local building block of the
//! distributed run-time library and the value representation of the
//! baseline interpreter.
//!
//! MATLAB semantics throughout: 1-based indexing at the API surface is
//! handled by callers (the compiler emits the `- 1` just like the
//! paper's generated C does); this type is 0-based. A vector is a
//! matrix with one row (row vector) or one column (column vector).

use std::fmt;

/// Dense `rows × cols` matrix of doubles, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// Construct from parts. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "shape {rows}x{cols} vs {} elements",
            data.len()
        );
        Dense { rows, cols, data }
    }

    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Column vector from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Dense::from_vec(v.len(), 1, v.to_vec())
    }

    /// Row vector from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Dense::from_vec(1, v.len(), v.to_vec())
    }

    /// MATLAB range `start:step:stop` as a row vector. An empty range
    /// (e.g. `1:0`) yields a 1×0 matrix, as MATLAB does.
    pub fn range(start: f64, step: f64, stop: f64) -> Self {
        assert!(step != 0.0, "range step must be nonzero");
        let n = if (step > 0.0 && start > stop) || (step < 0.0 && start < stop) {
            0
        } else {
            ((stop - start) / step).floor() as usize + 1
        };
        let data: Vec<f64> = (0..n).map(|i| start + step * i as f64).collect();
        Dense {
            rows: 1,
            cols: n,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if either dimension is 1 (MATLAB vector).
    pub fn is_vector(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// True for 1×1.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Raw data slice, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data, row-major.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// 0-based element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.data[i * self.cols + j]
    }

    /// 0-based element store.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.data[i * self.cols + j] = v;
    }

    /// Linear 0-based access in MATLAB's column-major linear-index
    /// order (`a(k)` semantics).
    pub fn get_linear(&self, k: usize) -> f64 {
        assert!(k < self.len(), "linear index {k} out of {}", self.len());
        let i = k % self.rows;
        let j = k / self.rows;
        self.get(i, j)
    }

    /// Linear 0-based store in column-major order.
    pub fn set_linear(&mut self, k: usize, v: f64) {
        assert!(k < self.len(), "linear index {k} out of {}", self.len());
        let i = k % self.rows;
        let j = k / self.rows;
        self.set(i, j, v);
    }

    /// One row as a slice (row-major makes this free).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// One column, copied out.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    // ---- element-wise operations ---------------------------------------

    /// Apply `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Dense {
        Dense {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combine two same-shape matrices element-wise.
    pub fn zip(&self, other: &Dense, f: impl Fn(f64, f64) -> f64) -> Dense {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch in element-wise op"
        );
        Dense {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    // ---- linear algebra --------------------------------------------------

    /// Matrix product. Panics on inner-dimension mismatch.
    ///
    /// Delegates to the branchless tiled kernel: every input value —
    /// zero, NaN, infinity — takes the same code path, so IEEE
    /// specials propagate and the running time depends only on the
    /// shapes involved.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Dense::zeros(self.rows, other.cols);
        crate::kernels::matmul_accumulate(
            &mut out.data,
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            self.cols,
            0,
            &other.data,
        );
        out
    }

    /// Matrix–vector product with `x` given as a flat slice; returns a
    /// flat vector of length `rows`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        crate::kernels::matvec_into(&mut y, &self.data, self.cols, x);
        y
    }

    /// Transpose.
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Outer product of two flat vectors: `u vᵀ`.
    pub fn outer(u: &[f64], v: &[f64]) -> Dense {
        let mut out = Dense::zeros(u.len(), v.len());
        for (i, &a) in u.iter().enumerate() {
            for (j, &b) in v.iter().enumerate() {
                out.set(i, j, a * b);
            }
        }
        out
    }

    /// Dot product of the matrices viewed as flat vectors.
    pub fn dot(&self, other: &Dense) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    // ---- reductions -------------------------------------------------------

    /// Sum of all elements.
    pub fn sum_all(&self) -> f64 {
        self.data.iter().sum()
    }

    /// MATLAB `sum`: for a vector, the scalar total; for a matrix, the
    /// row vector of column sums.
    pub fn sum(&self) -> Dense {
        if self.is_vector() {
            Dense::from_vec(1, 1, vec![self.sum_all()])
        } else {
            let mut s = vec![0.0; self.cols];
            for i in 0..self.rows {
                for (j, acc) in s.iter_mut().enumerate() {
                    *acc += self.get(i, j);
                }
            }
            Dense::row_vector(&s)
        }
    }

    /// MATLAB `prod`: scalar product for vectors, column products for
    /// matrices.
    pub fn prod(&self) -> Dense {
        if self.is_vector() {
            Dense::from_vec(1, 1, vec![self.data.iter().product()])
        } else {
            let mut s = vec![1.0; self.cols];
            for i in 0..self.rows {
                for (j, acc) in s.iter_mut().enumerate() {
                    *acc *= self.get(i, j);
                }
            }
            Dense::row_vector(&s)
        }
    }

    /// MATLAB `max` convention: scalar for vectors, row vector of
    /// column maxima for matrices.
    pub fn max(&self) -> Dense {
        self.col_fold(f64::NEG_INFINITY, f64::max)
    }

    /// MATLAB `min` convention (see [`Dense::max`]).
    pub fn min(&self) -> Dense {
        self.col_fold(f64::INFINITY, f64::min)
    }

    fn col_fold(&self, init: f64, f: impl Fn(f64, f64) -> f64) -> Dense {
        assert!(!self.is_empty(), "reduction of empty matrix");
        if self.is_vector() {
            Dense::from_vec(1, 1, vec![self.data.iter().copied().fold(init, &f)])
        } else {
            let mut s = vec![init; self.cols];
            for i in 0..self.rows {
                for (j, acc) in s.iter_mut().enumerate() {
                    *acc = f(*acc, self.get(i, j));
                }
            }
            Dense::row_vector(&s)
        }
    }

    /// MATLAB `any`: 1 if any element is nonzero (vectors → scalar,
    /// matrices → per-column row vector).
    pub fn any(&self) -> Dense {
        self.col_fold(0.0, |a, b| f64::from(a != 0.0 || b != 0.0))
    }

    /// MATLAB `all`: 1 if every element is nonzero.
    pub fn all(&self) -> Dense {
        self.col_fold(1.0, |a, b| f64::from(a != 0.0 && b != 0.0))
    }

    /// MATLAB `mean` with the same vector/matrix convention as `sum`.
    pub fn mean(&self) -> Dense {
        let n = if self.is_vector() {
            self.len()
        } else {
            self.rows
        };
        assert!(n > 0, "mean of empty");
        self.sum().map(|s| s / n as f64)
    }

    /// Largest element (MATLAB `max` reduced over everything).
    pub fn max_all(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element.
    pub fn min_all(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Euclidean norm of the matrix viewed as a flat vector (MATLAB
    /// `norm` for vectors).
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Trapezoidal integration with unit spacing over a vector
    /// (MATLAB `trapz(y)`).
    pub fn trapz(&self) -> f64 {
        assert!(self.is_vector(), "trapz expects a vector");
        let d = &self.data;
        if d.len() < 2 {
            return 0.0;
        }
        let mut s = 0.0;
        for w in d.windows(2) {
            s += 0.5 * (w[0] + w[1]);
        }
        s
    }

    /// Trapezoidal integration of `y` against abscissae `x`
    /// (MATLAB `trapz(x, y)`; the paper's ocean script calls this
    /// `trapz2`).
    pub fn trapz_xy(x: &Dense, y: &Dense) -> f64 {
        assert!(x.is_vector() && y.is_vector(), "trapz2 expects vectors");
        assert_eq!(x.len(), y.len(), "trapz2 length mismatch");
        let (xd, yd) = (&x.data, &y.data);
        let mut s = 0.0;
        for i in 1..xd.len() {
            s += 0.5 * (xd[i] - xd[i - 1]) * (yd[i] + yd[i - 1]);
        }
        s
    }

    // ---- structural operations --------------------------------------------

    /// Circularly shift a vector right by `k` (negative = left); the
    /// ocean script's vector-shift primitive.
    pub fn circshift(&self, k: i64) -> Dense {
        assert!(self.is_vector(), "circshift expects a vector");
        let n = self.len() as i64;
        if n == 0 {
            return self.clone();
        }
        let k = ((k % n) + n) % n;
        let mut data = Vec::with_capacity(n as usize);
        for i in 0..n {
            data.push(self.data[((i - k + n) % n) as usize]);
        }
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontal concatenation `[a, b]`.
    pub fn hcat(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let mut out = Dense::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.data[i * out.cols..i * out.cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * out.cols + self.cols..(i + 1) * out.cols].copy_from_slice(other.row(i));
        }
        out
    }

    /// Vertical concatenation `[a; b]`.
    pub fn vcat(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.cols, "vcat column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Dense {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Submatrix by 0-based row and column index lists.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Dense {
        let mut out = Dense::zeros(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            for (oj, &j) in col_idx.iter().enumerate() {
                out.set(oi, oj, self.get(i, j));
            }
        }
        out
    }

    /// Reshape without changing element order (column-major, as MATLAB).
    pub fn reshape(&self, rows: usize, cols: usize) -> Dense {
        assert_eq!(rows * cols, self.len(), "reshape element-count mismatch");
        let mut out = Dense::zeros(rows, cols);
        for k in 0..self.len() {
            out.set_linear(k, self.get_linear(k));
        }
        out
    }
}

impl fmt::Display for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>12.6}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Dense::zeros(2, 3).data(), &[0.0; 6]);
        assert_eq!(Dense::ones(1, 2).data(), &[1.0, 1.0]);
        let i = Dense::eye(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.sum_all(), 3.0);
    }

    #[test]
    fn ranges() {
        assert_eq!(
            Dense::range(1.0, 1.0, 5.0).data(),
            &[1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(
            Dense::range(0.0, 0.5, 2.0).data(),
            &[0.0, 0.5, 1.0, 1.5, 2.0]
        );
        assert_eq!(Dense::range(5.0, -2.0, 0.0).data(), &[5.0, 3.0, 1.0]);
        assert!(Dense::range(1.0, 1.0, 0.0).is_empty());
    }

    #[test]
    fn linear_index_is_column_major() {
        // [1 3; 2 4] has column-major order 1,2,3,4.
        let m = Dense::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        assert_eq!(
            (0..4).map(|k| m.get_linear(k)).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
        let mut m2 = Dense::zeros(2, 2);
        for k in 0..4 {
            m2.set_linear(k, (k + 1) as f64);
        }
        assert_eq!(m2, m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Dense::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Dense::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Dense::from_vec(2, 2, vec![3.0, -1.0, 2.0, 0.5]);
        assert_eq!(a.matmul(&Dense::eye(2)), a);
        assert_eq!(Dense::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_entries() {
        // Regression: the old kernel skipped k terms where A(i,k) was
        // exactly 0.0, silently dropping 0·NaN and 0·∞ contributions
        // that IEEE 754 defines as NaN. Row 0 of A is [0, 1]: the
        // zero must still multiply B's specials.
        let a = Dense::from_vec(2, 2, vec![0.0, 1.0, 1.0, 1.0]);
        let b = Dense::from_vec(2, 2, vec![f64::NAN, f64::INFINITY, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert!(
            c.get(0, 0).is_nan(),
            "0·NaN + 1·1 = NaN, got {}",
            c.get(0, 0)
        );
        assert!(c.get(0, 1).is_nan(), "0·∞ + 1·1 = NaN, got {}", c.get(0, 1));
        // Row 1 has no zero factor: NaN/∞ propagate arithmetically.
        assert!(c.get(1, 0).is_nan());
        assert_eq!(c.get(1, 1), f64::INFINITY);
    }

    #[test]
    fn matmul_wall_time_is_input_independent() {
        // The kernel must not branch on values: an all-zeros operand
        // takes the same arithmetic path as a dense one. The old
        // zero-skip made the zeros case ~n× faster; branchless, the
        // two medians agree within ordinary timer noise. The bound is
        // deliberately loose (5×) — it catches the O(nnz) shortcut
        // coming back, not scheduler jitter.
        let n = 96;
        let zeros = Dense::zeros(n, n);
        let ones = Dense::ones(n, n);
        let time = |a: &Dense, b: &Dense| {
            let mut samples: Vec<f64> = (0..9)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    std::hint::black_box(a.matmul(b));
                    t0.elapsed().as_secs_f64()
                })
                .collect();
            samples.sort_by(f64::total_cmp);
            samples[samples.len() / 2]
        };
        let t_dense = time(&ones, &ones);
        let t_zero = time(&zeros, &ones);
        assert!(
            t_dense < t_zero * 5.0,
            "zero input ran {t_zero}s vs dense {t_dense}s — value-dependent skip?"
        );
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Dense::from_vec(3, 3, (1..=9).map(f64::from).collect());
        let x = [1.0, 0.0, -1.0];
        let y = a.matvec(&x);
        let y2 = a.matmul(&Dense::col_vector(&x));
        assert_eq!(y, y2.into_data());
    }

    #[test]
    fn transpose_involution() {
        let a = Dense::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn outer_product() {
        let m = Dense::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 10.0);
    }

    #[test]
    fn sum_and_mean_conventions() {
        let v = Dense::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(v.sum().get(0, 0), 6.0);
        assert_eq!(v.mean().get(0, 0), 2.0);
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum().data(), &[4.0, 6.0]); // column sums
        assert_eq!(m.mean().data(), &[2.0, 3.0]); // column means
    }

    #[test]
    fn norms_and_extremes() {
        let v = Dense::col_vector(&[3.0, 4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.max_all(), 4.0);
        assert_eq!(v.min_all(), 3.0);
    }

    #[test]
    fn trapz_unit_and_xy() {
        // ∫ of y=x over x=0..4 sampled at integers = 8.
        let y = Dense::row_vector(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.trapz(), 8.0);
        let x = Dense::row_vector(&[0.0, 2.0, 4.0]);
        let y2 = Dense::row_vector(&[0.0, 2.0, 4.0]);
        assert_eq!(Dense::trapz_xy(&x, &y2), 8.0);
    }

    #[test]
    fn circshift_both_directions() {
        let v = Dense::row_vector(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.circshift(1).data(), &[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(v.circshift(-1).data(), &[2.0, 3.0, 4.0, 1.0]);
        assert_eq!(v.circshift(4).data(), v.data());
        assert_eq!(v.circshift(-9).data(), v.circshift(-1).data());
    }

    #[test]
    fn concatenation() {
        let a = Dense::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Dense::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.hcat(&b).data(), &[1.0, 2.0, 3.0, 4.0]);
        let v = a.vcat(&b);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.get(1, 0), 3.0);
    }

    #[test]
    fn submatrix_and_reshape() {
        let m = Dense::from_vec(3, 3, (1..=9).map(f64::from).collect());
        let s = m.submatrix(&[0, 2], &[1]);
        assert_eq!(s.into_data(), vec![2.0, 8.0]);
        // reshape is column-major like MATLAB.
        let m2 = Dense::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let r = m2.reshape(4, 1);
        assert_eq!(r.into_data(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn zip_shape_checked() {
        let a = Dense::zeros(2, 2);
        let b = Dense::ones(2, 2);
        assert_eq!(a.zip(&b, |x, y| x + y), b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_rejects_mismatch() {
        Dense::zeros(2, 2).zip(&Dense::zeros(2, 3), |a, _| a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatch() {
        Dense::zeros(2, 3).matmul(&Dense::zeros(2, 3));
    }

    #[test]
    fn display_renders_rows() {
        let m = Dense::eye(2);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("1.000000"));
    }
}
