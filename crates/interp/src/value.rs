//! Runtime values of the interpreter.
//!
//! MATLAB has no scalar/matrix type distinction at the surface — a
//! scalar is a 1×1 matrix — but the interpreter keeps scalars unboxed
//! because that is exactly the representation choice whose *absence*
//! of compile-time knowledge the paper's type inference pass exists to
//! recover.

use otter_rt::Dense;
use std::fmt;

/// A dynamically typed MATLAB value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Scalar(f64),
    Matrix(Dense),
    Str(String),
}

impl Value {
    /// Coerce to a scalar if the value is one (including 1×1 matrices).
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(v) => Some(*v),
            Value::Matrix(m) if m.is_scalar() => Some(m.get(0, 0)),
            _ => None,
        }
    }

    /// View as a dense matrix (scalars become 1×1).
    pub fn to_matrix(&self) -> Option<Dense> {
        match self {
            Value::Scalar(v) => Some(Dense::from_vec(1, 1, vec![*v])),
            Value::Matrix(m) => Some(m.clone()),
            Value::Str(_) => None,
        }
    }

    /// MATLAB truthiness: nonzero scalar, or all-nonzero nonempty
    /// matrix.
    pub fn is_true(&self) -> bool {
        match self {
            Value::Scalar(v) => *v != 0.0,
            Value::Matrix(m) => !m.is_empty() && m.data().iter().all(|&x| x != 0.0),
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Element count (`numel`).
    pub fn numel(&self) -> usize {
        match self {
            Value::Scalar(_) => 1,
            Value::Matrix(m) => m.len(),
            Value::Str(s) => s.len(),
        }
    }

    /// `(rows, cols)` (`size`).
    pub fn size(&self) -> (usize, usize) {
        match self {
            Value::Scalar(_) => (1, 1),
            Value::Matrix(m) => (m.rows(), m.cols()),
            Value::Str(s) => (1, s.len()),
        }
    }

    /// Normalize: collapse 1×1 matrices to scalars (MATLAB operations
    /// producing 1×1 results behave as scalars downstream).
    pub fn normalized(self) -> Value {
        match self {
            Value::Matrix(m) if m.is_scalar() => Value::Scalar(m.get(0, 0)),
            v => v,
        }
    }

    /// Human-readable type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Matrix(_) => "matrix",
            Value::Str(_) => "string",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(v) => write!(f, "{v:>12.6}"),
            Value::Matrix(m) => write!(f, "{m}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Scalar(v)
    }
}

impl From<Dense> for Value {
    fn from(m: Dense) -> Self {
        Value::Matrix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_coercion() {
        assert_eq!(Value::Scalar(3.0).as_scalar(), Some(3.0));
        assert_eq!(
            Value::Matrix(Dense::from_vec(1, 1, vec![4.0])).as_scalar(),
            Some(4.0)
        );
        assert_eq!(Value::Matrix(Dense::zeros(2, 2)).as_scalar(), None);
        assert_eq!(Value::Str("x".into()).as_scalar(), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Scalar(1.0).is_true());
        assert!(!Value::Scalar(0.0).is_true());
        assert!(Value::Matrix(Dense::ones(2, 2)).is_true());
        assert!(!Value::Matrix(Dense::zeros(2, 2)).is_true());
        assert!(!Value::Matrix(Dense::from_vec(1, 2, vec![1.0, 0.0])).is_true());
        assert!(!Value::Matrix(Dense::from_vec(1, 0, vec![])).is_true());
    }

    #[test]
    fn normalization_collapses_1x1() {
        let v = Value::Matrix(Dense::from_vec(1, 1, vec![7.0])).normalized();
        assert_eq!(v, Value::Scalar(7.0));
        let m = Value::Matrix(Dense::zeros(2, 1)).normalized();
        assert!(matches!(m, Value::Matrix(_)));
    }

    #[test]
    fn sizes() {
        assert_eq!(Value::Scalar(0.0).size(), (1, 1));
        assert_eq!(Value::Matrix(Dense::zeros(3, 4)).size(), (3, 4));
        assert_eq!(Value::Matrix(Dense::zeros(3, 4)).numel(), 12);
    }
}
